//! Ablation bench (E5): how the iterative-deepening expansion bound (§6.2)
//! affects verification time on the recursive corpus entries.

use criterion::{criterion_group, criterion_main, Criterion};
use jmatch_core::{compile, CompileOptions};

fn bench_depth_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    for name in ["Nat", "ZNat", "List", "TreeLeaf"] {
        let entry = jmatch_corpus::entry(name).expect("corpus entry");
        let source = entry.combined_jmatch();
        for depth in [1u32, 2, 3] {
            group.bench_function(format!("{name}/depth{depth}"), |b| {
                b.iter(|| {
                    compile(
                        std::hint::black_box(&source),
                        &CompileOptions {
                            verify: true,
                            max_expansion_depth: depth,
                        },
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_depth_ablation
}
criterion_main!(benches);
