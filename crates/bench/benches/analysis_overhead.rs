//! `analysis_overhead` — the plan-analysis pass (determinism commits +
//! dead-alternative pruning) against the unanalyzed oracle, same plan
//! engine, same workloads.
//!
//! Two questions, two groups of rows:
//!
//! * **run time** — `det_tree_min` is the workload the pass targets (one
//!   committed choice point per spine node; the oracle carries them all to
//!   the solution), while the `repr_hot_paths` / `plan_vs_interp` suites
//!   act as no-regression controls: the analysis must not slow down code
//!   it cannot improve.
//! * **compile time** — `compile/*` times plan construction with the pass
//!   on and off; the delta is the whole-pipeline cost of the fixpoint and
//!   the pruner.
//!
//! Each pair is asserted result-equal before timing (the pass is
//! observation-equivalent by construction, and `--test` mode in CI fails
//! the bench before it can mistime), and the det workload additionally
//! asserts the choice-point win itself: zero live choice points at the
//! solution analyzed, one per spine node for the oracle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_bench::{
    det_tree_workload, enumeration_workload, list_workload, nat_plus_workload,
    plan_program_analysis, repr_field_workload, runtime_workload_source, DET_TREE_SOURCE,
    REPR_FIELD_SOURCE,
};

const DEPTH: i64 = 200;

fn bench_analysis_overhead(c: &mut Criterion) {
    let tree_on = plan_program_analysis(DET_TREE_SOURCE, true);
    let tree_off = plan_program_analysis(DET_TREE_SOURCE, false);
    let field_on = plan_program_analysis(REPR_FIELD_SOURCE, true);
    let field_off = plan_program_analysis(REPR_FIELD_SOURCE, false);
    let runtime_src = runtime_workload_source();
    let runtime_on = plan_program_analysis(&runtime_src, true);
    let runtime_off = plan_program_analysis(&runtime_src, false);

    // Observation equivalence, plus the choice-point win the pass exists
    // for: the analyzed machine reaches the solution holding zero live
    // choice points, the oracle holds one per spine node above the deepest
    // call. Everything else (the answer, the created count) is identical.
    let (m_on, live_on, created_on) = det_tree_workload(&tree_on, DEPTH);
    let (m_off, live_off, created_off) = det_tree_workload(&tree_off, DEPTH);
    assert_eq!(m_on, m_off);
    assert_eq!(created_on, created_off);
    assert_eq!(live_on, 0, "det commit left live choice points");
    assert_eq!(live_off, (DEPTH - 1) as usize);
    assert_eq!(
        repr_field_workload(&field_on, 100),
        repr_field_workload(&field_off, 100)
    );
    assert_eq!(
        nat_plus_workload(&runtime_on, 6),
        nat_plus_workload(&runtime_off, 6)
    );
    assert_eq!(
        list_workload(&runtime_on, 12),
        list_workload(&runtime_off, 12)
    );
    assert_eq!(
        enumeration_workload(&runtime_on, 40),
        enumeration_workload(&runtime_off, 40)
    );

    let mut group = c.benchmark_group("analysis_overhead");
    group.bench_function("det_tree_min/analyzed", |b| {
        b.iter(|| black_box(det_tree_workload(&tree_on, DEPTH)))
    });
    group.bench_function("det_tree_min/oracle", |b| {
        b.iter(|| black_box(det_tree_workload(&tree_off, DEPTH)))
    });
    group.bench_function("field_access/analyzed", |b| {
        b.iter(|| black_box(repr_field_workload(&field_on, 100)))
    });
    group.bench_function("field_access/oracle", |b| {
        b.iter(|| black_box(repr_field_workload(&field_off, 100)))
    });
    group.bench_function("nat_plus/analyzed", |b| {
        b.iter(|| black_box(nat_plus_workload(&runtime_on, 6)))
    });
    group.bench_function("nat_plus/oracle", |b| {
        b.iter(|| black_box(nat_plus_workload(&runtime_off, 6)))
    });
    group.bench_function("list_ops/analyzed", |b| {
        b.iter(|| black_box(list_workload(&runtime_on, 12)))
    });
    group.bench_function("list_ops/oracle", |b| {
        b.iter(|| black_box(list_workload(&runtime_off, 12)))
    });
    group.bench_function("enumeration/analyzed", |b| {
        b.iter(|| black_box(enumeration_workload(&runtime_on, 40)))
    });
    group.bench_function("enumeration/oracle", |b| {
        b.iter(|| black_box(enumeration_workload(&runtime_off, 40)))
    });
    group.bench_function("compile/analyzed", |b| {
        b.iter(|| black_box(plan_program_analysis(&runtime_src, true)))
    });
    group.bench_function("compile/oracle", |b| {
        b.iter(|| black_box(plan_program_analysis(&runtime_src, false)))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis_overhead);
criterion_main!(benches);
