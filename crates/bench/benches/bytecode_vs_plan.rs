//! `bytecode_vs_plan` — the flat register bytecode against the goal-tree /
//! statement-plan evaluator it replaced, same plan engine, same workloads.
//!
//! Every workload runs twice from identical sources: `plan` compiles with
//! the bytecode pass off (the evaluator walks `Goal` trees and `StmtPlan`
//! statements), `bytecode` compiles with it on (pc-threaded solved forms,
//! register blocks, jump-table switch dispatch). The workloads are the
//! `repr_hot_paths` trio plus the `plan_vs_interp` trio, so the recorded
//! numbers (`BENCH_bytecode.json`, README "Bytecode execution") compose
//! directly with the earlier representation-change measurements.
//!
//! Each pair is asserted result-equal before timing: a bytecode compiler
//! bug fails the bench in CI (`--test` mode) before it can mistime.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_bench::{
    enumeration_workload, list_workload, nat_plus_workload, plan_program_bytecode,
    repr_deconstruct_workload, repr_dispatch_source, repr_dispatch_workload, repr_field_workload,
    runtime_workload_source, REPR_FIELD_SOURCE,
};

fn bench_bytecode_vs_plan(c: &mut Criterion) {
    let field_bc = plan_program_bytecode(REPR_FIELD_SOURCE, true);
    let field_plain = plan_program_bytecode(REPR_FIELD_SOURCE, false);
    let dispatch_src = repr_dispatch_source();
    let dispatch_bc = plan_program_bytecode(&dispatch_src, true);
    let dispatch_plain = plan_program_bytecode(&dispatch_src, false);
    let runtime_src = runtime_workload_source();
    let runtime_bc = plan_program_bytecode(&runtime_src, true);
    let runtime_plain = plan_program_bytecode(&runtime_src, false);

    // The two code forms must agree before their speeds are worth
    // comparing.
    assert_eq!(
        repr_field_workload(&field_bc, 100),
        repr_field_workload(&field_plain, 100)
    );
    assert_eq!(
        repr_dispatch_workload(&dispatch_bc),
        repr_dispatch_workload(&dispatch_plain)
    );
    assert_eq!(
        repr_deconstruct_workload(&runtime_bc, 64),
        repr_deconstruct_workload(&runtime_plain, 64)
    );
    assert_eq!(
        nat_plus_workload(&runtime_bc, 6),
        nat_plus_workload(&runtime_plain, 6)
    );
    assert_eq!(
        list_workload(&runtime_bc, 12),
        list_workload(&runtime_plain, 12)
    );
    assert_eq!(
        enumeration_workload(&runtime_bc, 40),
        enumeration_workload(&runtime_plain, 40)
    );

    let mut group = c.benchmark_group("bytecode_vs_plan");
    group.bench_function("field_access/bytecode", |b| {
        b.iter(|| black_box(repr_field_workload(&field_bc, 100)))
    });
    group.bench_function("field_access/plan", |b| {
        b.iter(|| black_box(repr_field_workload(&field_plain, 100)))
    });
    group.bench_function("ctor_dispatch_64/bytecode", |b| {
        b.iter(|| black_box(repr_dispatch_workload(&dispatch_bc)))
    });
    group.bench_function("ctor_dispatch_64/plan", |b| {
        b.iter(|| black_box(repr_dispatch_workload(&dispatch_plain)))
    });
    group.bench_function("deconstruct_fanout/bytecode", |b| {
        b.iter(|| black_box(repr_deconstruct_workload(&runtime_bc, 64)))
    });
    group.bench_function("deconstruct_fanout/plan", |b| {
        b.iter(|| black_box(repr_deconstruct_workload(&runtime_plain, 64)))
    });
    group.bench_function("nat_plus/bytecode", |b| {
        b.iter(|| black_box(nat_plus_workload(&runtime_bc, 6)))
    });
    group.bench_function("nat_plus/plan", |b| {
        b.iter(|| black_box(nat_plus_workload(&runtime_plain, 6)))
    });
    group.bench_function("list_ops/bytecode", |b| {
        b.iter(|| black_box(list_workload(&runtime_bc, 12)))
    });
    group.bench_function("list_ops/plan", |b| {
        b.iter(|| black_box(list_workload(&runtime_plain, 12)))
    });
    group.bench_function("enumeration/bytecode", |b| {
        b.iter(|| black_box(enumeration_workload(&runtime_bc, 40)))
    });
    group.bench_function("enumeration/plan", |b| {
        b.iter(|| black_box(enumeration_workload(&runtime_plain, 40)))
    });
    group.finish();
}

criterion_group!(benches, bench_bytecode_vs_plan);
criterion_main!(benches);
