//! Criterion bench regenerating the Figure 8 data (E3): the ZNat relation and
//! the matching-precondition extraction for each mode.

use criterion::{criterion_group, criterion_main, Criterion};
use jmatch_bench::{figure8_points, figure8_preconditions};

fn bench_figure8(c: &mut Criterion) {
    c.bench_function("figure8/relation_grid", |b| {
        b.iter(|| figure8_points(std::hint::black_box(-1..=4)))
    });
    c.bench_function("figure8/precondition_extraction", |b| {
        b.iter(figure8_preconditions)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(600));
    targets = bench_figure8
}
criterion_main!(benches);
