//! `first_solution` — early-exit enumeration through the lazy `Solutions`
//! iterator versus eager materialization (what the pre-redesign
//! `Interp::deconstruct` / callback `solve` API forced on embedders).
//!
//! The paper compiles JMatch to Java_yield coroutines precisely so a
//! `foreach` can stop after the first yield (§2.3, §5); the `Query` /
//! `Solutions` surface reproduces that: `first()` over an n-way
//! enumeration does O(1) solver work, while the legacy eager shape pays
//! O(n) before the caller sees anything.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_bench::{
    balanced_disjunction, first_element_lazy, first_solution_eager, first_solution_lazy, int_list,
    runtime_program,
};
use jmatch_runtime::{Bindings, Engine};

fn bench_first_solution(c: &mut Criterion) {
    let program = runtime_program(Engine::Plan);

    // An n-way disjunction: n solutions, constant work each. The query is
    // prepared once (lowering happens here, not per enumeration).
    let n = 4096;
    let formula = balanced_disjunction(0, n - 1);
    let empty = Bindings::new();
    let disjunction = program.solve(&formula, &empty, None);
    assert_eq!(first_solution_lazy(&disjunction), 0);
    assert_eq!(first_solution_eager(&disjunction), 0);

    // The iterative `contains` mode over a cons list: the first element is
    // one constructor match away; the eager path still walks all of it.
    let list = int_list(&program, 192);
    let contains = program.method("ConsList", "contains").unwrap();
    let elements = contains.iterate(Some(&list), &empty).unwrap();
    assert_eq!(first_element_lazy(&elements), 0);

    let mut group = c.benchmark_group("first_solution");
    group.bench_function("disjunction_4096/lazy_first", |b| {
        b.iter(|| black_box(first_solution_lazy(&disjunction)))
    });
    group.bench_function("disjunction_4096/eager_all", |b| {
        b.iter(|| black_box(first_solution_eager(&disjunction)))
    });
    group.bench_function("list_contains_192/lazy_first", |b| {
        b.iter(|| black_box(first_element_lazy(&elements)))
    });
    group.bench_function("list_contains_192/eager_all", |b| {
        b.iter(|| {
            let all = elements.try_collect().unwrap();
            black_box(all.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_first_solution);
criterion_main!(benches);
