//! Criterion bench for the incremental-recompilation win: a resident
//! [`Workspace`] re-verifying the Table 1 corpus after a one-method body
//! edit versus compiling each edited source from scratch, plus the
//! parallel-verification wall time at 1, 2, and 8 workers; the recorded
//! numbers live in `BENCH_incremental.json` and the README's
//! "Incremental compilation" section.
//!
//! The incremental path is only worth timing if it is indistinguishable
//! from a full rebuild, so the bench asserts up front — for every corpus
//! entry — that the post-edit generation's diagnostics match a scratch
//! compile's, that only the edited method was re-verified, and that 1, 2,
//! and 8 verify workers produce identical diagnostics in identical order.
//! This is what `cargo bench -p jmatch-bench --bench incremental_rebuild
//! -- --test` exercises in CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_runtime::{Program, Workspace};

/// Corpus entries with an appended probe method whose body the edits
/// toggle: same type structure and method set in both variants, so the
/// rebuild stays on the incremental path and re-verifies only the probe.
fn corpus_variants() -> Vec<(&'static str, String, String)> {
    jmatch_corpus::entries()
        .iter()
        .filter_map(|e| {
            let src = e.combined_jmatch();
            Workspace::new().verify(false).compile(&src).ok()?;
            let base = format!("{src}\nstatic int benchProbe() {{ return 1; }}");
            let edited = format!("{src}\nstatic int benchProbe() {{ return 2; }}");
            Some((e.name, base, edited))
        })
        .collect()
}

fn diag_lines(program: &Program) -> Vec<String> {
    let d = program.diagnostics();
    d.errors
        .iter()
        .map(ToString::to_string)
        .chain(d.warnings.iter().map(ToString::to_string))
        .collect()
}

fn verify_corpus(sources: &[(&'static str, String, String)], threads: usize) -> Vec<Vec<String>> {
    sources
        .iter()
        .map(|(_, base, _)| {
            let program = Workspace::new()
                .verify(true)
                .verify_threads(threads)
                .compile(base)
                .expect("corpus entry compiles");
            diag_lines(&program)
        })
        .collect()
}

fn bench_incremental_rebuild(c: &mut Criterion) {
    let sources = corpus_variants();
    assert!(sources.len() >= 10, "corpus unexpectedly small");

    // Correctness gates before any timing.
    for (name, base, edited) in &sources {
        let mut ws = Workspace::new().verify(true);
        ws.load(base).expect("base variant compiles");
        let g = ws.update_source(edited).expect("edited variant compiles");
        assert!(
            !g.report().full,
            "{name}: body edit fell off the incremental path"
        );
        assert_eq!(
            g.report().reverified,
            ["<toplevel>.benchProbe"],
            "{name}: a one-method edit re-verified more than the method"
        );
        let scratch = Workspace::new().verify(true).compile(edited).unwrap();
        assert_eq!(
            diag_lines(g.program()),
            diag_lines(&scratch),
            "{name}: incremental diagnostics diverge from a full rebuild"
        );
    }
    let baseline = verify_corpus(&sources, 1);
    for threads in [2, 8] {
        assert_eq!(
            verify_corpus(&sources, threads),
            baseline,
            "{threads}-worker verification diverges from 1 worker"
        );
    }

    let mut group = c.benchmark_group("incremental_rebuild");
    group.sample_size(10);

    // The headline pair: whole-corpus re-verify after a one-method body
    // edit, resident workspace vs from-scratch rebuilds.
    let mut workspaces: Vec<Workspace> = sources
        .iter()
        .map(|(_, base, _)| {
            let mut ws = Workspace::new().verify(true);
            ws.load(base).expect("base variant compiles");
            ws
        })
        .collect();
    let mut flip = false;
    group.bench_function("corpus_one_edit/incremental", |b| {
        b.iter(|| {
            flip = !flip;
            for (ws, (_, base, edited)) in workspaces.iter_mut().zip(&sources) {
                let next = if flip { edited } else { base };
                black_box(ws.update_source(next).expect("edit compiles"));
            }
        })
    });
    group.bench_function("corpus_one_edit/from_scratch", |b| {
        b.iter(|| {
            flip = !flip;
            for (_, base, edited) in &sources {
                let next = if flip { edited } else { base };
                black_box(
                    Workspace::new()
                        .verify(true)
                        .compile(next)
                        .expect("compiles"),
                );
            }
        })
    });

    // Parallel verification wall time: whole-corpus full verify at 1, 2,
    // and 8 workers (sharded per-method solver sessions).
    for threads in [1usize, 2, 8] {
        group.bench_function(format!("corpus_full_verify/{threads}_threads"), |b| {
            b.iter(|| black_box(verify_corpus(&sources, threads)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_incremental_rebuild
}
criterion_main!(benches);
