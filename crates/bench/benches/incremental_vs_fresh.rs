//! Criterion bench proving the incremental-session win: verifying the
//! Table 1 corpus through **one shared solver session** (`push`/`pop` per VC
//! query, persistent term store, lemma replay, canonical-formula result
//! cache) versus rebuilding the solver and expander for **every individual
//! VC query** (the pre-incremental architecture).
//!
//! `corpus/*` measures whole-corpus verification throughput — the headline
//! comparison — and the per-row functions break the same comparison down for
//! the expansion-heavy entries where session reuse matters most.

use criterion::{criterion_group, criterion_main, Criterion};
use jmatch_bench::{verify_fresh_per_query, verify_shared_session};
use jmatch_core::table::ClassTable;
use jmatch_core::{compile, CompileOptions};
use std::sync::Arc;

fn corpus_tables() -> Vec<(&'static str, Arc<ClassTable>)> {
    jmatch_corpus::entries()
        .iter()
        .map(|e| {
            let compiled = compile(
                &e.combined_jmatch(),
                &CompileOptions {
                    verify: false,
                    max_expansion_depth: 2,
                },
            )
            .expect("corpus entry must parse");
            (e.name, compiled.table)
        })
        .collect()
}

fn bench_incremental_vs_fresh(c: &mut Criterion) {
    let tables = corpus_tables();

    let mut group = c.benchmark_group("incremental_vs_fresh");
    group.sample_size(10);

    // Whole-corpus verification throughput, the headline number: the
    // incremental session must be at least as fast as fresh-per-query.
    group.bench_function("corpus/incremental", |b| {
        b.iter(|| {
            for (_, table) in &tables {
                std::hint::black_box(verify_shared_session(table, 2));
            }
        })
    });
    group.bench_function("corpus/fresh_per_query", |b| {
        b.iter(|| {
            for (_, table) in &tables {
                std::hint::black_box(verify_fresh_per_query(table, 2));
            }
        })
    });

    // Per-row breakdown on the expansion-heavy entries.
    for name in ["ConsList", "SnocList", "CPS", "TreeBranch", "AVLTree"] {
        let table = &tables
            .iter()
            .find(|(n, _)| *n == name)
            .expect("corpus row exists")
            .1;
        group.bench_function(format!("incremental/{name}"), |b| {
            b.iter(|| std::hint::black_box(verify_shared_session(table, 2)))
        });
        group.bench_function(format!("fresh_per_query/{name}"), |b| {
            b.iter(|| std::hint::black_box(verify_fresh_per_query(table, 2)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_incremental_vs_fresh
}
criterion_main!(benches);
