//! `parallel_scaling` — sequential vs OR-parallel full enumeration.
//!
//! The workload is a complete binary tree whose `vals` method enumerates
//! every leaf: the choice tree is a full binary tree, so work stealing can
//! split it into balanced halves all the way down. Sequential enumeration
//! (the resumable stack machine) is compared against
//! `Query::par_solutions` (ordered: reorder buffer restores sequential
//! order) and `Query::par_solutions_unordered` (merge as produced) at 2
//! and 8 workers; the recorded before/after numbers live in
//! `BENCH_par.json` and the README's "Parallel enumeration" section.
//!
//! The modes must agree with the sequential machine before their speeds
//! are worth comparing, so the bench asserts exact sequence equality
//! (ordered) and multiset equality (unordered) up front — this is what
//! `cargo bench -p jmatch-bench --bench parallel_scaling -- --test`
//! exercises in CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_bench::{
    parallel_enumerate_par, parallel_enumerate_seq, parallel_program, parallel_tree,
};

const DEPTH: u32 = 12; // 4096 leaves

fn bench_parallel_scaling(c: &mut Criterion) {
    let program = parallel_program();
    let tree = parallel_tree(&program, DEPTH);

    // The parallel modes must agree with the sequential machine.
    let seq = parallel_enumerate_seq(&program, &tree);
    assert_eq!(seq.len(), 1 << DEPTH);
    for threads in [1, 2, 8] {
        let ordered = parallel_enumerate_par(&program, &tree, threads, true);
        assert_eq!(seq, ordered, "ordered mode diverges at {threads} threads");
        let mut unordered = parallel_enumerate_par(&program, &tree, threads, false);
        unordered.sort_unstable();
        let mut want = seq.clone();
        want.sort_unstable();
        assert_eq!(
            want, unordered,
            "unordered mode diverges as a multiset at {threads} threads"
        );
    }

    let mut group = c.benchmark_group("parallel_scaling");
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(parallel_enumerate_seq(&program, &tree).len()))
    });
    for threads in [2usize, 8] {
        group.bench_function(format!("unordered/{threads}_threads"), |b| {
            b.iter(|| black_box(parallel_enumerate_par(&program, &tree, threads, false).len()))
        });
        group.bench_function(format!("ordered/{threads}_threads"), |b| {
            b.iter(|| black_box(parallel_enumerate_par(&program, &tree, threads, true).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
