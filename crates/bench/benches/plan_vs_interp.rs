//! `plan_vs_interp` — the plan evaluator versus the tree-walking
//! interpreter on iterator-heavy runtime workloads.
//!
//! The lowering layer converts per-call mode search into one-time compile
//! work: solved forms are scheduled statically, variables live in flat
//! frame slots, and dispatch goes through precompiled indices. This bench
//! quantifies what that buys on the workloads the paper's translation
//! targets — recursive backward matching (`ZNat` addition), list traversal
//! with iterative modes, and `foreach` enumeration — by running the same
//! workload through both engines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_bench::{enumeration_workload, list_workload, nat_plus_workload, runtime_program};
use jmatch_runtime::Engine;

fn bench_plan_vs_interp(c: &mut Criterion) {
    let plan = runtime_program(Engine::Plan);
    let tree = runtime_program(Engine::TreeWalk);

    // The engines must agree before their speeds are worth comparing.
    assert_eq!(nat_plus_workload(&plan, 6), nat_plus_workload(&tree, 6));
    assert_eq!(list_workload(&plan, 12), list_workload(&tree, 12));
    assert_eq!(
        enumeration_workload(&plan, 40),
        enumeration_workload(&tree, 40)
    );

    let mut group = c.benchmark_group("plan_vs_interp");
    group.bench_function("nat_plus/plan", |b| {
        b.iter(|| black_box(nat_plus_workload(&plan, 6)))
    });
    group.bench_function("nat_plus/tree_walk", |b| {
        b.iter(|| black_box(nat_plus_workload(&tree, 6)))
    });
    group.bench_function("list/plan", |b| {
        b.iter(|| black_box(list_workload(&plan, 12)))
    });
    group.bench_function("list/tree_walk", |b| {
        b.iter(|| black_box(list_workload(&tree, 12)))
    });
    group.bench_function("enumeration/plan", |b| {
        b.iter(|| black_box(enumeration_workload(&plan, 40)))
    });
    group.bench_function("enumeration/tree_walk", |b| {
        b.iter(|| black_box(enumeration_workload(&tree, 40)))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_vs_interp);
criterion_main!(benches);
