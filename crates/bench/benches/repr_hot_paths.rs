//! `repr_hot_paths` — the value-representation hot paths: field access,
//! wide constructor dispatch, and deconstruction fan-out.
//!
//! These are the workloads the interned-symbol / slot-indexed object layout
//! targets: `field` reads that used to hash a `String` per access, a
//! 64-arm `switch` whose arms used to be tried one by one per call, and
//! backward-mode constructor matching whose solution rows used to be built
//! through `HashMap` environments. Both engines run the same workloads so
//! the representation change can be compared engine-vs-engine as well as
//! before-vs-after (the recorded numbers live in `BENCH_repr.json` and the
//! README's "Value representation & dispatch" section).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_bench::{
    repr_deconstruct_workload, repr_dispatch_program, repr_dispatch_workload, repr_field_program,
    repr_field_workload, runtime_program,
};
use jmatch_runtime::Engine;

fn bench_repr_hot_paths(c: &mut Criterion) {
    let field_plan = repr_field_program(Engine::Plan);
    let field_tree = repr_field_program(Engine::TreeWalk);
    let dispatch_plan = repr_dispatch_program(Engine::Plan);
    let dispatch_tree = repr_dispatch_program(Engine::TreeWalk);
    let list_plan = runtime_program(Engine::Plan);
    let list_tree = runtime_program(Engine::TreeWalk);

    // The engines must agree before their speeds are worth comparing.
    assert_eq!(
        repr_field_workload(&field_plan, 100),
        repr_field_workload(&field_tree, 100)
    );
    assert_eq!(
        repr_dispatch_workload(&dispatch_plan),
        repr_dispatch_workload(&dispatch_tree)
    );
    assert_eq!(
        repr_deconstruct_workload(&list_plan, 64),
        repr_deconstruct_workload(&list_tree, 64)
    );

    let mut group = c.benchmark_group("repr_hot_paths");
    group.bench_function("field_access/plan", |b| {
        b.iter(|| black_box(repr_field_workload(&field_plan, 100)))
    });
    group.bench_function("field_access/tree_walk", |b| {
        b.iter(|| black_box(repr_field_workload(&field_tree, 100)))
    });
    group.bench_function("ctor_dispatch_64/plan", |b| {
        b.iter(|| black_box(repr_dispatch_workload(&dispatch_plan)))
    });
    group.bench_function("ctor_dispatch_64/tree_walk", |b| {
        b.iter(|| black_box(repr_dispatch_workload(&dispatch_tree)))
    });
    group.bench_function("deconstruct_fanout/plan", |b| {
        b.iter(|| black_box(repr_deconstruct_workload(&list_plan, 64)))
    });
    group.bench_function("deconstruct_fanout/tree_walk", |b| {
        b.iter(|| black_box(repr_deconstruct_workload(&list_tree, 64)))
    });
    group.finish();
}

criterion_group!(benches, bench_repr_hot_paths);
criterion_main!(benches);
