//! `serve_latency` — round-trip latency of the `jmatch-serve` wire
//! protocol against an in-process server over loopback.
//!
//! Measures the protocol floor (ping), a cached compile (the program
//! cache hit path), a coalesced collect query, and a streamed
//! enumeration, all through the blocking reference [`Client`]. The
//! heavier multi-connection percentile numbers (1/8/64 clients, cold vs
//! cached) come from the `jmatch-loadgen` binary and land in
//! `BENCH_serve.json`; this bench is the in-tree guard that the serve
//! stack keeps answering correctly and fast.
//!
//! As with the other benches, correctness gates speed:
//! `cargo bench -p jmatch-bench --bench serve_latency -- --test` asserts
//! that wire solutions are transcript-identical to the sequential
//! embedding-API oracle before any timing happens — that assertion is
//! what the CI bench-smoke matrix exercises.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jmatch_runtime::serve::json::Json;
use jmatch_runtime::serve::proto::bindings_to_json;
use jmatch_runtime::serve::{Client, QueryOptions, ServeConfig, Server};
use jmatch_runtime::{Bindings, Value, Workspace};

const SRC: &str = "\
static boolean below(int n, int x) iterates(x)
    ( x = 0 || x = 1 || x = 2 || x = 3 || x = 4 || x = 5 || x = 6 || x = 7 )
static int add(int a, int b) { return a + b; }
";

fn bench_serve_latency(c: &mut Criterion) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    })
    .expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("client connect");

    let reply = client.compile(SRC, false).expect("compile");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let key = reply
        .get("program")
        .and_then(Json::as_str)
        .expect("program key")
        .to_owned();
    let again = client.compile(SRC, false).expect("re-compile");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));

    // Correctness before speed: the wire transcript must match the
    // sequential embedding-API oracle exactly.
    let program = Workspace::new().verify(false).compile(SRC).expect("oracle");
    let mut known = Bindings::new();
    known.insert("n".into(), Value::Int(8));
    let expected: Vec<Json> = program
        .free_method("below")
        .expect("below")
        .iterate(None, &known)
        .expect("iterate")
        .try_collect()
        .expect("collect")
        .iter()
        .map(bindings_to_json)
        .collect();
    assert_eq!(expected.len(), 8);

    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(8))];
    let reply = client.query(&options).expect("query");
    assert_eq!(
        reply.get("solutions").and_then(Json::as_arr),
        Some(&expected[..]),
        "wire solutions diverge from the oracle"
    );
    let frames = client.stream(&options, 3).expect("stream");
    let streamed: Vec<Json> = frames
        .iter()
        .flat_map(|f| {
            f.get("solutions")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .to_vec()
        })
        .collect();
    assert_eq!(streamed, expected, "streamed solutions diverge");
    let reply = client
        .call("default", &key, "add", &[Value::Int(20), Value::Int(22)])
        .expect("call");
    assert_eq!(reply.get("value"), Some(&Json::Int(42)));

    let mut group = c.benchmark_group("serve_latency");
    group.bench_function("ping", |b| {
        b.iter(|| black_box(client.ping().expect("ping")))
    });
    group.bench_function("compile/cached", |b| {
        b.iter(|| {
            let reply = client.compile(SRC, false).expect("compile");
            assert_eq!(reply.get("cached"), Some(&Json::Bool(true)));
            black_box(reply)
        })
    });
    group.bench_function("call/forward", |b| {
        b.iter(|| {
            black_box(
                client
                    .call("default", &key, "add", &[Value::Int(20), Value::Int(22)])
                    .expect("call"),
            )
        })
    });
    group.bench_function("query/collect", |b| {
        b.iter(|| black_box(client.query(&options).expect("query")))
    });
    group.bench_function("stream/batch3", |b| {
        b.iter(|| black_box(client.stream(&options, 3).expect("stream")))
    });
    group.finish();

    server.shutdown();
}

criterion_group!(benches, bench_serve_latency);
criterion_main!(benches);
