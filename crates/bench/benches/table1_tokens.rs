//! Criterion bench regenerating the token-count columns of Table 1 (E1).

use criterion::{criterion_group, criterion_main, Criterion};
use jmatch_syntax::count_tokens;

fn bench_token_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_tokens");
    for entry in jmatch_corpus::entries() {
        group.bench_function(format!("jmatch/{}", entry.name), |b| {
            b.iter(|| count_tokens(std::hint::black_box(entry.jmatch_source)).unwrap())
        });
        group.bench_function(format!("java/{}", entry.name), |b| {
            b.iter(|| count_tokens(std::hint::black_box(entry.java_source)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(600));
    targets = bench_token_counts
}
criterion_main!(benches);
