//! Criterion bench regenerating the compile-time columns of Table 1 (E2):
//! compilation with and without the verification passes, per corpus row.

use criterion::{criterion_group, criterion_main, Criterion};
use jmatch_core::{compile, CompileOptions};

fn bench_verification_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_verification");
    group.sample_size(10);
    let fast = [
        "Nat",
        "ZNat",
        "PZero",
        "List",
        "EmptyList",
        "Tree",
        "TreeLeaf",
    ];
    for entry in jmatch_corpus::entries()
        .into_iter()
        .filter(|e| fast.contains(&e.name))
    {
        let source = entry.combined_jmatch();
        group.bench_function(format!("without/{}", entry.name), |b| {
            b.iter(|| {
                compile(
                    std::hint::black_box(&source),
                    &CompileOptions {
                        verify: false,
                        max_expansion_depth: 2,
                    },
                )
                .unwrap()
            })
        });
        group.bench_function(format!("with/{}", entry.name), |b| {
            b.iter(|| {
                compile(
                    std::hint::black_box(&source),
                    &CompileOptions {
                        verify: true,
                        max_expansion_depth: 2,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(200)).measurement_time(std::time::Duration::from_millis(800));
    targets = bench_verification_overhead
}
criterion_main!(benches);
