//! Prints the §7.3 effectiveness checks: the paper's positive examples stay
//! warning-free and its negative examples (Figure 6, Figure 12, a missing
//! case) produce the expected warnings.
//!
//! Run with `cargo run -p jmatch-bench --bin effectiveness`.

fn main() {
    let report = jmatch_bench::effectiveness();
    println!("§7.3 effectiveness checks\n");
    for (description, expected, observed) in &report.checks {
        let status = if expected == observed {
            "ok "
        } else {
            "MISMATCH"
        };
        println!("[{status}] {description} (expected warning: {expected}, observed: {observed})");
    }
    println!(
        "\n{}",
        if report.all_pass() {
            "all effectiveness checks reproduce the paper's reported behaviour"
        } else {
            "some checks deviate from the paper; see EXPERIMENTS.md"
        }
    );
}
