//! Prints the data behind Figure 8: the ZNat relation (a), the region
//! described by the `matches` clause (b), and the matching preconditions
//! extracted for each mode.
//!
//! Run with `cargo run -p jmatch-bench --bin figure8`.

fn main() {
    println!("Figure 8(a)/(b): the ZNat relation and its matches-clause region");
    println!(
        "(rows: result = 4..0, columns: n = -1..4; '#' in relation, '.' in region, ' ' outside)\n"
    );
    let points = jmatch_bench::figure8_points(-1..=4);
    for result in (0..=4).rev() {
        let mut line = format!("result={result} | ");
        for n in -1..=4 {
            let p = points
                .iter()
                .find(|p| p.n == n && p.result == result)
                .unwrap();
            line.push(if p.in_relation {
                '#'
            } else if p.in_matches_region {
                '.'
            } else {
                ' '
            });
            line.push(' ');
        }
        println!("{line}");
    }
    println!("          +------------");
    println!("            n= -1 0 1 2 3 4\n");
    println!("Matching preconditions extracted from matches(n >= 0) (§4.3–4.4):");
    for (mode, formula) in jmatch_bench::figure8_preconditions() {
        println!("  {mode:<18} {formula}");
    }
}
