//! Prints the incremental-vs-fresh verification comparison over the Table 1
//! corpus: one shared solver session (`push`/`pop` per VC, lemma replay,
//! result cache) against rebuilding the solver for every individual query.
//!
//! Run with `cargo run -p jmatch-bench --bin incremental_session --release`.

use std::time::{Duration, Instant};

fn main() {
    let mut totals = (Duration::ZERO, Duration::ZERO);
    println!(
        "{:<12} {:>14} {:>17} {:>9}  agree",
        "Impl", "incremental", "fresh-per-query", "speedup"
    );
    for entry in jmatch_corpus::entries() {
        let compiled = jmatch_core::compile(
            &entry.combined_jmatch(),
            &jmatch_core::CompileOptions {
                verify: false,
                max_expansion_depth: 2,
            },
        )
        .expect("corpus entry must parse");

        let t = Instant::now();
        let with_session = jmatch_bench::verify_shared_session(&compiled.table, 2);
        let incremental = t.elapsed();
        let t = Instant::now();
        let fresh_diags = jmatch_bench::verify_fresh_per_query(&compiled.table, 2);
        let fresh = t.elapsed();

        totals.0 += incremental;
        totals.1 += fresh;
        println!(
            "{:<12} {:>14} {:>17} {:>8.2}x  {}",
            entry.name,
            format!("{incremental:.3?}"),
            format!("{fresh:.3?}"),
            fresh.as_secs_f64() / incremental.as_secs_f64().max(1e-12),
            with_session == fresh_diags,
        );
    }
    println!(
        "\nwhole corpus: incremental {:.3?} vs fresh-per-query {:.3?} ({:.2}x)",
        totals.0,
        totals.1,
        totals.1.as_secs_f64() / totals.0.as_secs_f64()
    );
}
