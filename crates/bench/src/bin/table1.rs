//! Prints the reproduction of Table 1: token counts (JMatch vs Java) and
//! compilation time with / without verification, next to the paper's numbers.
//!
//! Run with `cargo run -p jmatch-bench --bin table1 --release`.

fn main() {
    let rows = jmatch_bench::measure_all(2);
    print!("{}", jmatch_bench::render_table1(&rows));
    let unreproduced = jmatch_corpus::UNREPRODUCED_ROWS.join(", ");
    println!("\nrows of the paper's Table 1 not reproduced by this corpus: {unreproduced}");
}
