//! # jmatch-bench
//!
//! Measurement helpers behind the benchmark binaries and Criterion benches
//! that regenerate the paper's evaluation artifacts:
//!
//! * **Table 1** — token counts (JMatch 2.0 vs Java) and compilation time
//!   with / without verification, per corpus row;
//! * **Figure 8** — the `ZNat` relation and the matching preconditions
//!   extracted from its `matches` clause in each mode;
//! * the **§7.3 effectiveness** checks (which warnings fire on the paper's
//!   positive and negative examples).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use jmatch_core::table::ClassTable;
use jmatch_core::{compile, extract, CompileOptions, Diagnostics, Verifier, VerifyOptions};
use jmatch_corpus::CorpusEntry;
use jmatch_runtime::{args, Bindings, Engine, Program, Query, Value, Workspace};
use jmatch_syntax::ast::{CmpOp, Expr, Formula};
use jmatch_syntax::{count_tokens, parse_formula};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row name.
    pub name: &'static str,
    /// Measured JMatch token count.
    pub jmatch_tokens: usize,
    /// Measured Java token count.
    pub java_tokens: usize,
    /// Token counts reported by the paper (JMatch, Java).
    pub paper_tokens: (usize, usize),
    /// Measured compile time without verification.
    pub time_without: Duration,
    /// Measured compile time with verification.
    pub time_with: Duration,
    /// Times reported by the paper in seconds (w/o, w/).
    pub paper_times: (f64, f64),
    /// Diagnostics produced with verification enabled.
    pub diagnostics: Diagnostics,
}

impl Table1Row {
    /// Fraction by which the JMatch implementation is shorter than Java.
    pub fn savings(&self) -> f64 {
        if self.java_tokens == 0 {
            0.0
        } else {
            1.0 - self.jmatch_tokens as f64 / self.java_tokens as f64
        }
    }

    /// Verification overhead relative to plain compilation.
    pub fn overhead(&self) -> f64 {
        let base = self.time_without.as_secs_f64();
        if base == 0.0 {
            0.0
        } else {
            self.time_with.as_secs_f64() / base - 1.0
        }
    }
}

/// Measures one corpus entry (one Table 1 row).
pub fn measure_entry(entry: &CorpusEntry, max_expansion_depth: u32) -> Table1Row {
    let jmatch_tokens = count_tokens(entry.jmatch_source).unwrap_or(0);
    let java_tokens = count_tokens(entry.java_source).unwrap_or(0);
    let source = entry.combined_jmatch();

    let start = Instant::now();
    let _ = compile(
        &source,
        &CompileOptions {
            verify: false,
            max_expansion_depth,
        },
    );
    let time_without = start.elapsed();

    let start = Instant::now();
    let compiled = compile(
        &source,
        &CompileOptions {
            verify: true,
            max_expansion_depth,
        },
    );
    let time_with = start.elapsed();

    Table1Row {
        name: entry.name,
        jmatch_tokens,
        java_tokens,
        paper_tokens: (entry.paper_jmatch_tokens, entry.paper_java_tokens),
        time_without,
        time_with,
        paper_times: (entry.paper_time_without, entry.paper_time_with),
        diagnostics: compiled
            .map(|c| c.diagnostics)
            .unwrap_or_else(|_| Diagnostics::new()),
    }
}

/// Measures every corpus entry.
pub fn measure_all(max_expansion_depth: u32) -> Vec<Table1Row> {
    jmatch_corpus::entries()
        .iter()
        .map(|e| measure_entry(e, max_expansion_depth))
        .collect()
}

/// Renders the measured rows as a text table shaped like the paper's Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>14} {:>12} {:>12} {:>14}\n",
        "Impl", "JMatch", "Java", "paper(JM/Java)", "w/o verif", "w/ verif", "paper(w/o→w/)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>14} {:>12} {:>12} {:>14}\n",
            r.name,
            r.jmatch_tokens,
            r.java_tokens,
            format!("{}/{}", r.paper_tokens.0, r.paper_tokens.1),
            format!("{:.3}s", r.time_without.as_secs_f64()),
            format!("{:.3}s", r.time_with.as_secs_f64()),
            format!("{:.2}→{:.2}s", r.paper_times.0, r.paper_times.1),
        ));
    }
    let all_avg: f64 = rows.iter().map(|r| r.savings()).sum::<f64>() / rows.len() as f64;
    // The paper's 42.5% average is dominated by implementation classes; the
    // interfaces carry the new specification clauses and are *longer* than
    // their Java counterparts (the paper reports the same effect).
    let impls: Vec<&Table1Row> = rows
        .iter()
        .filter(|r| r.java_tokens > r.jmatch_tokens)
        .collect();
    let impl_avg: f64 = if impls.is_empty() {
        0.0
    } else {
        impls.iter().map(|r| r.savings()).sum::<f64>() / impls.len() as f64
    };
    let total_verify: f64 = rows.iter().map(|r| r.time_with.as_secs_f64()).sum();
    let total_plain: f64 = rows.iter().map(|r| r.time_without.as_secs_f64()).sum();
    out.push_str(&format!(
        "\naverage conciseness gain, all rows (measured): {:.1}%  (paper: 42.5%)\n",
        all_avg * 100.0
    ));
    out.push_str(&format!(
        "average conciseness gain, implementation rows (measured): {:.1}%\n",
        impl_avg * 100.0
    ));
    out.push_str(&format!(
        "total compile time: {:.3}s without verification, {:.3}s with (paper overhead: 42.4% of a full javac-based compile; this front end has no bytecode backend, so absolute ratios are not comparable)\n",
        total_plain, total_verify
    ));
    out
}

/// Verifies a resolved program through **one shared solver session** (the
/// production path): a single term store, solver, and expander carry learned
/// clauses, Tseitin encodings, and expansion lemmas across every VC query,
/// which are delimited by `push`/`pop` and memoized in the session's
/// canonical-formula cache.
pub fn verify_shared_session(table: &Arc<ClassTable>, max_expansion_depth: u32) -> Diagnostics {
    verify_shared_session_with_stats(table, max_expansion_depth).0
}

/// Like [`verify_shared_session`], also returning the session counters.
pub fn verify_shared_session_with_stats(
    table: &Arc<ClassTable>,
    max_expansion_depth: u32,
) -> (Diagnostics, jmatch_core::verify::SessionStats) {
    let verifier = Verifier::new(
        Arc::clone(table),
        VerifyOptions {
            max_expansion_depth,
            report_unknown: false,
            session_reuse: true,
        },
    );
    verifier.verify_program_with_stats()
}

/// Verifies a resolved program rebuilding the solver and expander for
/// **every individual VC query** — the pre-incremental architecture (the
/// seed's four `TermStore::new()` sites), and the baseline the
/// `incremental_vs_fresh` bench measures the session against.
pub fn verify_fresh_per_query(table: &Arc<ClassTable>, max_expansion_depth: u32) -> Diagnostics {
    let verifier = Verifier::new(
        Arc::clone(table),
        VerifyOptions {
            max_expansion_depth,
            report_unknown: false,
            session_reuse: false,
        },
    );
    verifier.verify_program()
}

/// Verifies a resolved program with **fresh solver state per method**, an
/// intermediate baseline: every method rebuilds its term store, solver, and
/// expander from scratch, so no learned clause, encoding, or expanded lemma
/// is ever reused across methods.
pub fn verify_fresh_per_method(table: &Arc<ClassTable>, max_expansion_depth: u32) -> Diagnostics {
    verify_fresh_per_method_with_stats(table, max_expansion_depth).0
}

/// Like [`verify_fresh_per_method`], also returning the aggregated counters
/// of the per-method sessions.
pub fn verify_fresh_per_method_with_stats(
    table: &Arc<ClassTable>,
    max_expansion_depth: u32,
) -> (Diagnostics, jmatch_core::verify::SessionStats) {
    let verifier = Verifier::new(
        Arc::clone(table),
        VerifyOptions {
            max_expansion_depth,
            report_unknown: false,
            session_reuse: true,
        },
    );
    let mut diags = Diagnostics::new();
    let mut stats = jmatch_core::verify::SessionStats::default();
    let mut run = |owner, minfo, diags: &mut Diagnostics| {
        let mut sess = verifier.new_session();
        verifier.verify_method_in(&mut sess, owner, minfo, diags);
        stats.absorb(sess.stats());
    };
    let types: Vec<_> = table.types().cloned().collect();
    for ty in &types {
        for m in &ty.methods {
            run(Some(ty), m, &mut diags);
        }
    }
    for m in table.free_methods() {
        run(None, m, &mut diags);
    }
    (diags, stats)
}

/// A point of Figure 8: whether `(n, result)` is in the relation / region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure8Point {
    /// The constructor argument `n`.
    pub n: i64,
    /// The candidate result value (the represented natural).
    pub result: i64,
    /// Whether the point is in the actual ZNat relation (Figure 8a).
    pub in_relation: bool,
    /// Whether the point is in the matches-clause region (Figure 8b).
    pub in_matches_region: bool,
}

/// Regenerates the data behind Figure 8: the actual `ZNat(int n)` relation
/// (result represents `n` for `n >= 0`) and the region described by the
/// `matches` clause `n >= 0`, over a small grid.
pub fn figure8_points(range: std::ops::RangeInclusive<i64>) -> Vec<Figure8Point> {
    let mut out = Vec::new();
    for n in range.clone() {
        for result in range.clone() {
            out.push(Figure8Point {
                n,
                result,
                in_relation: n >= 0 && result == n,
                in_matches_region: n >= 0,
            });
        }
    }
    out
}

/// The matching preconditions extracted from ZNat's `matches(n >= 0)` clause
/// for the three modes discussed in §4.2–4.4, rendered as formulas.
pub fn figure8_preconditions() -> Vec<(String, String)> {
    let program = jmatch_corpus::entry("ZNat").unwrap().combined_jmatch();
    let compiled = compile(
        &program,
        &CompileOptions {
            verify: false,
            ..CompileOptions::default()
        },
    )
    .expect("ZNat corpus entry must compile");
    let clause = parse_formula("n >= 0").unwrap();
    let forward = extract(&compiled.table, &clause, &["n".into()], &["result".into()]);
    let backward = extract(&compiled.table, &clause, &["result".into()], &["n".into()]);
    let clause_predicate = parse_formula("n >= 0 && notall(result, n)").unwrap();
    let predicate = extract(
        &compiled.table,
        &clause_predicate,
        &["result".into(), "n".into()],
        &[],
    );
    vec![
        ("returns(result)".into(), format!("{:?}", forward.formula)),
        ("returns(n)".into(), format!("{:?}", backward.formula)),
        ("returns()".into(), format!("{:?}", predicate.formula)),
    ]
}

/// Outcome of the §7.3 effectiveness checks.
#[derive(Debug, Clone)]
pub struct EffectivenessReport {
    /// (description, expected-warning-present, observed).
    pub checks: Vec<(String, bool, bool)>,
}

impl EffectivenessReport {
    /// Whether every check matched its expectation.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|(_, want, got)| want == got)
    }
}

/// Runs the effectiveness checks of §7.3: the paper's positive examples stay
/// warning-free and its negative examples produce the expected warnings.
pub fn effectiveness() -> EffectivenessReport {
    use jmatch_core::WarningKind;
    let mut checks = Vec::new();

    // Figure 6: the nested succ arm is redundant; zero() is not.
    let nat = jmatch_corpus::jmatch::NAT_INTERFACE;
    let fig6 = format!(
        "{nat}
         static int classify(Nat n) {{
             switch (n) {{
                 case succ(Nat p): return 1;
                 case succ(succ(Nat pp)): return 2;
                 case zero(): return 0;
             }}
         }}"
    );
    let d = compile(&fig6, &CompileOptions::default())
        .unwrap()
        .diagnostics;
    checks.push((
        "Figure 6: nested succ arm reported redundant".into(),
        true,
        d.has_warning(WarningKind::RedundantArm),
    ));
    checks.push((
        "Figure 6: switch with zero()/succ() not reported non-exhaustive".into(),
        false,
        d.has_warning(WarningKind::NonExhaustive),
    ));

    // Missing zero() case is reported.
    let missing = format!(
        "{nat}
         static Nat pred(Nat m) {{
             switch (m) {{ case succ(Nat k): return k; }}
         }}"
    );
    let d = compile(&missing, &CompileOptions::default())
        .unwrap()
        .diagnostics;
    checks.push((
        "missing zero() case reported".into(),
        true,
        d.has_warning(WarningKind::NonExhaustive) || d.has_warning(WarningKind::Unknown),
    ));

    // Figure 12: the cons arm after nil/snoc is redundant.
    let list = jmatch_corpus::jmatch::LIST_INTERFACE;
    let fig12 = format!(
        "{list}
         static int length(List l) {{
             switch (l) {{
                 case nil(): return 0;
                 case snoc(List t, _): return length(t) + 1;
                 case cons(_, List t): return length(t) + 1;
             }}
         }}"
    );
    let d = compile(&fig12, &CompileOptions::default())
        .unwrap()
        .diagnostics;
    checks.push((
        "Figure 12: cons arm after snoc reported redundant".into(),
        true,
        d.has_warning(WarningKind::RedundantArm),
    ));

    // ZNat verifies totality thanks to its private invariant.
    let znat = jmatch_corpus::entry("ZNat").unwrap().combined_jmatch();
    let d = compile(&znat, &CompileOptions::default())
        .unwrap()
        .diagnostics;
    checks.push((
        "ZNat class constructor verifies total".into(),
        false,
        d.warnings_of(WarningKind::TotalityViolation)
            .iter()
            .any(|w| w.context.contains("ZNat.ZNat")),
    ));

    EffectivenessReport { checks }
}

// ---------------------------------------------------------------------------
// Runtime workloads (the `plan_vs_interp` bench)
// ---------------------------------------------------------------------------

/// The iterator-heavy program behind the `plan_vs_interp` bench: Figure 1's
/// `ZNat` naturals (recursive `succ` matching), the cons-list family, and a
/// loop-heavy imperative grinder.
pub fn runtime_workload_source() -> String {
    let mut src = String::new();
    src.push_str(jmatch_corpus::jmatch::NAT_INTERFACE);
    src.push_str(jmatch_corpus::jmatch::ZNAT);
    src.push_str(jmatch_corpus::jmatch::LIST_INTERFACE);
    src.push_str(jmatch_corpus::jmatch::EMPTY_LIST);
    src.push_str(jmatch_corpus::jmatch::CONS_LIST);
    src.push_str(
        r#"
        class Gen {
            int burn(int n) {
                int total = 0;
                int i = 0;
                while (i < n) {
                    foreach (int x = 0 # 1 # 2 # 3 # 4 # 5 # 6 # 7) {
                        total = total + x + i;
                    }
                    i = i + 1;
                }
                return total;
            }
        }
        "#,
    );
    src
}

/// Builds a [`Program`] over [`runtime_workload_source`] with the given
/// engine. For the plan engine this includes the one-time lowering cost,
/// which the per-call workloads then amortize.
pub fn runtime_program(engine: Engine) -> Program {
    let program = Workspace::new()
        .verify(false)
        .max_expansion_depth(2)
        .engine(engine)
        .compile(&runtime_workload_source())
        .expect("runtime workload program parses");
    assert!(
        program.diagnostics().errors.is_empty(),
        "{:?}",
        program.diagnostics().errors
    );
    program
}

/// Peano addition over `ZNat`: builds the naturals `0..=n` and sums
/// `plus(a, b)` over every pair. Each recursive `plus` step pattern-matches
/// `succ` backwards, so the work is dominated by declarative solving.
pub fn nat_plus_workload(program: &Program, n: i64) -> i64 {
    let zero = program.ctor("ZNat", "zero").unwrap();
    let succ = program.ctor("ZNat", "succ").unwrap();
    let plus = program.free_method("plus").unwrap();
    let to_int = program.method("ZNat", "toInt").unwrap();
    let mut nats = Vec::new();
    let mut v = zero.construct(args![]).unwrap();
    nats.push(v.clone());
    for _ in 0..n {
        v = succ.construct(args![v]).unwrap();
        nats.push(v.clone());
    }
    let mut total = 0;
    for a in &nats {
        for b in &nats {
            let s = plus.call(None, args![a.clone(), b.clone()]).unwrap();
            total += to_int.call(Some(&s), args![]).unwrap().as_int().unwrap();
        }
    }
    total
}

/// Cons-list traversal: `size`, the iterative `contains`, and deep equality
/// over two structurally equal lists of length `n`.
pub fn list_workload(program: &Program, n: i64) -> i64 {
    let nil = program.ctor("EmptyList", "nil").unwrap();
    let cons = program.ctor("ConsList", "cons").unwrap();
    let size = program.method("ConsList", "size").unwrap();
    let contains = program.method("ConsList", "contains").unwrap();
    let mk = || {
        let mut l = nil.construct(args![]).unwrap();
        for i in 0..n {
            l = cons.construct(args![i, l]).unwrap();
        }
        l
    };
    let a = mk();
    let b = mk();
    let mut total = size.call(Some(&a), args![]).unwrap().as_int().unwrap();
    for i in 0..n {
        let hit = contains.call(Some(&a), args![i]).unwrap();
        if hit.as_bool() == Some(true) {
            total += 1;
        }
    }
    if program.values_equal(&a, &b).unwrap() {
        total += 1;
    }
    total
}

/// `while` + `foreach` over an 8-way pattern disjunction: pure enumeration
/// of formula solutions inside an imperative body.
pub fn enumeration_workload(program: &Program, rounds: i64) -> i64 {
    let gen = program.instance("Gen").unwrap();
    program
        .method("Gen", "burn")
        .unwrap()
        .call(Some(&gen), args![rounds])
        .unwrap()
        .as_int()
        .unwrap()
}

// ---------------------------------------------------------------------------
// First-solution workloads (the `first_solution` bench)
// ---------------------------------------------------------------------------

/// A balanced `x = 0 | x = 1 | ... | x = n-1` disjunction: `n` solutions,
/// constant work per solution — the enumeration shape that separates lazy
/// pulling from eager materialization most cleanly.
pub fn balanced_disjunction(lo: i64, hi: i64) -> Formula {
    if lo == hi {
        Formula::Cmp(CmpOp::Eq, Expr::Var("x".into()), Expr::IntLit(lo))
    } else {
        let mid = lo + (hi - lo) / 2;
        Formula::Or(
            Box::new(balanced_disjunction(lo, mid)),
            Box::new(balanced_disjunction(mid + 1, hi)),
        )
    }
}

/// Early exit: pull exactly one solution of a prepared query through the
/// lazy [`jmatch_runtime::Solutions`] iterator. O(first solution) work —
/// query preparation (lowering, handle resolution) happened once, outside.
pub fn first_solution_lazy(query: &Query<'_>) -> i64 {
    query.first().and_then(|b| b["x"].as_int()).unwrap()
}

/// The pre-redesign shape: materialize *every* solution (what the eager
/// `Interp::deconstruct` / callback `solve` API forced on embedders), then
/// read the first. O(n) work on the same prepared query.
pub fn first_solution_eager(query: &Query<'_>) -> i64 {
    let all = query.try_collect().unwrap();
    all.first().and_then(|b| b["x"].as_int()).unwrap()
}

/// Builds a `Cons`/`Nil` integer list of length `n` from the corpus cons
/// classes, most-recently-consed head first.
pub fn int_list(program: &Program, n: i64) -> Value {
    let nil = program.ctor("EmptyList", "nil").unwrap();
    let cons = program.ctor("ConsList", "cons").unwrap();
    let mut l = nil.construct(args![]).unwrap();
    for i in (0..n).rev() {
        l = cons.construct(args![i, l]).unwrap();
    }
    l
}

/// First solution of a prepared iterative `contains` query over a list —
/// O(first element), independent of list length.
pub fn first_element_lazy(query: &Query<'_>) -> i64 {
    query
        .first()
        .and_then(|b| b.get("elem").and_then(Value::as_int))
        .unwrap()
}

// ---------------------------------------------------------------------------
// Value-representation workloads (the `repr_hot_paths` bench)
// ---------------------------------------------------------------------------

/// A field-heavy program: an eight-field `Point` read back in full both
/// through field-of-`this` names (method bodies) and through explicit
/// `p.f` field expressions, driven by an imperative loop. Dominated by
/// field resolution — the hot path the slot-indexed object layout
/// replaces per-field hash lookups on.
pub fn repr_field_program(engine: Engine) -> Program {
    let program = Workspace::new()
        .verify(false)
        .engine(engine)
        .compile(REPR_FIELD_SOURCE)
        .expect("repr field program parses");
    assert!(program.diagnostics().errors.is_empty());
    program
}

/// The source of [`repr_field_program`], public so the `bytecode_vs_plan`
/// bench can recompile it with the bytecode pass toggled.
pub const REPR_FIELD_SOURCE: &str = r#"
        class Point {
            int x0;
            int x1;
            int x2;
            int x3;
            int x4;
            int x5;
            int x6;
            int x7;
            constructor at(int a, int b, int c, int d) returns(a, b, c, d)
                ( x0 = a && x1 = b && x2 = c && x3 = d
                  && x4 = a + b && x5 = b + c && x6 = c + d && x7 = d + a )
            int norm1() { return x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7; }
            int mix(int k) {
                return x0 * k + x1 + x2 * k + x3 + x4 * k + x5 + x6 * k + x7;
            }
        }
        static int churn(Point p, int rounds) {
            int total = 0;
            int i = 0;
            while (i < rounds) {
                total = total + p.norm1() + p.mix(i)
                    + p.x0 + p.x1 + p.x2 + p.x3 + p.x4 + p.x5 + p.x6 + p.x7;
                i = i + 1;
            }
            return total;
        }
    "#;

/// Compiles `source` on the plan engine with the bytecode pass toggled —
/// the before/after axis of the `bytecode_vs_plan` bench (`before` walks
/// the goal trees and statement plans, `after` runs the flat register
/// bytecode).
pub fn plan_program_bytecode(source: &str, bytecode: bool) -> Program {
    let program = Workspace::new()
        .verify(false)
        .max_expansion_depth(2)
        .engine(Engine::Plan)
        .bytecode(bytecode)
        .compile(source)
        .expect("bench program parses");
    assert!(
        program.diagnostics().errors.is_empty(),
        "{:?}",
        program.diagnostics().errors
    );
    program
}

/// Compiles `source` on the plan engine with the static-analysis pass
/// toggled — the before/after axis of the `analysis_overhead` bench
/// (`oracle` keeps every choice point and unpruned arm, `analyzed` commits
/// det modes and prunes dead alternatives).
pub fn plan_program_analysis(source: &str, analysis: bool) -> Program {
    let program = Workspace::new()
        .verify(false)
        .max_expansion_depth(2)
        .engine(Engine::Plan)
        .analysis(analysis)
        .compile(source)
        .expect("bench program parses");
    assert!(
        program.diagnostics().errors.is_empty(),
        "{:?}",
        program.diagnostics().errors
    );
    program
}

/// The determinism flagship: `min` walks the left spine of a binary tree;
/// every matching mode is provably at-most-one and error-free, so the
/// analyzed machine commits one choice point per spine node that the
/// unanalyzed oracle keeps live. See `tests/laziness.rs` for the pinned
/// choice-point counts on the same source.
pub const DET_TREE_SOURCE: &str = r#"
    interface Tree {
        constructor leaf() returns();
        constructor node(int k, Tree l, Tree r) returns(k, l, r);
        boolean min(int m) returns(m);
        boolean empty();
    }
    class Leaf implements Tree {
        constructor leaf() returns() ( true )
        constructor node(int k, Tree l, Tree r) returns(k, l, r) ( false )
        boolean min(int m) returns(m) ( false )
        boolean empty() ( true )
    }
    class Node implements Tree {
        int key;
        Tree left;
        Tree right;
        constructor leaf() returns() ( false )
        constructor node(int k, Tree l, Tree r) returns(k, l, r)
            ( key = k && left = l && right = r )
        boolean min(int m) returns(m)
            ( left.min(int lm) && m = lm || left.empty() && m = key )
        boolean empty() ( false )
    }
"#;

/// Runs `min` over a `depth`-deep left chain and returns the (single)
/// solution plus the machine's live / created choice-point counters at the
/// solution — the quantity the determinism commit exists to shrink.
pub fn det_tree_workload(program: &Program, depth: i64) -> (i64, usize, u64) {
    let leaf = program.ctor("Leaf", "leaf").unwrap();
    let node = program.ctor("Node", "node").unwrap();
    let mut t = leaf.construct(args![]).unwrap();
    for i in (0..depth).rev() {
        let sibling = leaf.construct(args![]).unwrap();
        t = node.construct(args![i + 1000, t, sibling]).unwrap();
    }
    let min = program.method("Node", "min").unwrap();
    let query = min.iterate(Some(&t), &Bindings::new()).unwrap();
    let mut solutions = query.solutions();
    let m = solutions.next().expect("min has a solution")["m"]
        .as_int()
        .unwrap();
    (
        m,
        solutions.choice_points().unwrap(),
        solutions.choice_points_created().unwrap(),
    )
}

/// Field-access workload: `rounds` iterations of two methods that each
/// read all four `Point` fields.
pub fn repr_field_workload(program: &Program, rounds: i64) -> i64 {
    let at = program.ctor("Point", "at").unwrap();
    let churn = program.free_method("churn").unwrap();
    let p = at.construct(args![3, 5, 7, 11]).unwrap();
    churn
        .call(None, args![p, rounds])
        .unwrap()
        .as_int()
        .unwrap()
}

/// How many classes / switch arms the dispatch workload uses.
pub const REPR_DISPATCH_ARMS: usize = 64;

/// A 64-class, 64-arm constructor-dispatch program: `route` switches a
/// `Tag` value over one class-constructor pattern per concrete class.
/// Without tag dispatch every call tries the arms one by one (each a
/// method lookup plus a failed match or conversion attempt); with
/// class-keyed dispatch tables only the one possible arm is tried.
pub fn repr_dispatch_source() -> String {
    let mut src = String::from("interface Tag { }\n");
    for k in 0..REPR_DISPATCH_ARMS {
        src.push_str(&format!(
            "class C{k} implements Tag {{ int v; C{k}(int n) returns(n) ( v = n ) }}\n"
        ));
    }
    src.push_str("static int route(Tag t) {\n    switch (t) {\n");
    for k in 0..REPR_DISPATCH_ARMS {
        src.push_str(&format!("        case C{k}(int a): return a + {k};\n"));
    }
    src.push_str("    }\n}\n");
    src
}

/// Builds the dispatch program on the given engine.
pub fn repr_dispatch_program(engine: Engine) -> Program {
    let program = Workspace::new()
        .verify(false)
        .engine(engine)
        .compile(&repr_dispatch_source())
        .expect("repr dispatch program parses");
    assert!(
        program.diagnostics().errors.is_empty(),
        "{:?}",
        program.diagnostics().errors
    );
    program
}

/// Constructor-dispatch workload: routes one instance of every class
/// through the 64-arm switch.
pub fn repr_dispatch_workload(program: &Program) -> i64 {
    let route = program.free_method("route").unwrap();
    let mut total = 0;
    for k in 0..REPR_DISPATCH_ARMS {
        let class = format!("C{k}");
        let v = program
            .ctor(&class, &class)
            .unwrap()
            .construct(args![k as i64])
            .unwrap();
        total += route.call(None, args![v]).unwrap().as_int().unwrap();
    }
    total
}

/// Deconstruction fan-out workload: walks the spine of an `n`-element cons
/// list by repeated backward-mode `cons` queries, probing the `nil`
/// predicate at every cell. Dominated by constructor matching and solution
/// row extraction.
pub fn repr_deconstruct_workload(program: &Program, n: i64) -> i64 {
    let list = int_list(program, n);
    let mut total = 0;
    let mut cur = list;
    loop {
        if program.matches(&cur, "nil").unwrap() {
            break;
        }
        let rows = program
            .deconstruct(&cur, "cons")
            .unwrap()
            .try_collect_rows()
            .unwrap();
        let row = &rows[0];
        total += row[0].as_int().unwrap();
        cur = row[1].clone();
    }
    total
}

// ---------------------------------------------------------------------------
// Parallel-scaling workload (`parallel_scaling` bench, BENCH_par.json)
// ---------------------------------------------------------------------------

/// The OR-parallel scaling workload: a complete binary tree whose `vals`
/// method enumerates every leaf left-to-right, so the choice tree is a
/// full binary tree — maximally branchy, the shape work stealing splits
/// best. Identical to the `tests/parallel.rs` workload.
/// The parallel-scaling workload source: a complete binary tree whose
/// `vals` method enumerates the leaves left-to-right, one two-way choice
/// point per `Node`. Public so tests can recompile it with non-default
/// compiler knobs (e.g. bytecode off) against the same workload.
pub const PARALLEL_TREE_SOURCE: &str = r#"
    interface Tree {
        constructor leaf(int v) returns(v);
        constructor node(Tree l, Tree r) returns(l, r);
        boolean vals(int x) iterates(x);
    }
    class Leaf implements Tree {
        int val;
        constructor leaf(int v) returns(v) ( val = v )
        constructor node(Tree l, Tree r) returns(l, r) ( false )
        boolean vals(int x) iterates(x) ( leaf(x) )
    }
    class Node implements Tree {
        Tree left;
        Tree right;
        constructor leaf(int v) returns(v) ( false )
        constructor node(Tree l, Tree r) returns(l, r) ( left = l && right = r )
        boolean vals(int x) iterates(x) ( node(Tree l, _) && l.vals(x) || node(_, Tree r) && r.vals(x) )
    }
"#;

/// Compiles the parallel-scaling program on the plan engine.
pub fn parallel_program() -> Program {
    let program = Workspace::new()
        .verify(false)
        .compile(PARALLEL_TREE_SOURCE)
        .expect("parallel workload program parses");
    assert!(
        program.diagnostics().errors.is_empty(),
        "{:?}",
        program.diagnostics().errors
    );
    program
}

/// Builds a complete binary tree of the given depth with leaves numbered
/// from 0 in order.
pub fn parallel_tree(program: &Program, depth: u32) -> Value {
    parallel_tree_from(program, depth, 0)
}

/// Like [`parallel_tree`] with leaves numbered from `base` (so a batch of
/// trees can carry disjoint leaf values).
pub fn parallel_tree_from(program: &Program, depth: u32, base: i64) -> Value {
    fn build(
        leaf: &jmatch_runtime::CtorRef,
        node: &jmatch_runtime::CtorRef,
        depth: u32,
        next: &mut i64,
    ) -> Value {
        if depth == 0 {
            let v = leaf.construct(args![*next]).unwrap();
            *next += 1;
            v
        } else {
            let l = build(leaf, node, depth - 1, next);
            let r = build(leaf, node, depth - 1, next);
            node.construct(args![l, r]).unwrap()
        }
    }
    let leaf = program.ctor("Leaf", "leaf").unwrap();
    let node = program.ctor("Node", "node").unwrap();
    let mut next = base;
    build(&leaf, &node, depth, &mut next)
}

/// Full sequential enumeration of the tree's leaves; returns the leaf
/// values in sequential (in-order) enumeration order.
pub fn parallel_enumerate_seq(program: &Program, tree: &Value) -> Vec<i64> {
    let vals = program.method("Node", "vals").unwrap();
    let query = vals.iterate(Some(tree), &Bindings::new()).unwrap();
    let mut solutions = query.solutions();
    let out: Vec<i64> = solutions
        .by_ref()
        .map(|b| b["x"].as_int().unwrap())
        .collect();
    assert!(solutions.error().is_none(), "{:?}", solutions.error());
    out
}

/// Full OR-parallel enumeration over `threads` workers; `ordered` selects
/// the sequential-order reorder buffer, otherwise solutions are merged as
/// produced.
pub fn parallel_enumerate_par(
    program: &Program,
    tree: &Value,
    threads: usize,
    ordered: bool,
) -> Vec<i64> {
    let vals = program.method("Node", "vals").unwrap();
    let query = vals.iterate(Some(tree), &Bindings::new()).unwrap();
    let mut solutions = if ordered {
        query.par_solutions(threads)
    } else {
        query.par_solutions_unordered(threads)
    };
    let out: Vec<i64> = solutions
        .by_ref()
        .map(|b| b["x"].as_int().unwrap())
        .collect();
    assert!(solutions.error().is_none(), "{:?}", solutions.error());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_relation_matches_paper_shape() {
        let pts = figure8_points(-1..=4);
        // Every relation point lies inside the matches region.
        assert!(pts.iter().all(|p| !p.in_relation || p.in_matches_region));
        // The matches region is a strict over-approximation.
        assert!(pts.iter().any(|p| p.in_matches_region && !p.in_relation));
        // No point with negative n anywhere.
        assert!(pts
            .iter()
            .filter(|p| p.n < 0)
            .all(|p| !p.in_relation && !p.in_matches_region));
    }

    #[test]
    fn figure8_preconditions_have_three_modes() {
        let pre = figure8_preconditions();
        assert_eq!(pre.len(), 3);
        // The backward mode's precondition is `true` (the bound is dropped).
        assert!(pre[1].1.contains("Bool(true)"), "{:?}", pre[1]);
        // The predicate mode is refined to false by notall.
        assert!(pre[2].1.contains("Bool(false)"), "{:?}", pre[2]);
    }

    #[test]
    fn measure_entry_produces_counts_and_times() {
        let e = jmatch_corpus::entry("Nat").unwrap();
        let row = measure_entry(&e, 2);
        assert!(row.jmatch_tokens > 0 && row.java_tokens > 0);
        assert!(row.time_with >= Duration::from_nanos(1));
    }

    /// Asserting inside `push`/`pop` scopes, popping, and re-asserting must
    /// give the same verdicts as fresh solvers on the same formulas — here
    /// checked end-to-end: the shared session, fresh-per-query, and
    /// fresh-per-method verification modes produce identical diagnostics.
    #[test]
    fn session_modes_agree_on_the_corpus() {
        for name in ["Nat", "ZNat", "List", "ConsList", "TreeLeaf"] {
            let entry = jmatch_corpus::entry(name).unwrap();
            let compiled = compile(
                &entry.combined_jmatch(),
                &CompileOptions {
                    verify: false,
                    max_expansion_depth: 2,
                },
            )
            .unwrap();
            let shared = verify_shared_session(&compiled.table, 2);
            let per_query = verify_fresh_per_query(&compiled.table, 2);
            let per_method = verify_fresh_per_method(&compiled.table, 2);
            assert_eq!(shared, per_query, "{name}: shared vs fresh-per-query");
            assert_eq!(shared, per_method, "{name}: shared vs fresh-per-method");
        }
    }
}
