//! Post-lowering static analysis over query plans: determinism inference,
//! dead-alternative pruning, and IR-level lints.
//!
//! This module is pass 3.5 of [`ProgramPlan::compile`]: it runs after the
//! dispatch tables are materialized (so inter-procedural facts can flow
//! through them) and before bytecode emission (so the bytecode of pass 4 is
//! compiled from the *pruned* plans and stays a mirror image of the goal
//! trees). It produces two kinds of output:
//!
//! * **Facts** consumed by the runtimes — today a single bit per
//!   mode-specialized solved form, [`SolvedForm::det`], meaning *this form
//!   emits at most one solution and its search cannot raise a runtime
//!   error*. The plan evaluator commits to the first solution of a `Det`
//!   form instead of re-entering its disjunctions, and the stack machine
//!   pops every choice point a `Det` constructor match created as soon as
//!   its solution row is collected — shrinking trails, live choice stacks,
//!   and the replay prefixes `par.rs` donates.
//! * **Lints** surfaced as structured [`Warning`]s (see
//!   [`AnalysisReport::lints`]): unused bindings, always-failing invokes,
//!   dead (unreachable) private methods, and unbounded left recursion.
//!
//! # The fact lattice
//!
//! Determinism is inferred as a joint fixpoint of two facts per solved
//! form, linked inter-procedurally through the dispatch tables:
//!
//! * [`Cardinality`] — an upper bound on the number of solutions a form
//!   emits, ordered `Zero < AtMostOne < Unbounded`. The fixpoint is a
//!   *least* fixpoint: every form starts at `Zero` and ascends as the
//!   transfer rules observe emissions. Conjunction multiplies bounds
//!   (`Zero` annihilates), disjunction adds them — except when every pair
//!   of branches is *discriminated* by mutually exclusive first conjuncts
//!   (distinct literals on the same primitive subject, incompatible
//!   orderings on the same operands, or constructor-set masks with no
//!   common class), in which case at most one branch can emit and the
//!   bound is the maximum instead of the sum. An `Invoke` joins over every
//!   implementation its dispatch table can select: the receiver has one
//!   runtime class, so the bound is the maximum over candidates, and the
//!   caller's argument patterns only filter rows (the runtimes take the
//!   first solution of each argument pattern per row).
//! * `no_err` — whether the *entire* search of the form (including
//!   alternatives that are explored and abandoned) is free of runtime
//!   errors. This is a *greatest* fixpoint: every form starts error-free
//!   and descends when a transfer rule finds a possibly-erroring
//!   operation. Both directions are monotone, so the joint iteration
//!   terminates.
//!
//! A form is `Det` iff its cardinality is at most `AtMostOne` *and* it is
//! `no_err`. Both halves are required: a form with one solution but a
//! possibly-erroring abandoned alternative is not committable, because the
//! unanalyzed oracle would have surfaced the error.
//!
//! # The observation-equivalence argument
//!
//! Every transformation and fact in this module is justified against the
//! unanalyzed plan as a differential oracle (the `analysis(false)` knob of
//! the embedding API keeps that oracle compilable):
//!
//! * Pruned `Any` branches and `cond` arms are literal [`Goal::Fail`]s:
//!   they emit nothing and cannot error, so removing them changes neither
//!   the solution sequence nor the error behavior.
//! * A `switch` arm is pruned only when an earlier arm *dominates* it: an
//!   earlier irrefutable, unguarded arm (matching can neither fail nor
//!   error), or an earlier arm with identical all-literal patterns (if the
//!   earlier arm errors or fails on a value, the pruned arm would have
//!   erred or failed identically). Case bodies are never removed — only
//!   the dead *tests* — so fall-through targets are untouched.
//! * `Det` commits only skip work the cardinality analysis proved cannot
//!   emit and the `no_err` analysis proved cannot error.
//!
//! The `no_err` half trusts declared types the same way the §5 verifier
//! does: a slot declared `int` is assumed to hold an `int` at run time, and
//! `int` arithmetic is assumed to stay in range. For type-correct inputs —
//! which is what every differential suite runs — the analyzed and
//! unanalyzed programs are transcript-identical, including errors; a
//! program that lies about its types can observe the difference, which is
//! the same caveat the paper's verification story carries. When in doubt a
//! rule says "not deterministic" or "may error": the only cost of
//! imprecision is a missed commit, never a wrong answer.
//!
//! [`ProgramPlan::compile`]: crate::lower::ProgramPlan::compile
//! [`SolvedForm::det`]: crate::lower::SolvedForm

use crate::diag::{Warning, WarningKind};
use crate::lower::{
    BodyPlan, CallKind, CaseGuard, CasePlan, CaseTarget, ClassCheck, DispatchTable, Goal,
    MethodPlan, PExpr, PlanId, ProgramPlan, SlotId, SolvedForm, StmtPlan,
};
use crate::table::ClassTable;
use crate::verify::{Verifier, VerifyOptions};
use jmatch_syntax::ast::{BinOp, CmpOp, MethodKind, Type, Visibility};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

/// Options of the analysis pass (see [`crate::lower::PlanOptions`]).
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Cross-check every switch/cond-arm prune against the §5 verifier
    /// through the incremental SMT session: each prune's
    /// [`Prune::smt_confirmed`] records whether the verifier independently
    /// flagged the arm [`WarningKind::RedundantArm`]. Off by default — the
    /// prunes are sound by construction (see the module docs) and the
    /// verifier costs SMT time; the differential cross-check test turns it
    /// on.
    pub smt: bool,
}

/// Why a dead alternative was pruned (its guard-mask justification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Justification {
    /// The alternative is a literal `Fail`: it can neither emit nor error.
    StaticallyFalse,
    /// An earlier irrefutable, unguarded arm always matches first.
    CatchAllDominated,
    /// An earlier arm has identical all-literal patterns, so this arm can
    /// never be the first to match (and fails/errors exactly when the
    /// earlier one does).
    DuplicateArm,
}

impl std::fmt::Display for Justification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Justification::StaticallyFalse => "statically false",
            Justification::CatchAllDominated => "dominated by an earlier catch-all arm",
            Justification::DuplicateArm => "duplicate of an earlier arm",
        };
        write!(f, "{s}")
    }
}

/// One dead alternative removed by the reachability analysis.
#[derive(Debug, Clone)]
pub struct Prune {
    /// The method (qualified name) the alternative lived in.
    pub context: String,
    /// Which alternative was removed (human-readable site).
    pub site: String,
    /// Why removal is observation-equivalent.
    pub justification: Justification,
    /// When [`AnalysisOptions::smt`] is on and the prune removed a
    /// switch/cond arm: whether the §5 verifier independently reported the
    /// arm redundant. `None` when the cross-check did not run (option off,
    /// or the prune site has no source-level arm).
    pub smt_confirmed: Option<bool>,
}

/// Per-solved-form facts of the determinism analysis (see the module docs
/// for the lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormFacts {
    /// Upper bound on the number of solutions the form emits.
    pub card: Cardinality,
    /// Whether the form's entire search is free of runtime errors.
    pub no_err: bool,
}

impl FormFacts {
    const BOTTOM: FormFacts = FormFacts {
        card: Cardinality::Zero,
        no_err: true,
    };

    /// Whether the facts make the form committable.
    pub fn det(&self) -> bool {
        self.card <= Cardinality::AtMostOne && self.no_err
    }
}

/// The solution-count half of the fact lattice, ordered
/// `Zero < AtMostOne < Unbounded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cardinality {
    /// The form provably emits nothing.
    Zero,
    /// The form emits at most one solution.
    AtMostOne,
    /// No useful bound.
    Unbounded,
}

impl Cardinality {
    /// Sequential composition (conjunction): `Zero` annihilates, otherwise
    /// the bounds multiply — which on this three-point chain is the max.
    fn seq(self, other: Cardinality) -> Cardinality {
        if self == Cardinality::Zero || other == Cardinality::Zero {
            Cardinality::Zero
        } else {
            self.max(other)
        }
    }

    /// Alternative composition (disjunction): the bounds add.
    fn alt(self, other: Cardinality) -> Cardinality {
        match (self, other) {
            (Cardinality::Zero, c) | (c, Cardinality::Zero) => c,
            _ => Cardinality::Unbounded,
        }
    }
}

/// Everything the analysis pass produced, kept on the finished
/// [`ProgramPlan`] for the embedding API ([`Program::lints`]), the
/// `jmatch-lint` bin, and the serve protocol's `lint` request.
///
/// [`Program::lints`]: ../../jmatch_runtime/struct.Program.html#method.lints
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// IR-level lints, in method order.
    pub lints: Vec<Warning>,
    /// Dead alternatives removed from the plans.
    pub prunes: Vec<Prune>,
    /// Number of solved forms analyzed.
    pub forms: usize,
    /// Number of solved forms proved deterministic ([`SolvedForm::det`]).
    ///
    /// [`SolvedForm::det`]: crate::lower::SolvedForm
    pub det_forms: usize,
    /// Final facts per plan: `[forward, matching, equals_bound]`.
    pub(crate) facts: Vec<[FormFacts; 3]>,
    /// Range of [`AnalysisReport::prunes`] contributed by each plan
    /// (`start, len`), so incremental re-analysis can carry a clean plan's
    /// records forward exactly.
    pub(crate) prune_index: Vec<(u32, u32)>,
}

impl AnalysisReport {
    /// The facts inferred for a method's matching-mode solved form.
    pub fn matching_facts(&self, pid: PlanId) -> Option<FormFacts> {
        self.facts.get(pid).map(|f| f[1])
    }
}

/// Runs the full pass pipeline over a lowered program: prune, determinism
/// fixpoint, lints. Mutates the plans in place (pruned goals, `det` flags)
/// and returns the report.
pub fn analyze(
    table: &Arc<ClassTable>,
    methods: &mut [Arc<MethodPlan>],
    dispatch: &[DispatchTable],
    opts: &AnalysisOptions,
) -> AnalysisReport {
    analyze_incremental(table, methods, dispatch, opts, None)
}

/// [`analyze`] with carry-forward: when `prev` is `Some((report, dirty))`,
/// pass A (pruning, the potentially solver-backed rewrite) runs only on
/// plans with `dirty[pid]`, copying the previous report's prune records for
/// clean plans — whose goals are already the pruned ones, shared by `Arc`
/// from the previous generation. The determinism fixpoint (pass B) and the
/// lints (pass C) are cheap and inter-procedural, so they re-run globally;
/// a clean plan's `det` bits are rewritten (via [`Arc::make_mut`]) only
/// when they actually changed, preserving pointer equality — and therefore
/// bytecode reuse — for plans the edit did not affect.
pub fn analyze_incremental(
    table: &Arc<ClassTable>,
    methods: &mut [Arc<MethodPlan>],
    dispatch: &[DispatchTable],
    opts: &AnalysisOptions,
    prev: Option<(&AnalysisReport, &[bool])>,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();

    // Pass A: dead-alternative pruning (rewrites the plans).
    for pid in 0..methods.len() {
        if let Some((prev_report, dirty)) = prev {
            if !dirty[pid] {
                // Clean plan: the shared goals are already pruned; carry
                // the previous records forward verbatim.
                let start = report.prunes.len() as u32;
                if let Some(&(s, l)) = prev_report.prune_index.get(pid) {
                    report
                        .prunes
                        .extend_from_slice(&prev_report.prunes[s as usize..(s + l) as usize]);
                }
                report
                    .prune_index
                    .push((start, report.prunes.len() as u32 - start));
                continue;
            }
        }
        let method = Arc::make_mut(&mut methods[pid]);
        let ctx = method.info.qualified_name();
        let mut prunes = Vec::new();
        match &mut method.body {
            BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            } => {
                simplify_goal(&mut forward.goal, &mut prunes);
                simplify_goal(&mut matching.goal, &mut prunes);
                if let Some(eb) = equals_bound {
                    simplify_goal(&mut eb.goal, &mut prunes);
                }
            }
            BodyPlan::Block(bp) => prune_stmts(&mut bp.stmts, &mut prunes),
            BodyPlan::Absent => {}
        }
        if !prunes.is_empty() && opts.smt {
            let confirmed = smt_confirms_redundancy(table, &methods[pid]);
            for p in &mut prunes {
                if matches!(
                    p.justification,
                    Justification::CatchAllDominated | Justification::DuplicateArm
                ) {
                    p.smt_confirmed = Some(confirmed);
                }
            }
        }
        let start = report.prunes.len() as u32;
        for mut p in prunes {
            p.context = ctx.clone();
            report.prunes.push(p);
        }
        report
            .prune_index
            .push((start, report.prunes.len() as u32 - start));
    }

    // Pass B: determinism / cardinality fixpoint.
    let mut facts = vec![[FormFacts::BOTTOM; 3]; methods.len()];
    loop {
        let mut changed = false;
        for pid in 0..methods.len() {
            if let BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            } = &methods[pid].body
            {
                let m = &methods[pid];
                let fwd = method_form_facts(
                    table,
                    methods,
                    dispatch,
                    &facts,
                    m,
                    forward,
                    FormIx::Forward,
                );
                let bwd = method_form_facts(
                    table,
                    methods,
                    dispatch,
                    &facts,
                    m,
                    matching,
                    FormIx::Matching,
                );
                let eq = equals_bound
                    .as_ref()
                    .map(|eb| {
                        method_form_facts(
                            table,
                            methods,
                            dispatch,
                            &facts,
                            m,
                            eb,
                            FormIx::EqualsBound,
                        )
                    })
                    .unwrap_or(FormFacts::BOTTOM);
                let next = [fwd, bwd, eq];
                if facts[pid] != next {
                    facts[pid] = next;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for pid in 0..methods.len() {
        // Compare before writing: rewriting a shared plan's `det` bits
        // through `Arc::make_mut` would clone it and break the pointer
        // equality incremental recompilation keys bytecode reuse on, so
        // only plans whose bits actually changed are touched.
        let (want_f, want_m, want_e) = (
            facts[pid][0].det(),
            facts[pid][1].det(),
            facts[pid][2].det(),
        );
        let Some((cur_f, cur_m, cur_e)) = (match &methods[pid].body {
            BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            } => Some((
                forward.det,
                matching.det,
                equals_bound.as_ref().map(|eb| eb.det),
            )),
            _ => None,
        }) else {
            continue;
        };
        report.forms += 2 + usize::from(cur_e.is_some());
        report.det_forms += usize::from(want_f) + usize::from(want_m);
        if cur_e.is_some() {
            report.det_forms += usize::from(want_e);
        }
        let dirty = cur_f != want_f || cur_m != want_m || cur_e.is_some_and(|e| e != want_e);
        if dirty {
            if let BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            } = &mut Arc::make_mut(&mut methods[pid]).body
            {
                forward.det = want_f;
                matching.det = want_m;
                if let Some(eb) = equals_bound {
                    eb.det = want_e;
                }
            }
        }
    }

    // Pass C: lints.
    lint_unused_bindings(methods, &mut report.lints);
    lint_always_failing_invokes(methods, dispatch, &mut report.lints);
    lint_dead_methods(methods, dispatch, &mut report.lints);
    lint_unbounded_recursion(methods, &mut report.lints);

    report.facts = facts;
    report
}

/// Facts for a standalone-lowered form (the ad-hoc `solve` entry point),
/// computed against the frozen facts of a finished plan. Standalone forms
/// are analyzed once, after the program fixpoint, so a single monotone
/// evaluation suffices.
pub(crate) fn standalone_facts(
    plan: &ProgramPlan,
    form: &SolvedForm,
    bound_slots: &[SlotId],
    this_class: Option<&str>,
) -> FormFacts {
    let Some(report) = plan.analysis() else {
        return FormFacts {
            card: Cardinality::Unbounded,
            no_err: false,
        };
    };
    let cx = FormCx {
        table: plan.table(),
        methods: plan.methods(),
        dispatch: plan.dispatch_tables(),
        facts: &report.facts,
        owner: this_class.map(str::to_owned),
        this_present: form.this_present,
        slot_ty: collect_slot_types(form, None),
    };
    let mut env = Env::new(form.frame.len());
    for &s in bound_slots {
        env.bind_must(s);
    }
    cx.goal_facts(&form.goal, &mut env)
}

// ---------------------------------------------------------------------------
// Pass A: pruning
// ---------------------------------------------------------------------------

fn prune(site: String, justification: Justification) -> Prune {
    Prune {
        context: String::new(),
        site,
        justification,
        smt_confirmed: None,
    }
}

/// Whether a goal provably cannot raise a runtime error, by a cheap
/// syntactic check (used to justify collapsing a conjunction around an
/// embedded `Fail` — the conjuncts *before* the `Fail` must not error).
fn cheaply_no_err(g: &Goal) -> bool {
    match g {
        Goal::True | Goal::Fail | Goal::Trivial => true,
        Goal::Seq(gs) | Goal::Any(gs) => gs.iter().all(cheaply_no_err),
        _ => false,
    }
}

/// Recursively simplifies a goal, removing provably-dead alternatives.
fn simplify_goal(g: &mut Goal, out: &mut Vec<Prune>) {
    match g {
        Goal::Seq(gs) => {
            for sub in gs.iter_mut() {
                simplify_goal(sub, out);
            }
            // A conjunction containing `Fail` emits nothing; it collapses
            // to `Fail` only when everything before the `Fail` is cheaply
            // error-free (otherwise the prefix's error is observable).
            if let Some(i) = gs.iter().position(|s| matches!(s, Goal::Fail)) {
                if gs[..i].iter().all(cheaply_no_err) {
                    if gs.len() > 1 {
                        out.push(prune(
                            "conjunction".to_owned(),
                            Justification::StaticallyFalse,
                        ));
                    }
                    *g = Goal::Fail;
                }
            }
        }
        Goal::DynSeq(items) => {
            for (_, sub) in items.iter_mut() {
                simplify_goal(sub, out);
            }
        }
        Goal::Any(branches) => {
            for sub in branches.iter_mut() {
                simplify_goal(sub, out);
            }
            if branches.iter().any(|b| matches!(b, Goal::Fail)) {
                let before = branches.len();
                branches.retain(|b| !matches!(b, Goal::Fail));
                for _ in branches.len()..before {
                    out.push(prune("disjunct".to_owned(), Justification::StaticallyFalse));
                }
            }
            match branches.len() {
                0 => *g = Goal::Fail,
                1 => *g = branches.pop().expect("len checked"),
                _ => {}
            }
        }
        Goal::Not(inner) => simplify_goal(inner, out),
        _ => {}
    }
}

/// Whether a case pattern matches every value without failing or erroring.
fn irrefutable_pattern(p: &PExpr) -> bool {
    matches!(p, PExpr::Wildcard | PExpr::Decl(_, _, ClassCheck::Any))
}

/// Whether a case pattern is a primitive literal (so matching it against a
/// given value always fails, succeeds, or errors the same way).
fn literal_pattern(p: &PExpr) -> bool {
    matches!(
        p,
        PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null
    )
}

fn prune_switch_cases(cases: &mut Vec<CasePlan>, out: &mut Vec<Prune>) {
    // (a) Arms after an earlier irrefutable, unguarded arm never run.
    let dominator = cases.iter().position(|c| {
        c.patterns.iter().all(irrefutable_pattern)
            && c.guards.iter().all(|gd| matches!(gd, CaseGuard::Any))
            && matches!(c.target, CaseTarget::Body(_))
    });
    if let Some(d) = dominator {
        for i in d + 1..cases.len() {
            out.push(prune(
                format!("switch arm {}", i + 1),
                Justification::CatchAllDominated,
            ));
        }
        cases.truncate(d + 1);
    }
    // (b) Arms whose all-literal patterns duplicate an earlier arm's.
    let mut i = 1;
    while i < cases.len() {
        let dup = cases[i].patterns.iter().all(literal_pattern)
            && cases[..i].iter().any(|c| c.patterns == cases[i].patterns);
        if dup {
            out.push(prune(
                format!("switch arm {}", i + 1),
                Justification::DuplicateArm,
            ));
            cases.remove(i);
        } else {
            i += 1;
        }
    }
}

fn prune_stmts(stmts: &mut [StmtPlan], out: &mut Vec<Prune>) {
    for s in stmts.iter_mut() {
        match s {
            StmtPlan::Let(g) => simplify_goal(g, out),
            StmtPlan::Switch {
                cases,
                bodies,
                default,
                ..
            } => {
                prune_switch_cases(cases, out);
                for b in bodies.iter_mut() {
                    prune_stmts(b, out);
                }
                if let Some(d) = default {
                    prune_stmts(d, out);
                }
            }
            StmtPlan::Cond { arms, else_arm } => {
                let before = arms.len();
                let mut removed = 0;
                arms.retain_mut(|(g, body)| {
                    simplify_goal(g, out);
                    prune_stmts(body, out);
                    let dead = matches!(g, Goal::Fail);
                    removed += usize::from(dead);
                    !dead
                });
                for i in 0..removed {
                    out.push(prune(
                        format!("cond arm (of {before}, #{})", i + 1),
                        Justification::StaticallyFalse,
                    ));
                }
                if let Some(e) = else_arm {
                    prune_stmts(e, out);
                }
            }
            StmtPlan::If { cond, then, els } => {
                simplify_goal(cond, out);
                prune_stmts(then, out);
                if let Some(e) = els {
                    prune_stmts(e, out);
                }
            }
            StmtPlan::Foreach { goal, body, .. } => {
                simplify_goal(goal, out);
                prune_stmts(body, out);
            }
            StmtPlan::While { cond, body } => {
                simplify_goal(cond, out);
                prune_stmts(body, out);
            }
            StmtPlan::Block(b) => prune_stmts(b, out),
            StmtPlan::Return(_)
            | StmtPlan::Assign(_, _)
            | StmtPlan::AssignUnsupported(_)
            | StmtPlan::Expr(_) => {}
        }
    }
}

/// Runs the §5 verifier on one method through the incremental SMT session
/// and reports whether it flagged any arm redundant — the cross-check of
/// [`AnalysisOptions::smt`].
fn smt_confirms_redundancy(table: &Arc<ClassTable>, method: &MethodPlan) -> bool {
    let verifier = Verifier::new(table.clone(), VerifyOptions::default());
    let mut sess = verifier.new_session();
    let mut diags = crate::diag::Diagnostics::new();
    let owner = table.type_info(&method.info.owner);
    verifier.verify_method_in(&mut sess, owner, &method.info, &mut diags);
    diags.has_warning(WarningKind::RedundantArm)
}

// ---------------------------------------------------------------------------
// Pass B: determinism / cardinality
// ---------------------------------------------------------------------------

/// Which mode-specialized form of a plan is being analyzed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FormIx {
    Forward,
    Matching,
    EqualsBound,
}

/// Binding state during the abstract walk: `must` ⊆ bound ⊆ `may`.
#[derive(Clone)]
struct Env {
    must: Vec<bool>,
    may: Vec<bool>,
}

impl Env {
    fn new(len: usize) -> Env {
        Env {
            must: vec![false; len],
            may: vec![false; len],
        }
    }

    fn bind_must(&mut self, s: SlotId) {
        if let Some(b) = self.must.get_mut(s as usize) {
            *b = true;
        }
        if let Some(b) = self.may.get_mut(s as usize) {
            *b = true;
        }
    }

    fn bind_may(&mut self, s: SlotId) {
        if let Some(b) = self.may.get_mut(s as usize) {
            *b = true;
        }
    }

    fn is_must(&self, s: SlotId) -> bool {
        self.must.get(s as usize).copied().unwrap_or(false)
    }

    fn is_may(&self, s: SlotId) -> bool {
        self.may.get(s as usize).copied().unwrap_or(false)
    }

    /// Join after a disjunction: the continuation sees *some* branch's
    /// bindings, so `must` intersects and `may` unions.
    fn join(&mut self, other: &Env) {
        for (a, b) in self.must.iter_mut().zip(&other.must) {
            *a = *a && *b;
        }
        for (a, b) in self.may.iter_mut().zip(&other.may) {
            *a = *a || *b;
        }
    }
}

/// The static type of a slot, when the declaration sites pin one down.
fn collect_slot_types(form: &SolvedForm, method: Option<&MethodPlan>) -> Vec<Option<Type>> {
    let mut tys: Vec<Option<Type>> = vec![None; form.frame.len()];
    let mut put = |slot: SlotId, ty: &Type| {
        let entry = &mut tys[slot as usize];
        match entry {
            None => *entry = Some(ty.clone()),
            // Conflicting declarations: trust nothing.
            Some(t) if t != ty => *entry = Some(Type::Object),
            _ => {}
        }
    };
    if let Some(m) = method {
        for (param, &slot) in m.info.decl.params.iter().zip(&form.param_slots) {
            put(slot, &param.ty);
        }
        put(form.result_slot, &m.info.result_type());
    }
    fn walk_expr(e: &PExpr, put: &mut dyn FnMut(SlotId, &Type)) {
        match e {
            PExpr::Decl(ty, Some(slot), _) => put(*slot, ty),
            PExpr::Decl(_, None, _) => {}
            PExpr::Field(inner, _, _) | PExpr::Neg(inner) => walk_expr(inner, put),
            PExpr::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    walk_expr(r, put);
                }
                for a in args {
                    walk_expr(a, put);
                }
            }
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) | PExpr::OrPat(a, b) | PExpr::As(a, b) => {
                walk_expr(a, put);
                walk_expr(b, put);
            }
            PExpr::NewArray(_, inner) => walk_expr(inner, put),
            PExpr::Tuple(es) => es.iter().for_each(|e| walk_expr(e, put)),
            PExpr::Where(p, g) => {
                walk_expr(p, put);
                walk_goal(g, put);
            }
            _ => {}
        }
    }
    fn walk_goal(g: &Goal, put: &mut dyn FnMut(SlotId, &Type)) {
        match g {
            Goal::Seq(gs) | Goal::Any(gs) => gs.iter().for_each(|g| walk_goal(g, put)),
            Goal::DynSeq(items) => items.iter().for_each(|(_, g)| walk_goal(g, put)),
            Goal::Not(inner) => walk_goal(inner, put),
            Goal::Unify(a, b) | Goal::Compare(_, a, b) => {
                walk_expr(a, put);
                walk_expr(b, put);
            }
            Goal::Invoke { receiver, args, .. } => {
                if let Some(r) = receiver {
                    walk_expr(r, put);
                }
                args.iter().for_each(|a| walk_expr(a, put));
            }
            Goal::Test(e) => walk_expr(e, put),
            Goal::True | Goal::Fail | Goal::Trivial => {}
        }
    }
    walk_goal(&form.goal, &mut put);
    tys
}

/// Context of one solved-form analysis.
struct FormCx<'a> {
    table: &'a ClassTable,
    methods: &'a [Arc<MethodPlan>],
    dispatch: &'a [DispatchTable],
    facts: &'a [[FormFacts; 3]],
    /// Owner class of the method (the static type of `this`).
    owner: Option<String>,
    this_present: bool,
    slot_ty: Vec<Option<Type>>,
}

/// One transfer-function evaluation for one mode-specialized form of one
/// method, against the current fixpoint facts.
fn method_form_facts(
    table: &ClassTable,
    methods: &[Arc<MethodPlan>],
    dispatch: &[DispatchTable],
    facts: &[[FormFacts; 3]],
    method: &MethodPlan,
    form: &SolvedForm,
    ix: FormIx,
) -> FormFacts {
    let cx = FormCx {
        table,
        methods,
        dispatch,
        facts,
        owner: table
            .type_info(&method.info.owner)
            .map(|info| info.name.clone()),
        this_present: form.this_present,
        slot_ty: collect_slot_types(form, Some(method)),
    };
    let mut env = Env::new(form.frame.len());
    match ix {
        // Forward: parameters known, result/fields unknown.
        FormIx::Forward => {
            for &s in &form.param_slots {
                env.bind_must(s);
            }
        }
        // Matching: `this` known, parameters unknown (field slots read
        // through the field-of-`this` fallback, not through bindings).
        FormIx::Matching => {}
        // Equals-bound: `this` and the first parameter known.
        FormIx::EqualsBound => {
            if let Some(&s) = form.param_slots.first() {
                env.bind_must(s);
            }
        }
    }
    cx.goal_facts(&form.goal, &mut env)
}

impl FormCx<'_> {
    // -- types ------------------------------------------------------------

    /// The static type of an expression, when the slots/fields pin it down.
    fn static_ty(&self, e: &PExpr) -> Option<Type> {
        match e {
            PExpr::Int(_) => Some(Type::Int),
            PExpr::Bool(_) => Some(Type::Boolean),
            PExpr::This => self.owner.clone().map(Type::Named),
            PExpr::Name {
                slot, field_sym, ..
            } => match &self.slot_ty[*slot as usize] {
                Some(t) => Some(t.clone()),
                None if field_sym.is_some() => self.field_ty_on_owner(e),
                None => None,
            },
            PExpr::Result(slot) | PExpr::Decl(_, Some(slot), _) => {
                self.slot_ty[*slot as usize].clone()
            }
            PExpr::Field(recv, fname, _) => {
                let Some(Type::Named(t)) = self.static_ty(recv) else {
                    return None;
                };
                self.table.field_type(&t, fname)
            }
            PExpr::Binary(_, _, _) | PExpr::Neg(_) => Some(Type::Int),
            _ => None,
        }
    }

    /// Type of a `Name`'s field-of-`this` fallback.
    fn field_ty_on_owner(&self, e: &PExpr) -> Option<Type> {
        let PExpr::Name { name, .. } = e else {
            return None;
        };
        let owner = self.owner.as_deref()?;
        self.table.field_type(owner, name)
    }

    fn is_int_ty(&self, e: &PExpr) -> bool {
        matches!(self.static_ty(e), Some(Type::Int))
    }

    fn is_prim_ty(&self, e: &PExpr) -> bool {
        matches!(
            e,
            PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null
        ) || matches!(self.static_ty(e), Some(Type::Int | Type::Boolean))
    }

    /// Whether reading field `name` off `this` is safe: `this` is in
    /// scope, its owner class is known, and *every* concrete class that
    /// can be `this` at run time declares the field in its layout.
    fn this_field_safe(&self, name: &str) -> bool {
        self.this_present
            && self
                .owner
                .as_deref()
                .is_some_and(|o| self.named_field_safe(o, name))
    }

    fn named_field_safe(&self, ty: &str, name: &str) -> bool {
        let subs = self.table.concrete_subtypes(ty);
        !subs.is_empty()
            && subs.iter().all(|info| {
                self.table
                    .layout(&info.name)
                    .is_some_and(|l| l.slot_of(name).is_some())
            })
    }

    // -- expression safety ------------------------------------------------

    /// Whether evaluating `e` in ground position cannot fail or error.
    fn eval_safe(&self, e: &PExpr, env: &Env) -> bool {
        match e {
            PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
            PExpr::This => self.this_present,
            PExpr::Name {
                slot,
                name,
                field_sym,
                ..
            } => {
                if env.is_must(*slot) {
                    return true;
                }
                // Unbound (or maybe-bound) occurrence: both runtime paths
                // must be safe, and the fallback only exists with a field
                // symbol and `this` in scope.
                field_sym.is_some() && self.this_field_safe(name)
            }
            PExpr::Result(slot) => env.is_must(*slot),
            PExpr::Field(recv, fname, sym) => {
                sym.is_some()
                    && self.eval_safe(recv, env)
                    && match self.static_ty(recv) {
                        Some(Type::Named(t)) => self.named_field_safe(&t, fname),
                        _ => false,
                    }
            }
            // `int` arithmetic on type-trusted operands; division can
            // error on zero.
            PExpr::Binary(op, a, b) => {
                matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
                    && self.int_safe(a, env)
                    && self.int_safe(b, env)
            }
            PExpr::Neg(a) => self.int_safe(a, env),
            _ => false,
        }
    }

    fn int_safe(&self, e: &PExpr, env: &Env) -> bool {
        self.eval_safe(e, env) && self.is_int_ty(e)
    }

    // -- patterns ----------------------------------------------------------

    /// Facts of matching pattern `p` against an already-evaluated value of
    /// static type `val_ty` (when known). Binds the pattern's binders into
    /// `env` on the success path.
    fn pat_facts(&self, p: &PExpr, val_ty: Option<&Type>, env: &mut Env) -> FormFacts {
        match p {
            PExpr::Wildcard => FormFacts {
                card: Cardinality::AtMostOne,
                no_err: true,
            },
            PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => FormFacts {
                card: Cardinality::AtMostOne,
                // Comparing a literal against an object can route through
                // user `equals` bridging; safe only when the value is
                // statically primitive.
                no_err: matches!(val_ty, Some(Type::Int | Type::Boolean)),
            },
            PExpr::Decl(_, slot, check) => {
                if let Some(s) = slot {
                    env.bind_must(*s);
                }
                FormFacts {
                    card: Cardinality::AtMostOne,
                    // The resolved checks are pure tag tests; the dynamic
                    // string-keyed fallback preserves erroneous behavior.
                    no_err: !matches!(check, ClassCheck::Dynamic),
                }
            }
            PExpr::Name { slot, .. } => {
                let no_err = if env.is_must(*slot) {
                    // Bound occurrence: equality against the value.
                    self.is_prim_ty(p) || matches!(val_ty, Some(Type::Int | Type::Boolean))
                } else if env.is_may(*slot) {
                    // Might compare, might bind: both paths must be safe.
                    self.is_prim_ty(p) || matches!(val_ty, Some(Type::Int | Type::Boolean))
                } else {
                    true // definitely binds
                };
                env.bind_must(*slot);
                FormFacts {
                    card: Cardinality::AtMostOne,
                    no_err,
                }
            }
            PExpr::Result(slot) => {
                let no_err = !env.is_may(*slot);
                env.bind_must(*slot);
                FormFacts {
                    card: Cardinality::AtMostOne,
                    no_err,
                }
            }
            PExpr::Call { args, .. } => {
                let (card, callee_no_err) = self.callee_facts(p, env);
                let mut no_err = callee_no_err;
                for a in args {
                    let f = self.pat_facts(a, None, env);
                    no_err &= f.no_err;
                }
                FormFacts { card, no_err }
            }
            PExpr::OrPat(a, b) => {
                let mut env_b = env.clone();
                let fa = self.pat_facts(a, val_ty, env);
                let fb = self.pat_facts(b, val_ty, &mut env_b);
                env.join(&env_b);
                FormFacts {
                    card: fa.card.alt(fb.card),
                    no_err: fa.no_err && fb.no_err,
                }
            }
            PExpr::As(a, b) => {
                let fa = self.pat_facts(a, val_ty, env);
                let fb = self.pat_facts(b, val_ty, env);
                FormFacts {
                    card: fa.card.seq(fb.card),
                    no_err: fa.no_err && fb.no_err,
                }
            }
            PExpr::Tuple(ps) => {
                let mut card = Cardinality::AtMostOne;
                let mut no_err = true;
                for sub in ps {
                    let f = self.pat_facts(sub, None, env);
                    card = card.seq(f.card);
                    no_err &= f.no_err;
                }
                FormFacts { card, no_err }
            }
            PExpr::Where(inner, g) => {
                let fi = self.pat_facts(inner, val_ty, env);
                let fg = self.goal_facts(g, env);
                FormFacts {
                    card: fi.card.seq(fg.card),
                    no_err: fi.no_err && fg.no_err,
                }
            }
            // Inverted arithmetic has one solution; only +/- invert
            // without a possible division error, and the ground operand
            // must be safe.
            PExpr::Binary(op, a, b) => {
                let (ground, pat) = if self.is_ground(a, env) {
                    (a, b)
                } else {
                    (b, a)
                };
                let fp = self.pat_facts(pat, Some(&Type::Int), env);
                FormFacts {
                    card: fp.card,
                    no_err: matches!(op, BinOp::Add | BinOp::Sub)
                        && self.int_safe(ground, env)
                        && fp.no_err,
                }
            }
            PExpr::Neg(a) => self.pat_facts(a, Some(&Type::Int), env),
            // Ground-evaluated in pattern position (compared by value).
            PExpr::This | PExpr::Field(_, _, _) => FormFacts {
                card: Cardinality::AtMostOne,
                no_err: self.eval_safe(p, env) && self.is_prim_ty(p),
            },
            PExpr::Index(_, _) | PExpr::NewArray(_, _) => FormFacts {
                card: Cardinality::AtMostOne,
                no_err: false,
            },
        }
    }

    fn is_ground(&self, e: &PExpr, env: &Env) -> bool {
        match e {
            PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
            PExpr::This => self.this_present,
            PExpr::Name {
                slot, field_sym, ..
            } => env.is_must(*slot) || (field_sym.is_some() && self.this_present),
            PExpr::Result(slot) => env.is_must(*slot),
            PExpr::Field(recv, _, _) => self.is_ground(recv, env),
            PExpr::Binary(_, a, b) => self.is_ground(a, env) && self.is_ground(b, env),
            PExpr::Neg(a) => self.is_ground(a, env),
            _ => false,
        }
    }

    /// Joined matching-mode facts of every implementation a constructor
    /// pattern / predicate call can dispatch to. The receiver has exactly
    /// one runtime class, so cardinality joins with `max`; safety requires
    /// every possible class to resolve to an error-free declarative
    /// implementation.
    fn callee_facts(&self, call: &PExpr, env: &Env) -> (Cardinality, bool) {
        let PExpr::Call {
            receiver,
            kind,
            dispatch,
            ..
        } = call
        else {
            return (Cardinality::Unbounded, false);
        };
        match kind {
            CallKind::StaticConstruct(cr) | CallKind::ClassCtor(cr) => match cr.match_pid {
                Some(pid) => {
                    let f = self.matching_facts_of(pid);
                    (f.card, f.no_err)
                }
                None => (Cardinality::Unbounded, false),
            },
            CallKind::Instance | CallKind::ThisMethod => {
                let recv_ty = match (receiver, kind) {
                    (Some(r), CallKind::Instance) => self.static_ty(r),
                    _ => self.owner.clone().map(Type::Named),
                };
                self.dispatch_facts(*dispatch, recv_ty.as_ref(), env, receiver.as_deref())
            }
            CallKind::Free(Some(pid)) => {
                let f = self.matching_facts_of(*pid);
                (f.card, f.no_err)
            }
            CallKind::Free(None) | CallKind::Unresolved => (Cardinality::Unbounded, false),
        }
    }

    fn matching_facts_of(&self, pid: PlanId) -> FormFacts {
        match &self.methods[pid].body {
            BodyPlan::Formula { .. } => self.facts[pid][1],
            // Invoking an imperative or absent body as a pattern is a
            // runtime error.
            _ => FormFacts {
                card: Cardinality::Unbounded,
                no_err: false,
            },
        }
    }

    /// Facts of a dynamic dispatch: join over every class the receiver can
    /// be. With a known receiver type the candidate set is its concrete
    /// subtypes (all of which must resolve); with an unknown type, any
    /// entry of the table may fire and a missing entry is a possible
    /// "method not found".
    fn dispatch_facts(
        &self,
        dispatch: Option<u32>,
        recv_ty: Option<&Type>,
        env: &Env,
        receiver: Option<&PExpr>,
    ) -> (Cardinality, bool) {
        let Some(did) = dispatch else {
            return (Cardinality::Unbounded, false);
        };
        let tbl = &self.dispatch[did as usize];
        let recv_safe = match receiver {
            Some(r) => self.eval_safe(r, env),
            None => self.this_present,
        };
        match recv_ty {
            Some(Type::Named(t)) => {
                let subs = self.table.concrete_subtypes(t);
                let mut card = Cardinality::Zero;
                let mut no_err = recv_safe && !subs.is_empty();
                for info in subs {
                    match self.table.type_index(&info.name).and_then(|i| tbl.at(i)) {
                        Some(pid) => {
                            let f = self.matching_facts_of(pid);
                            card = card.max(f.card);
                            no_err &= f.no_err;
                        }
                        None => no_err = false, // method-not-found possible
                    }
                }
                (card, no_err)
            }
            _ => {
                // Unknown receiver type: any implementation may fire, and
                // nothing rules out a class with no entry.
                let mut card = Cardinality::Zero;
                for i in 0..self.table.num_types() {
                    if let Some(pid) = tbl.at(i as u32) {
                        card = card.max(self.matching_facts_of(pid).card);
                    }
                }
                (card, false)
            }
        }
    }

    // -- discriminants (disjointness of `Any` branches) ---------------------

    /// The first conjunct of a branch, for discriminant extraction.
    fn first_conjunct<'g>(&self, g: &'g Goal) -> &'g Goal {
        match g {
            Goal::Seq(gs) => gs.first().map(|f| self.first_conjunct(f)).unwrap_or(g),
            _ => g,
        }
    }

    /// A branch discriminant: a property of the branch's first conjunct
    /// that can make two branches mutually exclusive.
    fn discriminant(&self, branch: &Goal, env: &Env) -> Option<Discrim> {
        match self.first_conjunct(branch) {
            Goal::Unify(l, r) => {
                let (lit, subj) = match (l, r) {
                    (PExpr::Int(n), s) | (s, PExpr::Int(n)) => (Lit::Int(*n), s),
                    (PExpr::Bool(b), s) | (s, PExpr::Bool(b)) => (Lit::Bool(*b), s),
                    _ => return None,
                };
                // Literal disjointness needs a primitive subject: objects
                // can bridge-equal several literals through `equals`.
                (self.is_ground(subj, env) && self.is_prim_ty(subj)).then(|| Discrim::EqLit {
                    subject: subj.clone(),
                    lit,
                })
            }
            Goal::Compare(op, a, b) => Some(Discrim::Cmp {
                op: *op,
                a: a.clone(),
                b: b.clone(),
            }),
            Goal::Invoke {
                receiver, dispatch, ..
            } => {
                let did = (*dispatch)?;
                let tbl = &self.dispatch[did as usize];
                // Mask of receiver classes whose implementation of `name`
                // can emit at all (under the current fixpoint facts, which
                // only grow — so the mask only grows, keeping the transfer
                // monotone).
                let mask: Vec<bool> = (0..self.table.num_types())
                    .map(|i| match tbl.at(i as u32) {
                        Some(pid) => self.matching_facts_of(pid).card != Cardinality::Zero,
                        None => false,
                    })
                    .collect();
                Some(Discrim::Ctor {
                    subject: receiver.clone().unwrap_or(PExpr::This),
                    mask,
                })
            }
            _ => None,
        }
    }

    fn disjoint(&self, a: &Discrim, b: &Discrim) -> bool {
        match (a, b) {
            (
                Discrim::EqLit {
                    subject: sa,
                    lit: la,
                },
                Discrim::EqLit {
                    subject: sb,
                    lit: lb,
                },
            ) => sa == sb && la != lb,
            (
                Discrim::Cmp {
                    op: oa,
                    a: aa,
                    b: ba,
                },
                Discrim::Cmp {
                    op: ob,
                    a: ab,
                    b: bb,
                },
            ) => aa == ab && ba == bb && cmp_ops_disjoint(*oa, *ob),
            (
                Discrim::Ctor {
                    subject: sa,
                    mask: ma,
                },
                Discrim::Ctor {
                    subject: sb,
                    mask: mb,
                },
            ) => sa == sb && ma.iter().zip(mb).all(|(x, y)| !(*x && *y)),
            _ => false,
        }
    }

    // -- goals --------------------------------------------------------------

    fn goal_facts(&self, g: &Goal, env: &mut Env) -> FormFacts {
        match g {
            Goal::True | Goal::Trivial => FormFacts {
                card: Cardinality::AtMostOne,
                no_err: true,
            },
            Goal::Fail => FormFacts::BOTTOM,
            Goal::Seq(gs) => {
                let mut card = Cardinality::AtMostOne;
                let mut no_err = true;
                for sub in gs {
                    let f = self.goal_facts(sub, env);
                    card = card.seq(f.card);
                    no_err &= f.no_err;
                }
                FormFacts { card, no_err }
            }
            Goal::DynSeq(items) => {
                // Runtime-scheduled: the analysis cannot replay the order,
                // and a never-ready conjunct is a runtime error — so the
                // form is never committable, but the cardinality product
                // still holds in any order.
                for (_, sub) in items {
                    mark_may(sub, env);
                }
                let mut card = Cardinality::AtMostOne;
                for (_, sub) in items {
                    let f = self.goal_facts(sub, &mut env.clone());
                    card = card.seq(f.card);
                }
                FormFacts {
                    card,
                    no_err: false,
                }
            }
            Goal::Any(branches) => {
                let base = env.clone();
                let mut facts = Vec::with_capacity(branches.len());
                let mut discrims = Vec::with_capacity(branches.len());
                let mut joined: Option<Env> = None;
                for b in branches {
                    let mut benv = base.clone();
                    discrims.push(self.discriminant(b, &base));
                    facts.push(self.goal_facts(b, &mut benv));
                    match &mut joined {
                        None => joined = Some(benv),
                        Some(j) => j.join(&benv),
                    }
                }
                if let Some(j) = joined {
                    *env = j;
                }
                let pairwise_disjoint = facts.len() > 1
                    && (0..discrims.len()).all(|i| {
                        (i + 1..discrims.len()).all(|j| match (&discrims[i], &discrims[j]) {
                            (Some(a), Some(b)) => self.disjoint(a, b),
                            _ => false,
                        })
                    });
                let mut card = Cardinality::Zero;
                let mut no_err = true;
                for f in &facts {
                    card = if pairwise_disjoint {
                        card.max(f.card)
                    } else {
                        card.alt(f.card)
                    };
                    no_err &= f.no_err;
                }
                FormFacts { card, no_err }
            }
            Goal::Not(inner) => {
                // The inner search binds nothing outward but runs fully.
                let f = self.goal_facts(inner, &mut env.clone());
                FormFacts {
                    card: Cardinality::AtMostOne,
                    no_err: f.no_err,
                }
            }
            Goal::Unify(l, r) => {
                let lg = self.is_ground(l, env);
                let rg = self.is_ground(r, env);
                match (lg, rg) {
                    (true, true) => FormFacts {
                        card: Cardinality::AtMostOne,
                        no_err: self.eval_safe(l, env)
                            && self.eval_safe(r, env)
                            && (self.is_prim_ty(l) || self.is_prim_ty(r)),
                    },
                    (true, false) => {
                        let lt = self.static_ty(l);
                        let f = self.pat_facts(r, lt.as_ref(), env);
                        FormFacts {
                            card: f.card,
                            no_err: self.eval_safe(l, env) && f.no_err,
                        }
                    }
                    (false, true) => {
                        let rt = self.static_ty(r);
                        let f = self.pat_facts(l, rt.as_ref(), env);
                        FormFacts {
                            card: f.card,
                            no_err: self.eval_safe(r, env) && f.no_err,
                        }
                    }
                    (false, false) => {
                        // "Unknowns on both sides" may error at run time.
                        let mut e1 = env.clone();
                        let fl = self.pat_facts(l, None, &mut e1);
                        let fr = self.pat_facts(r, None, env);
                        env.join(&e1);
                        FormFacts {
                            card: fl.card.max(fr.card),
                            no_err: false,
                        }
                    }
                }
            }
            Goal::Compare(op, a, b) => FormFacts {
                card: Cardinality::AtMostOne,
                no_err: match op {
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        self.int_safe(a, env) && self.int_safe(b, env)
                    }
                    CmpOp::Eq | CmpOp::Ne => {
                        self.eval_safe(a, env)
                            && self.eval_safe(b, env)
                            && (self.is_prim_ty(a) || self.is_prim_ty(b))
                    }
                },
            },
            Goal::Invoke {
                receiver,
                dispatch,
                args,
                ..
            } => {
                let recv_ty = match receiver {
                    Some(r) => self.static_ty(r),
                    None => self.owner.clone().map(Type::Named),
                };
                let (card, mut no_err) =
                    self.dispatch_facts(*dispatch, recv_ty.as_ref(), env, receiver.as_ref());
                for a in args {
                    let f = self.pat_facts(a, None, env);
                    no_err &= f.no_err;
                }
                FormFacts { card, no_err }
            }
            Goal::Test(e) => FormFacts {
                card: Cardinality::AtMostOne,
                no_err: self.eval_safe(e, env) && matches!(self.static_ty(e), Some(Type::Boolean)),
            },
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Lit {
    Int(i64),
    Bool(bool),
}

enum Discrim {
    EqLit { subject: PExpr, lit: Lit },
    Cmp { op: CmpOp, a: PExpr, b: PExpr },
    Ctor { subject: PExpr, mask: Vec<bool> },
}

/// Whether two comparisons over the *same* `(a, b)` operands cannot both
/// hold.
fn cmp_ops_disjoint(a: CmpOp, b: CmpOp) -> bool {
    use CmpOp::*;
    matches!(
        (a, b),
        (Eq, Lt | Gt | Ne)
            | (Lt | Gt | Ne, Eq)
            | (Lt, Gt | Ge)
            | (Gt | Ge, Lt)
            | (Le, Gt)
            | (Gt, Le)
    )
}

/// Marks every slot a goal could bind as maybe-bound (the conservative
/// effect used for runtime-scheduled conjunctions).
fn mark_may(g: &Goal, env: &mut Env) {
    fn expr(e: &PExpr, env: &mut Env) {
        match e {
            PExpr::Name { slot, .. } | PExpr::Result(slot) | PExpr::Decl(_, Some(slot), _) => {
                env.bind_may(*slot)
            }
            PExpr::Field(a, _, _) | PExpr::Neg(a) | PExpr::NewArray(_, a) => expr(a, env),
            PExpr::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    expr(r, env);
                }
                args.iter().for_each(|a| expr(a, env));
            }
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) | PExpr::OrPat(a, b) | PExpr::As(a, b) => {
                expr(a, env);
                expr(b, env);
            }
            PExpr::Tuple(es) => es.iter().for_each(|e| expr(e, env)),
            PExpr::Where(p, g) => {
                expr(p, env);
                mark_may(g, env);
            }
            _ => {}
        }
    }
    match g {
        Goal::Seq(gs) | Goal::Any(gs) => gs.iter().for_each(|g| mark_may(g, env)),
        Goal::DynSeq(items) => items.iter().for_each(|(_, g)| mark_may(g, env)),
        Goal::Not(inner) => mark_may(inner, env),
        Goal::Unify(a, b) | Goal::Compare(_, a, b) => {
            expr(a, env);
            expr(b, env);
        }
        Goal::Invoke { receiver, args, .. } => {
            if let Some(r) = receiver {
                expr(r, env);
            }
            args.iter().for_each(|a| expr(a, env));
        }
        Goal::Test(e) => expr(e, env),
        Goal::True | Goal::Fail | Goal::Trivial => {}
    }
}

// ---------------------------------------------------------------------------
// Pass C: lints
// ---------------------------------------------------------------------------

fn lint(kind: WarningKind, context: &str, message: String) -> Warning {
    Warning {
        kind,
        context: context.to_owned(),
        message,
        counterexample: None,
        pos: None,
    }
}

/// Counts slot occurrences in a goal, distinguishing the `Decl`
/// introduction from uses.
fn count_slots(g: &Goal, intro: &mut HashMap<SlotId, usize>, uses: &mut HashMap<SlotId, usize>) {
    fn expr(e: &PExpr, intro: &mut HashMap<SlotId, usize>, uses: &mut HashMap<SlotId, usize>) {
        match e {
            PExpr::Decl(_, Some(slot), _) => *intro.entry(*slot).or_default() += 1,
            PExpr::Name { slot, .. } | PExpr::Result(slot) => *uses.entry(*slot).or_default() += 1,
            PExpr::Field(a, _, _) | PExpr::Neg(a) | PExpr::NewArray(_, a) => expr(a, intro, uses),
            PExpr::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    expr(r, intro, uses);
                }
                args.iter().for_each(|a| expr(a, intro, uses));
            }
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) | PExpr::OrPat(a, b) | PExpr::As(a, b) => {
                expr(a, intro, uses);
                expr(b, intro, uses);
            }
            PExpr::Tuple(es) => es.iter().for_each(|e| expr(e, intro, uses)),
            PExpr::Where(p, g) => {
                expr(p, intro, uses);
                count_slots(g, intro, uses);
            }
            _ => {}
        }
    }
    match g {
        Goal::Seq(gs) | Goal::Any(gs) => gs.iter().for_each(|g| count_slots(g, intro, uses)),
        Goal::DynSeq(items) => items.iter().for_each(|(_, g)| count_slots(g, intro, uses)),
        Goal::Not(inner) => count_slots(inner, intro, uses),
        Goal::Unify(a, b) | Goal::Compare(_, a, b) => {
            expr(a, intro, uses);
            expr(b, intro, uses);
        }
        Goal::Invoke { receiver, args, .. } => {
            if let Some(r) = receiver {
                expr(r, intro, uses);
            }
            args.iter().for_each(|a| expr(a, intro, uses));
        }
        Goal::Test(e) => expr(e, intro, uses),
        Goal::True | Goal::Fail | Goal::Trivial => {}
    }
}

/// A `T x` declaration pattern whose binding is never read afterwards:
/// `T _` expresses the intent without the dead name.
fn lint_unused_bindings(methods: &[Arc<MethodPlan>], out: &mut Vec<Warning>) {
    for m in methods {
        let BodyPlan::Formula {
            forward, matching, ..
        } = &m.body
        else {
            continue;
        };
        let ctx = m.info.qualified_name();
        // Both forms lower the same source; the matching form is the one
        // whose frame sees every declaration, and reporting one form keeps
        // one lint per source site.
        let form = matching;
        let mut intro = HashMap::new();
        let mut uses = HashMap::new();
        count_slots(&form.goal, &mut intro, &mut uses);
        count_slots(&forward.goal, &mut HashMap::new(), &mut uses);
        let reserved: Vec<SlotId> = form
            .param_slots
            .iter()
            .copied()
            .chain([form.result_slot])
            .chain(form.field_slots.iter().map(|(_, s)| *s))
            .collect();
        let mut slots: Vec<SlotId> = intro.keys().copied().collect();
        slots.sort_unstable();
        for slot in slots {
            if reserved.contains(&slot) || uses.get(&slot).copied().unwrap_or(0) > 0 {
                continue;
            }
            let name = form.frame.name_of(slot);
            out.push(lint(
                WarningKind::UnusedBinding,
                &ctx,
                format!("`{name}` is bound by a declaration pattern but never used (use `_`)"),
            ));
        }
    }
}

/// An `Invoke`/constructor-pattern whose dispatch table has no declarative
/// implementation at all: the atom fails (or errors) for every receiver.
fn lint_always_failing_invokes(
    methods: &[Arc<MethodPlan>],
    dispatch: &[DispatchTable],
    out: &mut Vec<Warning>,
) {
    // One report per (method, name) pair.
    for m in methods {
        let BodyPlan::Formula { matching, .. } = &m.body else {
            continue;
        };
        let ctx = m.info.qualified_name();
        let mut names: Vec<(String, u32)> = Vec::new();
        collect_invokes(&matching.goal, &mut names);
        names.sort();
        names.dedup();
        for (name, did) in names {
            let tbl = &dispatch[did as usize];
            let has_impl = (0..tbl.len()).any(|i| {
                tbl.at(i as u32)
                    .is_some_and(|pid| matches!(methods[pid].body, BodyPlan::Formula { .. }))
            });
            if !has_impl {
                out.push(lint(
                    WarningKind::AlwaysFailingInvoke,
                    &ctx,
                    format!(
                        "no class provides a declarative implementation of `{name}`: \
                         the atom can never match"
                    ),
                ));
            }
        }
    }
}

/// Collects `Goal::Invoke` names — atoms that *must* match backward, so a
/// dispatch table with no declarative body can never satisfy them. Calls
/// in expression or pattern position are deliberately excluded: a
/// block-bodied method invoked with ground arguments runs forward, which
/// is fine.
fn collect_invokes(g: &Goal, out: &mut Vec<(String, u32)>) {
    fn expr(e: &PExpr, out: &mut Vec<(String, u32)>) {
        match e {
            PExpr::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    expr(r, out);
                }
                args.iter().for_each(|a| expr(a, out));
            }
            PExpr::Field(a, _, _) | PExpr::Neg(a) | PExpr::NewArray(_, a) => expr(a, out),
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) | PExpr::OrPat(a, b) | PExpr::As(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            PExpr::Tuple(es) => es.iter().for_each(|e| expr(e, out)),
            PExpr::Where(p, g) => {
                expr(p, out);
                collect_invokes(g, out);
            }
            _ => {}
        }
    }
    match g {
        Goal::Seq(gs) | Goal::Any(gs) => gs.iter().for_each(|g| collect_invokes(g, out)),
        Goal::DynSeq(items) => items.iter().for_each(|(_, g)| collect_invokes(g, out)),
        Goal::Not(inner) => collect_invokes(inner, out),
        Goal::Invoke {
            name,
            dispatch,
            args,
            receiver,
        } => {
            if let Some(did) = dispatch {
                out.push((name.clone(), *did));
            }
            if let Some(r) = receiver {
                expr(r, out);
            }
            args.iter().for_each(|a| expr(a, out));
        }
        Goal::Unify(a, b) | Goal::Compare(_, a, b) => {
            expr(a, out);
            expr(b, out);
        }
        Goal::Test(e) => expr(e, out),
        Goal::True | Goal::Fail | Goal::Trivial => {}
    }
}

/// Private methods no root can reach through any call edge. Roots are
/// every non-`private` method, every class constructor, every free
/// method, and every `equals` implementation (the deep-equality bridge
/// dispatches to them implicitly).
fn lint_dead_methods(
    methods: &[Arc<MethodPlan>],
    dispatch: &[DispatchTable],
    out: &mut Vec<Warning>,
) {
    let mut reachable = vec![false; methods.len()];
    let mut work: Vec<PlanId> = Vec::new();
    for (pid, m) in methods.iter().enumerate() {
        let root = m.info.decl.visibility != Visibility::Private
            || m.info.decl.kind == MethodKind::ClassConstructor
            || m.info.decl.name == "equals";
        if root {
            reachable[pid] = true;
            work.push(pid);
        }
    }
    while let Some(pid) = work.pop() {
        let mut callees: Vec<PlanId> = Vec::new();
        match &methods[pid].body {
            BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            } => {
                goal_callees(&forward.goal, dispatch, &mut callees);
                goal_callees(&matching.goal, dispatch, &mut callees);
                if let Some(eb) = equals_bound {
                    goal_callees(&eb.goal, dispatch, &mut callees);
                }
            }
            BodyPlan::Block(bp) => stmt_callees(&bp.stmts, dispatch, &mut callees),
            BodyPlan::Absent => {}
        }
        for c in callees {
            if !reachable[c] {
                reachable[c] = true;
                work.push(c);
            }
        }
    }
    for (pid, m) in methods.iter().enumerate() {
        if !reachable[pid] {
            out.push(lint(
                WarningKind::DeadMode,
                &m.info.qualified_name(),
                "private method is unreachable from any exported method".to_owned(),
            ));
        }
    }
}

fn dispatch_targets(did: u32, dispatch: &[DispatchTable], out: &mut Vec<PlanId>) {
    let tbl = &dispatch[did as usize];
    for i in 0..tbl.len() {
        if let Some(pid) = tbl.at(i as u32) {
            out.push(pid);
        }
    }
}

fn goal_callees(g: &Goal, dispatch: &[DispatchTable], out: &mut Vec<PlanId>) {
    fn expr(e: &PExpr, dispatch: &[DispatchTable], out: &mut Vec<PlanId>) {
        match e {
            PExpr::Call {
                receiver,
                args,
                kind,
                dispatch: did,
                ..
            } => {
                match kind {
                    CallKind::StaticConstruct(cr) | CallKind::ClassCtor(cr) => {
                        out.extend(cr.construct_pid);
                        out.extend(cr.match_pid);
                    }
                    CallKind::Free(pid) => out.extend(*pid),
                    CallKind::Instance | CallKind::ThisMethod => {
                        if let Some(d) = did {
                            dispatch_targets(*d, dispatch, out);
                        }
                    }
                    CallKind::Unresolved => {}
                }
                if let Some(r) = receiver {
                    expr(r, dispatch, out);
                }
                args.iter().for_each(|a| expr(a, dispatch, out));
            }
            PExpr::Field(a, _, _) | PExpr::Neg(a) | PExpr::NewArray(_, a) => expr(a, dispatch, out),
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) | PExpr::OrPat(a, b) | PExpr::As(a, b) => {
                expr(a, dispatch, out);
                expr(b, dispatch, out);
            }
            PExpr::Tuple(es) => es.iter().for_each(|e| expr(e, dispatch, out)),
            PExpr::Where(p, g) => {
                expr(p, dispatch, out);
                goal_callees(g, dispatch, out);
            }
            _ => {}
        }
    }
    match g {
        Goal::Seq(gs) | Goal::Any(gs) => gs.iter().for_each(|g| goal_callees(g, dispatch, out)),
        Goal::DynSeq(items) => items
            .iter()
            .for_each(|(_, g)| goal_callees(g, dispatch, out)),
        Goal::Not(inner) => goal_callees(inner, dispatch, out),
        Goal::Invoke {
            receiver,
            args,
            dispatch: did,
            ..
        } => {
            if let Some(d) = did {
                dispatch_targets(*d, dispatch, out);
            }
            if let Some(r) = receiver {
                expr(r, dispatch, out);
            }
            args.iter().for_each(|a| expr(a, dispatch, out));
        }
        Goal::Unify(a, b) | Goal::Compare(_, a, b) => {
            expr(a, dispatch, out);
            expr(b, dispatch, out);
        }
        Goal::Test(e) => expr(e, dispatch, out),
        Goal::True | Goal::Fail | Goal::Trivial => {}
    }
}

fn stmt_callees(stmts: &[StmtPlan], dispatch: &[DispatchTable], out: &mut Vec<PlanId>) {
    for s in stmts {
        match s {
            StmtPlan::Let(g) => goal_callees(g, dispatch, out),
            StmtPlan::Switch {
                scrutinees,
                cases,
                bodies,
                default,
            } => {
                let mut exprs = Vec::new();
                for e in scrutinees
                    .iter()
                    .chain(cases.iter().flat_map(|c| &c.patterns))
                {
                    exprs.push(e.clone());
                }
                for e in &exprs {
                    goal_callees(&Goal::Test(e.clone()), dispatch, out);
                }
                bodies.iter().for_each(|b| stmt_callees(b, dispatch, out));
                if let Some(d) = default {
                    stmt_callees(d, dispatch, out);
                }
            }
            StmtPlan::Cond { arms, else_arm } => {
                for (g, b) in arms {
                    goal_callees(g, dispatch, out);
                    stmt_callees(b, dispatch, out);
                }
                if let Some(e) = else_arm {
                    stmt_callees(e, dispatch, out);
                }
            }
            StmtPlan::If { cond, then, els } => {
                goal_callees(cond, dispatch, out);
                stmt_callees(then, dispatch, out);
                if let Some(e) = els {
                    stmt_callees(e, dispatch, out);
                }
            }
            StmtPlan::Foreach { goal, body, .. } => {
                goal_callees(goal, dispatch, out);
                stmt_callees(body, dispatch, out);
            }
            StmtPlan::While { cond, body } => {
                goal_callees(cond, dispatch, out);
                stmt_callees(body, dispatch, out);
            }
            StmtPlan::Return(Some(e))
            | StmtPlan::Assign(_, e)
            | StmtPlan::AssignUnsupported(e)
            | StmtPlan::Expr(e) => goal_callees(&Goal::Test(e.clone()), dispatch, out),
            StmtPlan::Return(None) => {}
            StmtPlan::Block(b) => stmt_callees(b, dispatch, out),
        }
    }
}

/// A matching-mode body whose *leftmost* atom re-invokes the method on the
/// same receiver: the search recurses before anything shrank.
fn lint_unbounded_recursion(methods: &[Arc<MethodPlan>], out: &mut Vec<Warning>) {
    fn leftmost_self_call(g: &Goal, name: &str) -> bool {
        match g {
            Goal::Seq(gs) => gs.first().is_some_and(|f| leftmost_self_call(f, name)),
            Goal::Any(branches) => branches.iter().any(|b| leftmost_self_call(b, name)),
            Goal::Invoke {
                receiver,
                name: callee,
                ..
            } => callee == name && matches!(receiver, None | Some(PExpr::This)),
            _ => false,
        }
    }
    for m in methods {
        let BodyPlan::Formula { matching, .. } = &m.body else {
            continue;
        };
        if leftmost_self_call(&matching.goal, &m.info.decl.name) {
            out.push(lint(
                WarningKind::UnboundedRecursion,
                &m.info.qualified_name(),
                format!(
                    "`{}` re-invokes itself on the same receiver as its leftmost atom: \
                     no argument is structurally decreasing, so the backward-mode \
                     search cannot terminate",
                    m.info.decl.name
                ),
            ));
        }
    }
}
