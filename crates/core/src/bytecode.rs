//! Flat register bytecode compiled from the [`lower`](crate::lower) plan IR.
//!
//! The plan evaluator and the resumable machine both used to *walk* the
//! boxed [`Goal`]/[`PExpr`] tree per step: every conjunct was an enum
//! dispatch plus a pointer chase, every `while` re-interpreted its condition
//! node, and every `switch` scanned its case guards linearly. This module
//! lowers one level further — the fourth materialization pass of
//! [`ProgramPlan::compile`](crate::lower::ProgramPlan::compile) — into two
//! dense instruction streams:
//!
//! - **[`BcBody`]** — threaded code for one mode-specialized solved form.
//!   Every instruction carries the *pc of its continuation* explicitly
//!   (`next`), so conjunction is a fall-through field instead of a
//!   `Seq` vector walk, and disjunction is a [`Instr::Choice`] whose
//!   alternatives are entry pcs. The stream is compiled right-to-left:
//!   `emit(goal, next)` appends the instructions of `goal` and returns its
//!   entry pc, so no jump patching is ever needed and pc `0` is always the
//!   shared [`Instr::Emit`] solution boundary.
//! - **[`BcBlock`]** — register code for one imperative body. Expression
//!   temporaries live in a flat register file indexed by [`Reg`] instead of
//!   re-walking `PExpr` trees; `switch` lowers to a [`SwitchTable`] jump
//!   table over the PR 4 [`CaseGuard`] class tags (one array load selects
//!   the candidate arms for a scrutinee's type index); `while` loops whose
//!   condition is a comparison become a `CmpJump`/`LoopJump` pair.
//!
//! # Register model
//!
//! Registers are per-*statement* expression temporaries: allocation is a
//! monotonic counter reset at every statement boundary, and `nregs` is the
//! high-water mark, so one `Vec<Value>` of that size (recycled from a pool
//! by the executor) serves the whole block. Variables still live in the
//! frame's slots — `LoadSlot`/`StoreSlot` bridge the two — because slots
//! are the unit the trail, the machine's choice points, and the embedding
//! API all address.
//!
//! # Choice-point and trail offsets
//!
//! The compiler resolves everything a choice point needs *at compile time*:
//! a [`Instr::Choice`]'s alternatives are instruction addresses, so the
//! machine saves `(pc, alternative index)` instead of a boxed continuation
//! chain, and a `par.rs` task prefix stays the same dense `Vec<u32>` path of
//! alternative indices as before. Two invariants make the bytecode
//! transcript- and path-compatible with the plan walker, and both are load
//! bearing:
//!
//! 1. **Choice arity is preserved exactly.** `Any([])` compiles to `Fail`,
//!    `Any([g])` inlines `g` with *no* choice instruction (the machine
//!    creates no choice point for single branches), and `Any(n ≥ 2)`
//!    compiles to one `Choice` with exactly `n` alternatives in source
//!    order. Guides recorded by either engine therefore replay identically
//!    on the other, and `split_oldest` prefixes serialize to the same size.
//! 2. **Trail discipline is unchanged.** The bytecode binds frame slots
//!    through the same trail the plan walker uses; an alternative's
//!    `trail_mark`/`frames_mark` rollback needs no bytecode-specific state
//!    beyond the saved pc.
//!
//! # Unify modes
//!
//! The plan walker decides the direction of every equation at run time with
//! two [`ground`]-tree walks. The bytecode compiler runs a must-bound
//! dataflow analysis over the solved form (seeded with the mode's bound
//! parameter slots) and bakes the direction into the instruction as a
//! [`UnifyMode`] when it is statically forced; only equations whose
//! direction genuinely depends on run-time values keep the dynamic check.
//! The analysis is sound, not complete: `must ⊆ bound` always holds, and
//! anything unprovable degrades to [`UnifyMode::Dynamic`], which behaves
//! exactly like the tree walk.
//!
//! [`ground`]: crate::lower::PExpr

use crate::intern::Sym;
use crate::lower::{
    BlockPlan, BodyPlan, CallKind, CaseGuard, CasePlan, CaseTarget, ClassCheck, DispatchId,
    DispatchTable, Goal, MethodPlan, PExpr, PlanId, SlotId, SolvedForm, StmtPlan,
};
use crate::table::ClassLayout;
use jmatch_syntax::ast::{BinOp, CmpOp};
use std::collections::HashSet;
use std::fmt;

/// An instruction address in a [`BcBody`] / [`BcBlock`] stream.
pub type Pc = u32;
/// Index into a stream's [`PExpr`] pool.
pub type ExprId = u32;
/// Index into a stream's [`Goal`] pool.
pub type GoalId = u32;
/// Index into a [`BcBlock`]'s [`StmtPlan`] pool.
pub type StmtId = u32;
/// A register in a [`BcBlock`]'s register file.
pub type Reg = u16;

/// The statically decided direction of one equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnifyMode {
    /// Both sides are provably ground: evaluate both, compare.
    EvalEval,
    /// Left provably ground, right provably not: evaluate left, match right.
    EvalMatch,
    /// Right provably ground, left provably not: evaluate right, match left.
    MatchEval,
    /// Direction depends on run-time bindings: check `ground` like the
    /// tree walker.
    Dynamic,
}

/// One threaded-code instruction of a solved form's [`BcBody`].
///
/// `next` fields are continuation pcs; pc `0` is always [`Instr::Emit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Solution boundary: the current bindings are a solution of the form.
    Emit,
    /// Dead end: no solution on this path.
    Fail,
    /// Disjunction: try each alternative entry pc in order. Always ≥ 2
    /// alternatives — smaller disjunctions never produce a `Choice`.
    Choice(Box<[Pc]>),
    /// An equation with its direction resolved at compile time where
    /// possible.
    Unify {
        /// Left-hand side (pool index).
        lhs: ExprId,
        /// Right-hand side (pool index).
        rhs: ExprId,
        /// Statically decided direction.
        mode: UnifyMode,
        /// Continuation.
        next: Pc,
    },
    /// An ordering comparison over ground operands.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand (pool index).
        lhs: ExprId,
        /// Right operand (pool index).
        rhs: ExprId,
        /// Continuation.
        next: Pc,
    },
    /// A constructor-match / predicate atom: solve the callee's matching
    /// form against the receiver, match each solution row against the
    /// argument patterns.
    Invoke {
        /// Ground receiver (pool index); `None` means `this`.
        receiver: Option<ExprId>,
        /// Callee name (name-pool index).
        name: u32,
        /// First argument pattern (pool index; patterns are contiguous).
        args_start: ExprId,
        /// Number of argument patterns.
        args_len: u32,
        /// Dispatch table for the name.
        dispatch: Option<DispatchId>,
        /// Continuation.
        next: Pc,
    },
    /// A ground boolean test.
    Test {
        /// The tested expression (pool index).
        expr: ExprId,
        /// Continuation.
        next: Pc,
    },
    /// Negation as failure over a pooled goal (executed by the recursive
    /// existence check, exactly like the plan walker).
    Not {
        /// The negated goal (goal-pool index).
        goal: GoalId,
        /// Continuation.
        next: Pc,
    },
    /// A dynamically scheduled conjunction, delegated whole to the
    /// ready-check machinery (goal-pool index holds the `Goal::DynSeq`).
    DynSeq {
        /// The pooled `Goal::DynSeq`.
        goal: GoalId,
        /// Continuation.
        next: Pc,
    },
}

/// Threaded bytecode for one mode-specialized solved form.
#[derive(Debug, Clone)]
pub struct BcBody {
    /// Entry pc of the form's goal.
    pub entry: Pc,
    /// The instruction stream; `instrs[0]` is [`Instr::Emit`].
    pub instrs: Vec<Instr>,
    /// Leaf expression pool (instructions hold [`ExprId`]s into it).
    pub exprs: Vec<PExpr>,
    /// Subgoal pool for `Not` / `DynSeq` delegation.
    pub goals: Vec<Goal>,
    /// Invoked-name pool.
    pub names: Vec<String>,
}

impl BcBody {
    /// The argument-pattern slice of an [`Instr::Invoke`].
    #[inline]
    pub fn args(&self, start: ExprId, len: u32) -> &[PExpr] {
        &self.exprs[start as usize..(start + len) as usize]
    }
}

// ---------------------------------------------------------------------------
// Must-bound analysis (pass A: execution order)
// ---------------------------------------------------------------------------

/// Slots certainly bound after a successful match of `pat`. `OrPat` takes
/// the branch intersection (only the matching branch's binders are
/// guaranteed), invertible `Binary` likewise (exactly one side matches).
fn binders(pat: &PExpr, out: &mut HashSet<SlotId>) {
    match pat {
        PExpr::Name { slot, .. } => {
            out.insert(*slot);
        }
        PExpr::Result(s) => {
            out.insert(*s);
        }
        PExpr::Decl(_, Some(s), _) => {
            out.insert(*s);
        }
        PExpr::As(a, b) => {
            binders(a, out);
            binders(b, out);
        }
        PExpr::OrPat(a, b) | PExpr::Binary(_, a, b) => {
            let mut ba = HashSet::new();
            let mut bb = HashSet::new();
            binders(a, &mut ba);
            binders(b, &mut bb);
            out.extend(ba.intersection(&bb));
        }
        PExpr::Where(p, _) => binders(p, out),
        PExpr::Call { args, .. } => {
            for a in args {
                binders(a, out);
            }
        }
        PExpr::Neg(a) => binders(a, out),
        PExpr::Tuple(xs) => {
            for x in xs {
                binders(x, out);
            }
        }
        _ => {}
    }
}

/// Conservative "provably ground here": `true` only when the run-time
/// [`ground`](crate::lower) walk is guaranteed to say `true`. The
/// field-of-`this` fallback is deliberately excluded — it depends on the
/// receiver's run-time class — so equations relying on it stay `Dynamic`.
fn must_ground(e: &PExpr, must: &HashSet<SlotId>, this_known: bool) -> bool {
    match e {
        PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
        PExpr::This => this_known,
        PExpr::Result(s) => must.contains(s),
        PExpr::Name {
            slot, class_ref, ..
        } => must.contains(slot) || *class_ref,
        PExpr::Field(b, _, _) => must_ground(b, must, this_known),
        PExpr::Call { receiver, args, .. } => {
            receiver
                .as_deref()
                .map(|r| must_ground(r, must, this_known))
                .unwrap_or(true)
                && args.iter().all(|a| must_ground(a, must, this_known))
        }
        PExpr::Index(a, b) | PExpr::Binary(_, a, b) => {
            must_ground(a, must, this_known) && must_ground(b, must, this_known)
        }
        PExpr::NewArray(_, a) | PExpr::Neg(a) => must_ground(a, must, this_known),
        PExpr::Tuple(xs) => xs.iter().all(|x| must_ground(x, must, this_known)),
        PExpr::Wildcard | PExpr::Decl(..) | PExpr::As(..) | PExpr::OrPat(..) | PExpr::Where(..) => {
            false
        }
    }
}

/// Slots a successful match of `pat` *might* bind — the union closure of
/// [`binders`], including `where`-goal bindings, used to maintain the
/// may-bound superset.
fn may_binders(pat: &PExpr, out: &mut HashSet<SlotId>) {
    match pat {
        PExpr::Name { slot, .. } => {
            out.insert(*slot);
        }
        PExpr::Result(s) => {
            out.insert(*s);
        }
        PExpr::Decl(_, Some(s), _) => {
            out.insert(*s);
        }
        PExpr::As(a, b) | PExpr::OrPat(a, b) | PExpr::Binary(_, a, b) => {
            may_binders(a, out);
            may_binders(b, out);
        }
        PExpr::Where(p, g) => {
            may_binders(p, out);
            goal_may(g, out);
        }
        PExpr::Call { args, .. } => {
            for a in args {
                may_binders(a, out);
            }
        }
        PExpr::Neg(a) => may_binders(a, out),
        PExpr::Tuple(xs) => {
            for x in xs {
                may_binders(x, out);
            }
        }
        _ => {}
    }
}

/// Slots a goal might leave bound on success (`Not` restores its inner
/// bindings, so it contributes nothing).
fn goal_may(goal: &Goal, out: &mut HashSet<SlotId>) {
    match goal {
        Goal::True | Goal::Trivial | Goal::Fail | Goal::Test(_) | Goal::Compare(..) => {}
        Goal::Not(_) => {}
        Goal::Seq(gs) | Goal::Any(gs) => {
            for g in gs {
                goal_may(g, out);
            }
        }
        Goal::DynSeq(items) => {
            for (_, g) in items {
                goal_may(g, out);
            }
        }
        Goal::Unify(l, r) => {
            may_binders(l, out);
            may_binders(r, out);
        }
        Goal::Invoke { args, .. } => {
            for a in args {
                may_binders(a, out);
            }
        }
    }
}

/// Conservative "provably never ground": `true` only when the run-time walk
/// is guaranteed to say `false` — a `_`/declaration in a conjunctive
/// position, or a variable no earlier goal can possibly have bound whose
/// field-of-`this` fallback is statically dead (`this` absent, or the name
/// is no declared field anywhere).
fn never_ground(e: &PExpr, may: &HashSet<SlotId>, this_known: bool) -> bool {
    match e {
        PExpr::Wildcard | PExpr::Decl(..) => true,
        PExpr::This => !this_known,
        PExpr::Name {
            slot,
            field_sym,
            class_ref,
            ..
        } => !*class_ref && !may.contains(slot) && (!this_known || field_sym.is_none()),
        PExpr::Result(s) => !may.contains(s),
        PExpr::Field(b, _, _) => never_ground(b, may, this_known),
        PExpr::Call { receiver, args, .. } => {
            receiver
                .as_deref()
                .is_some_and(|r| never_ground(r, may, this_known))
                || args.iter().any(|a| never_ground(a, may, this_known))
        }
        PExpr::Index(a, b) | PExpr::Binary(_, a, b) | PExpr::As(a, b) | PExpr::OrPat(a, b) => {
            never_ground(a, may, this_known) || never_ground(b, may, this_known)
        }
        PExpr::NewArray(_, a) | PExpr::Neg(a) => never_ground(a, may, this_known),
        PExpr::Tuple(xs) => xs.iter().any(|x| never_ground(x, may, this_known)),
        PExpr::Where(p, _) => never_ground(p, may, this_known),
        _ => false,
    }
}

/// Pass A: walk the goal in execution order, threading the must-bound set
/// (`must ⊆ bound`) and the may-bound set (`bound ⊆ may`), recording one
/// [`UnifyMode`] per `Unify` leaf in visit order. The right-to-left
/// emission pass pops the modes from the back — the two traversals are
/// exact mirrors, so the orders line up.
fn analyze(
    goal: &Goal,
    must: &mut HashSet<SlotId>,
    may: &mut HashSet<SlotId>,
    this_known: bool,
    modes: &mut Vec<UnifyMode>,
) {
    match goal {
        Goal::True | Goal::Trivial | Goal::Fail | Goal::Test(_) | Goal::Compare(..) => {}
        // `Not` binds nothing and its inner goal runs through the recursive
        // existence check, not the instruction stream: no modes inside.
        Goal::Not(_) => {}
        // Delegated whole; its bindings are not must-known afterwards, but
        // they are possible.
        Goal::DynSeq(_) => goal_may(goal, may),
        Goal::Seq(gs) => {
            for g in gs {
                analyze(g, must, may, this_known, modes);
            }
        }
        Goal::Any(gs) => {
            let entry_must = must.clone();
            let entry_may = may.clone();
            let mut exit: Option<HashSet<SlotId>> = None;
            for g in gs {
                let mut bmust = entry_must.clone();
                let mut bmay = entry_may.clone();
                analyze(g, &mut bmust, &mut bmay, this_known, modes);
                may.extend(bmay);
                exit = Some(match exit {
                    None => bmust,
                    Some(prev) => prev.intersection(&bmust).copied().collect(),
                });
            }
            if let Some(exit) = exit {
                *must = exit;
            }
        }
        Goal::Unify(l, r) => {
            let lg = must_ground(l, must, this_known);
            let rg = must_ground(r, must, this_known);
            let mode = if lg && rg {
                UnifyMode::EvalEval
            } else if lg && never_ground(r, may, this_known) {
                UnifyMode::EvalMatch
            } else if rg && never_ground(l, may, this_known) {
                UnifyMode::MatchEval
            } else {
                UnifyMode::Dynamic
            };
            match mode {
                UnifyMode::EvalMatch => binders(r, must),
                UnifyMode::MatchEval => binders(l, must),
                _ => {}
            }
            may_binders(l, may);
            may_binders(r, may);
            modes.push(mode);
        }
        Goal::Invoke { args, .. } => {
            // Every argument pattern is matched on success, so its binders
            // are certainly bound afterwards.
            for a in args {
                binders(a, must);
                may_binders(a, may);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Goal-body compiler (pass B: right-to-left emission)
// ---------------------------------------------------------------------------

struct BodyCompiler {
    instrs: Vec<Instr>,
    exprs: Vec<PExpr>,
    goals: Vec<Goal>,
    names: Vec<String>,
    /// Modes from pass A, popped from the back.
    modes: Vec<UnifyMode>,
}

impl BodyCompiler {
    fn push(&mut self, i: Instr) -> Pc {
        let pc = self.instrs.len() as Pc;
        self.instrs.push(i);
        pc
    }

    fn expr(&mut self, e: &PExpr) -> ExprId {
        let id = self.exprs.len() as ExprId;
        self.exprs.push(e.clone());
        id
    }

    fn goal(&mut self, g: Goal) -> GoalId {
        let id = self.goals.len() as GoalId;
        self.goals.push(g);
        id
    }

    fn name(&mut self, n: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|x| x == n) {
            return i as u32;
        }
        let id = self.names.len() as u32;
        self.names.push(n.to_owned());
        id
    }

    /// Appends the instructions of `g`, continuing at `next`, and returns
    /// the entry pc. Conjunctions are emitted right-to-left so every
    /// continuation pc already exists when its predecessor is written.
    fn emit(&mut self, g: &Goal, next: Pc) -> Pc {
        match g {
            Goal::True | Goal::Trivial => next,
            Goal::Fail => self.push(Instr::Fail),
            Goal::Seq(gs) => {
                let mut pc = next;
                for g in gs.iter().rev() {
                    pc = self.emit(g, pc);
                }
                pc
            }
            // Choice arity must mirror the machine's choice-point arity
            // exactly (see the module docs): 0 ⇒ Fail, 1 ⇒ inline, else
            // one Choice with one alternative per branch, in source order.
            Goal::Any(gs) => match gs.len() {
                0 => self.push(Instr::Fail),
                1 => self.emit(&gs[0], next),
                _ => {
                    let mut alts: Vec<Pc> = gs.iter().rev().map(|g| self.emit(g, next)).collect();
                    alts.reverse();
                    self.push(Instr::Choice(alts.into()))
                }
            },
            Goal::Unify(l, r) => {
                let mode = self.modes.pop().expect("unify mode analysis out of sync");
                let lhs = self.expr(l);
                let rhs = self.expr(r);
                self.push(Instr::Unify {
                    lhs,
                    rhs,
                    mode,
                    next,
                })
            }
            Goal::Compare(op, l, r) => {
                let lhs = self.expr(l);
                let rhs = self.expr(r);
                self.push(Instr::Compare {
                    op: *op,
                    lhs,
                    rhs,
                    next,
                })
            }
            Goal::Test(e) => {
                let expr = self.expr(e);
                self.push(Instr::Test { expr, next })
            }
            Goal::Not(inner) => {
                let goal = self.goal((**inner).clone());
                self.push(Instr::Not { goal, next })
            }
            Goal::DynSeq(_) => {
                let goal = self.goal(g.clone());
                self.push(Instr::DynSeq { goal, next })
            }
            Goal::Invoke {
                receiver,
                name,
                args,
                dispatch,
            } => {
                let receiver = receiver.as_ref().map(|r| self.expr(r));
                let args_start = self.exprs.len() as ExprId;
                for a in args {
                    self.exprs.push(a.clone());
                }
                let name = self.name(name);
                self.push(Instr::Invoke {
                    receiver,
                    name,
                    args_start,
                    args_len: args.len() as u32,
                    dispatch: *dispatch,
                    next,
                })
            }
        }
    }
}

/// Compiles one solved form's goal to threaded bytecode. `entry_must` are
/// the slots the mode seeds as bound (parameters for the forward mode, the
/// first parameter for `equals_bound`, the caller-bound names for a
/// standalone form, nothing for the matching mode).
pub fn compile_body(form: &SolvedForm, entry_must: &[SlotId]) -> BcBody {
    let mut must: HashSet<SlotId> = entry_must.iter().copied().collect();
    let mut may = must.clone();
    let mut modes = Vec::new();
    analyze(
        &form.goal,
        &mut must,
        &mut may,
        form.this_present,
        &mut modes,
    );
    let mut c = BodyCompiler {
        instrs: Vec::new(),
        exprs: Vec::new(),
        goals: Vec::new(),
        names: Vec::new(),
        modes,
    };
    c.push(Instr::Emit);
    let entry = c.emit(&form.goal, 0);
    debug_assert!(c.modes.is_empty(), "unify modes left over after emission");
    BcBody {
        entry,
        instrs: c.instrs,
        exprs: c.exprs,
        goals: c.goals,
        names: c.names,
    }
}

// ---------------------------------------------------------------------------
// Block (register) bytecode
// ---------------------------------------------------------------------------

/// A constant in a [`BcBlock`]'s pool.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// `null`.
    Null,
}

/// The jump table of one lowered `switch`: candidate case indices (in
/// source order) per scrutinee type index, plus the candidates for
/// non-object / foreign scrutinees. Selecting the arms that can possibly
/// match is one array load instead of a linear guard scan.
#[derive(Debug, Clone)]
pub struct SwitchTable {
    /// Candidate case indices for objects, by dense type index.
    pub by_type: Vec<Box<[u16]>>,
    /// Candidate case indices for values without a type index.
    pub other: Box<[u16]>,
}

/// The pc table of a *natively* compiled `switch` ([`SInstr::SwitchJump`]):
/// the compiled arm's code address per scrutinee type index. Used when
/// every arm is a single-class constructor pattern over a pure
/// field-projection constructor, so selecting *and running* an arm is an
/// array load plus straight-line register code — no pattern-matching
/// machinery at all.
#[derive(Debug, Clone)]
pub struct JumpTable {
    /// Arm entry pc by dense type index.
    pub by_type: Box<[Pc]>,
    /// Target for non-object / foreign-layout / unmatched scrutinees: the
    /// pc of the guarded [`SInstr::Switch`] fallback.
    pub other: Pc,
}

/// Cross-method context for block compilation: the lowered method table
/// and the materialized dispatch tables, so call sites and switch arms can
/// be specialized against the whole program (monomorphic getter inlining,
/// native field-projection switches).
///
/// Every plan consulted through the context is also *recorded*: the
/// accumulated [`BcCtx::take_deps`] set is what incremental recompilation
/// uses to re-emit the bytecode of methods whose specializations looked at
/// a body that has since changed.
pub struct BcCtx<'a> {
    /// Every lowered method, indexed by [`PlanId`].
    pub methods: &'a [std::sync::Arc<MethodPlan>],
    /// The materialized dispatch tables, indexed by [`DispatchId`].
    pub dispatch: &'a [DispatchTable],
    /// Plans consulted since the last [`BcCtx::take_deps`] drain.
    deps: std::cell::RefCell<Vec<PlanId>>,
}

impl<'a> BcCtx<'a> {
    /// A fresh compilation context with an empty dependency recorder.
    pub fn new(methods: &'a [std::sync::Arc<MethodPlan>], dispatch: &'a [DispatchTable]) -> Self {
        BcCtx {
            methods,
            dispatch,
            deps: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Records that the current method's bytecode consulted `pid`'s plan.
    fn record_dep(&self, pid: PlanId) {
        self.deps.borrow_mut().push(pid);
    }

    /// Drains the plans consulted since the last drain, sorted and
    /// deduplicated — one method's bytecode dependency edges when called
    /// between per-method compilations.
    pub fn take_deps(&self) -> Vec<PlanId> {
        let mut deps = std::mem::take(&mut *self.deps.borrow_mut());
        deps.sort_unstable();
        deps.dedup();
        deps
    }
}

/// One register instruction of a [`BcBlock`].
#[derive(Debug, Clone, PartialEq)]
pub enum SInstr {
    /// `dst ← consts[k]`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant-pool index.
        k: u32,
    },
    /// `dst ← frame[slot]`, falling back to the field of `this` named
    /// `name` (the variable-occurrence superinstruction).
    LoadSlot {
        /// Destination register.
        dst: Reg,
        /// Frame slot.
        slot: SlotId,
        /// Name-pool index (error messages, field fallback).
        name: u32,
        /// Interned field name for the O(1) fallback.
        field_sym: Option<Sym>,
    },
    /// `dst ← this`.
    LoadThis {
        /// Destination register.
        dst: Reg,
    },
    /// `dst ← base.field` (field-read superinstruction).
    LoadField {
        /// Destination register.
        dst: Reg,
        /// Register holding the object.
        base: Reg,
        /// Interned field name.
        sym: Option<Sym>,
        /// Name-pool index (slow path + errors).
        name: u32,
    },
    /// `dst ← base.fields[idx]` — a direct layout-slot load. Emitted only
    /// behind a class guard ([`SInstr::ClassIs`] / [`SInstr::SwitchJump`])
    /// that proved `base` holds a native-layout object of the one class
    /// whose layout assigns the field this slot.
    LoadFieldIdx {
        /// Destination register.
        dst: Reg,
        /// Register holding the object (guarded).
        base: Reg,
        /// Field slot in the guarded class's layout.
        idx: u32,
    },
    /// `dst ← src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← a op b` over integers.
    Bin {
        /// Destination register.
        dst: Reg,
        /// The operator.
        op: BinOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst ← -a`.
    Neg {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        a: Reg,
    },
    /// `dst ← eval(exprs[expr])` — fallback for expression shapes without
    /// a register lowering (kept for identical error behavior).
    EvalExpr {
        /// Destination register.
        dst: Reg,
        /// Expression-pool index.
        expr: ExprId,
    },
    /// `dst ← run_forward(pid, regs[base .. base+argc])` — statically
    /// resolved call (free methods, constructors).
    CallStatic {
        /// Destination register.
        dst: Reg,
        /// Callee plan.
        pid: u32,
        /// First argument register (arguments are contiguous).
        base: Reg,
        /// Argument count.
        argc: u16,
    },
    /// `dst ← regs[recv].name(regs[base ..])` — dynamic dispatch through
    /// the name's table.
    CallDyn {
        /// Destination register.
        dst: Reg,
        /// Receiver register.
        recv: Reg,
        /// Name-pool index.
        name: u32,
        /// Dispatch table.
        dispatch: Option<DispatchId>,
        /// First argument register.
        base: Reg,
        /// Argument count.
        argc: u16,
    },
    /// `dst ← this.name(regs[base ..])`.
    CallThis {
        /// Destination register.
        dst: Reg,
        /// Name-pool index.
        name: u32,
        /// Dispatch table.
        dispatch: Option<DispatchId>,
        /// First argument register.
        base: Reg,
        /// Argument count.
        argc: u16,
    },
    /// `frame[slot] ← src`.
    Store {
        /// Frame slot.
        slot: SlotId,
        /// Source register.
        src: Reg,
    },
    /// `return regs[src]`.
    Ret {
        /// Source register.
        src: Reg,
    },
    /// `return;` (void / null).
    RetNull,
    /// Unconditional forward jump.
    Jump {
        /// Target pc.
        target: Pc,
    },
    /// Resets a loop's iteration-guard counter on entry.
    ResetGuard {
        /// Guard counter index.
        guard: u16,
    },
    /// Backward jump closing a loop; bumps and checks the iteration guard.
    LoopJump {
        /// Loop head pc.
        target: Pc,
        /// Guard counter index.
        guard: u16,
    },
    /// `if !(a op b) jump if_false` — a `while` condition superinstruction
    /// (charges one budget step, like the solve it replaces).
    CmpJump {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Where to jump when the comparison does not hold.
        if_false: Pc,
    },
    /// `if regs[a] != true jump if_false` — a boolean `while` condition.
    TestJump {
        /// Tested register.
        a: Reg,
        /// Where to jump when the test does not hold.
        if_false: Pc,
    },
    /// `if class_index(regs[a]) != type_index jump if_false` — the guard in
    /// front of an inlined monomorphic call: receivers of the one
    /// implementing class run the inlined body, everything else takes the
    /// generic [`SInstr::CallDyn`] slow path (identical errors included).
    ClassIs {
        /// Receiver register.
        a: Reg,
        /// The sole type index the inlined body is valid for.
        type_index: u32,
        /// The generic call's pc.
        if_false: Pc,
    },
    /// Statement-specialization guard: loads `slot` and tests that it holds
    /// a native-layout object of `type_index`. On success `dst` holds the
    /// value and the specialized statement runs (direct slot loads,
    /// guard-free inlining); anything else — unbound, non-object, foreign
    /// or different class — jumps to the statement's generic compilation at
    /// `if_false`. Never errors and binds nothing on failure.
    GuardSlot {
        /// Destination register (the guarded value).
        dst: Reg,
        /// Frame slot of the receiver variable.
        slot: SlotId,
        /// The type index the specialized statement is valid for.
        type_index: u32,
        /// The generic statement's pc.
        if_false: Pc,
    },
    /// Native jump-table switch: `jumps[table]` maps the scrutinee's type
    /// index straight to the pc of its arm's compiled code (field
    /// projections + body). Non-objects, foreign-layout objects, and type
    /// indices without a native arm take `other`, which is always the
    /// guarded [`SInstr::Switch`] fallback, so observable semantics are
    /// identical to the case-matching machinery.
    SwitchJump {
        /// Scrutinee register.
        scrutinee: Reg,
        /// Jump-table index into [`BcBlock::jumps`].
        table: u32,
    },
    /// Guarded-switch superinstruction: select the candidate case arms for
    /// the scrutinee's type index through `switches[table]`, then run them
    /// through the shared case-matching machinery.
    Switch {
        /// Scrutinee register.
        scrutinee: Reg,
        /// Switch-table index.
        table: u32,
        /// The pooled `StmtPlan::Switch` (cases, bodies, default).
        stmt: StmtId,
    },
    /// Full statement fallback: statements with subtle solution-frame
    /// semantics (`let`, `if`/`cond`, `foreach`, general `while`, nested
    /// blocks) run through the existing statement interpreter.
    ExecStmt {
        /// Statement-pool index.
        stmt: StmtId,
    },
    /// End of the block: normal fall-off.
    End,
}

/// Register bytecode for one imperative body.
#[derive(Debug, Clone)]
pub struct BcBlock {
    /// The instruction stream (entry at pc 0, terminated by [`SInstr::End`]).
    pub code: Vec<SInstr>,
    /// Register-file size (high-water mark).
    pub nregs: u16,
    /// Number of loop-guard counters.
    pub nguards: u16,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Expression pool for [`SInstr::EvalExpr`].
    pub exprs: Vec<PExpr>,
    /// Statement pool for [`SInstr::ExecStmt`] / [`SInstr::Switch`].
    pub stmts: Vec<StmtPlan>,
    /// Switch jump tables (guarded form).
    pub switches: Vec<SwitchTable>,
    /// Native switch pc tables ([`SInstr::SwitchJump`]).
    pub jumps: Vec<JumpTable>,
    /// Name pool.
    pub names: Vec<String>,
}

struct BlockCompiler<'a> {
    ctx: &'a BcCtx<'a>,
    code: Vec<SInstr>,
    nregs: u16,
    next_reg: u16,
    nguards: u16,
    consts: Vec<Const>,
    exprs: Vec<PExpr>,
    stmts: Vec<StmtPlan>,
    switches: Vec<SwitchTable>,
    jumps: Vec<JumpTable>,
    names: Vec<String>,
    /// Per-statement slot-read cache: registers already holding a frame
    /// slot's value, so repeated reads of the same variable inside one
    /// statement reuse the register instead of re-loading. Sound because
    /// registers are written once per statement, `eval` takes the frame
    /// immutably, and the only frame writer ([`SInstr::Store`]) evicts its
    /// slot.
    slot_regs: Vec<(SlotId, Reg)>,
    /// The active statement specialization, when compiling the fast branch
    /// behind a [`SInstr::GuardSlot`]: the guarded receiver slot, the type
    /// index the guard proved, and that class's layout. Field reads and
    /// monomorphic calls on the guarded slot compile to direct slot loads
    /// and guard-free inline code.
    spec: Option<(SlotId, u32, &'a ClassLayout)>,
}

/// One qualified arm of a natively compiled switch: the class it claims,
/// the `(layout slot, frame slot)` bindings of its pattern arguments
/// (`None` frame slot for wildcards), and its single-`return` body.
struct NativeArm<'p> {
    tix: usize,
    binds: Vec<(u32, Option<SlotId>)>,
    body: &'p [StmtPlan],
}

impl<'a> BlockCompiler<'a> {
    fn push(&mut self, i: SInstr) -> Pc {
        let pc = self.code.len() as Pc;
        self.code.push(i);
        pc
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        if self.next_reg > self.nregs {
            self.nregs = self.next_reg;
        }
        r
    }

    fn konst(&mut self, k: Const) -> u32 {
        if let Some(i) = self.consts.iter().position(|x| *x == k) {
            return i as u32;
        }
        let id = self.consts.len() as u32;
        self.consts.push(k);
        id
    }

    fn name(&mut self, n: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|x| x == n) {
            return i as u32;
        }
        let id = self.names.len() as u32;
        self.names.push(n.to_owned());
        id
    }

    fn pool_expr(&mut self, e: &PExpr) -> ExprId {
        let id = self.exprs.len() as ExprId;
        self.exprs.push(e.clone());
        id
    }

    fn pool_stmt(&mut self, s: &StmtPlan) -> StmtId {
        let id = self.stmts.len() as StmtId;
        self.stmts.push(s.clone());
        id
    }

    /// Compiles `e` into a fresh register and returns it. A variable whose
    /// slot was already loaded in this statement reuses its register.
    fn expr(&mut self, e: &PExpr) -> Reg {
        if let PExpr::Name { slot, .. } = e {
            if let Some(&(_, r)) = self.slot_regs.iter().find(|(s, _)| s == slot) {
                return r;
            }
        }
        let dst = self.alloc();
        self.expr_into(e, dst);
        dst
    }

    /// Compiles `e` so its value lands in `dst`. Emission order matches the
    /// tree evaluator's evaluation order exactly, so error precedence is
    /// unchanged.
    fn expr_into(&mut self, e: &PExpr, dst: Reg) {
        match e {
            PExpr::Int(i) => {
                let k = self.konst(Const::Int(*i));
                self.push(SInstr::Const { dst, k });
            }
            PExpr::Bool(b) => {
                let k = self.konst(Const::Bool(*b));
                self.push(SInstr::Const { dst, k });
            }
            PExpr::Str(s) => {
                let k = self.konst(Const::Str(s.clone()));
                self.push(SInstr::Const { dst, k });
            }
            PExpr::Null => {
                let k = self.konst(Const::Null);
                self.push(SInstr::Const { dst, k });
            }
            PExpr::This => {
                self.push(SInstr::LoadThis { dst });
            }
            PExpr::Name {
                slot,
                name,
                field_sym,
                ..
            } => {
                let name = self.name(name);
                self.push(SInstr::LoadSlot {
                    dst,
                    slot: *slot,
                    name,
                    field_sym: *field_sym,
                });
                self.slot_regs.push((*slot, dst));
            }
            PExpr::Field(base, name, sym) => {
                // Inside a specialized statement a read of a declared field
                // off the guarded receiver goes straight to its layout slot.
                if let (Some((rslot, _, layout)), PExpr::Name { slot, .. }, Some(sym)) =
                    (self.spec, &**base, sym)
                {
                    if *slot == rslot {
                        if let (Some(idx), Some(&(_, r))) = (
                            layout.slot_of_sym(*sym),
                            self.slot_regs.iter().find(|&&(s, _)| s == rslot),
                        ) {
                            self.push(SInstr::LoadFieldIdx {
                                dst,
                                base: r,
                                idx: idx as u32,
                            });
                            return;
                        }
                    }
                }
                let b = self.expr(base);
                let name = self.name(name);
                self.push(SInstr::LoadField {
                    dst,
                    base: b,
                    sym: *sym,
                    name,
                });
            }
            PExpr::Binary(op, a, b) => {
                let ra = self.expr(a);
                let rb = self.expr(b);
                self.push(SInstr::Bin {
                    dst,
                    op: *op,
                    a: ra,
                    b: rb,
                });
            }
            PExpr::Neg(a) => {
                let ra = self.expr(a);
                self.push(SInstr::Neg { dst, a: ra });
            }
            PExpr::Call {
                receiver,
                name,
                args,
                kind,
                dispatch,
            } => {
                // Only statically sensible call shapes get the register
                // lowering; everything else falls back to the tree
                // evaluator for identical error behavior.
                let pid = match kind {
                    CallKind::StaticConstruct(cr) | CallKind::ClassCtor(cr) => cr.construct_pid,
                    CallKind::Free(pid) => *pid,
                    CallKind::Instance | CallKind::ThisMethod => None,
                    CallKind::Unresolved => {
                        let expr = self.pool_expr(e);
                        self.push(SInstr::EvalExpr { dst, expr });
                        return;
                    }
                };
                let is_dispatch = matches!(kind, CallKind::Instance | CallKind::ThisMethod);
                if pid.is_none() && !is_dispatch {
                    let expr = self.pool_expr(e);
                    self.push(SInstr::EvalExpr { dst, expr });
                    return;
                }
                // Arguments first (the evaluator's order), contiguously.
                let base = self.next_reg;
                for _ in args {
                    self.alloc();
                }
                for (i, a) in args.iter().enumerate() {
                    self.expr_into(a, base + i as Reg);
                }
                let argc = args.len() as u16;
                match kind {
                    CallKind::Instance => {
                        let recv_expr = receiver.as_deref().expect("instance call receiver");
                        let recv = self.expr(recv_expr);
                        let name = self.name(name);
                        if let Some((tix, ret, params, layout)) =
                            self.inline_target(*dispatch, args.len(), true)
                        {
                            // Inside a specialized statement whose guard
                            // already proved this receiver's class, the
                            // inline body needs no guard of its own.
                            let guarded = match (self.spec, recv_expr) {
                                (Some((s, t, _)), PExpr::Name { slot, .. }) => {
                                    *slot == s
                                        && t == tix
                                        && self
                                            .slot_regs
                                            .iter()
                                            .any(|&(sl, r)| sl == s && r == recv)
                                }
                                _ => false,
                            };
                            if guarded {
                                self.inline_expr(ret, dst, recv, base, params, layout);
                                return;
                            }
                            // Monomorphic getter inlining: receivers of the
                            // one implementing class run the body's register
                            // code in place; everything else (wrong class,
                            // non-object, foreign layout) falls through to
                            // the generic call for identical errors.
                            let guard = self.push(SInstr::ClassIs {
                                a: recv,
                                type_index: tix,
                                if_false: 0, // patched below
                            });
                            self.inline_expr(ret, dst, recv, base, params, layout);
                            let skip = self.push(SInstr::Jump { target: 0 });
                            let slow = self.code.len() as Pc;
                            if let SInstr::ClassIs { if_false, .. } = &mut self.code[guard as usize]
                            {
                                *if_false = slow;
                            }
                            self.push(SInstr::CallDyn {
                                dst,
                                recv,
                                name,
                                dispatch: *dispatch,
                                base,
                                argc,
                            });
                            let join = self.code.len() as Pc;
                            if let SInstr::Jump { target } = &mut self.code[skip as usize] {
                                *target = join;
                            }
                        } else {
                            self.push(SInstr::CallDyn {
                                dst,
                                recv,
                                name,
                                dispatch: *dispatch,
                                base,
                                argc,
                            });
                        }
                    }
                    CallKind::ThisMethod => {
                        let name = self.name(name);
                        self.push(SInstr::CallThis {
                            dst,
                            name,
                            dispatch: *dispatch,
                            base,
                            argc,
                        });
                    }
                    _ => {
                        let pid = pid.expect("checked above");
                        match self.static_inline_target(pid, args.len()) {
                            // A free single-`return` callee over its
                            // parameters alone needs no guard at all: the
                            // plan is statically resolved.
                            Some((ret, params)) => {
                                self.inline_expr(ret, dst, 0, base, params, None)
                            }
                            None => {
                                self.push(SInstr::CallStatic {
                                    dst,
                                    pid: pid as u32,
                                    base,
                                    argc,
                                });
                            }
                        }
                    }
                }
            }
            // Result, Index, NewArray, Tuple, As, OrPat, Where, Wildcard,
            // Decl: evaluate (or error) exactly like the tree evaluator.
            _ => {
                let expr = self.pool_expr(e);
                self.push(SInstr::EvalExpr { dst, expr });
            }
        }
    }

    /// The inline candidate behind a dynamic dispatch: when the name's
    /// table resolves for exactly one type index and that implementation
    /// is a single-`return` block over inlinable expressions, returns the
    /// type index to guard on, the returned expression, and the callee's
    /// parameter slots.
    fn inline_target(
        &self,
        dispatch: Option<DispatchId>,
        argc: usize,
        has_this: bool,
    ) -> Option<(u32, &'a PExpr, &'a [SlotId], Option<&'a ClassLayout>)> {
        let (tix, pid) = self.ctx.dispatch.get(dispatch? as usize)?.unique_impl()?;
        let (ret, params) = self.returned_expr(pid, argc, has_this)?;
        let layout = self.ctx.methods.get(pid)?.owner_layout.as_deref();
        Some((tix, ret, params, layout))
    }

    /// Like [`BlockCompiler::inline_target`] for a statically resolved
    /// call: no guard is needed, but the body must not touch `this` (free
    /// methods have none).
    fn static_inline_target(&self, pid: PlanId, argc: usize) -> Option<(&'a PExpr, &'a [SlotId])> {
        self.returned_expr(pid, argc, false)
    }

    /// The single returned expression of an inlinable block body.
    fn returned_expr(
        &self,
        pid: PlanId,
        argc: usize,
        has_this: bool,
    ) -> Option<(&'a PExpr, &'a [SlotId])> {
        // Recorded whatever the outcome: a *negative* inlining decision
        // also depends on the callee's body (the body changing may make it
        // inlinable), so the caller's bytecode must be re-emitted either
        // way when `pid` changes.
        self.ctx.record_dep(pid);
        let mp = self.ctx.methods.get(pid)?;
        let BodyPlan::Block(bp) = &mp.body else {
            return None;
        };
        if bp.param_slots.len() != argc {
            return None;
        }
        let [StmtPlan::Return(Some(ret))] = bp.stmts.as_slice() else {
            return None;
        };
        inlinable(ret, &bp.param_slots, has_this).then_some((ret, bp.param_slots.as_slice()))
    }

    /// Emits `e` (a callee-body expression vetted by [`inlinable`]) into
    /// `dst`, with the callee's `this` in register `recv` and its
    /// parameters in the contiguous argument registers at `base`. `layout`
    /// is the receiver's layout when the call site guards the receiver's
    /// class ([`SInstr::ClassIs`]), letting field-of-`this` reads compile
    /// to direct slot loads.
    fn inline_expr(
        &mut self,
        e: &PExpr,
        dst: Reg,
        recv: Reg,
        base: Reg,
        params: &[SlotId],
        layout: Option<&ClassLayout>,
    ) {
        match e {
            PExpr::Int(i) => {
                let k = self.konst(Const::Int(*i));
                self.push(SInstr::Const { dst, k });
            }
            PExpr::Bool(b) => {
                let k = self.konst(Const::Bool(*b));
                self.push(SInstr::Const { dst, k });
            }
            PExpr::Str(s) => {
                let k = self.konst(Const::Str(s.clone()));
                self.push(SInstr::Const { dst, k });
            }
            PExpr::Null => {
                let k = self.konst(Const::Null);
                self.push(SInstr::Const { dst, k });
            }
            PExpr::This => {
                self.push(SInstr::Move { dst, src: recv });
            }
            PExpr::Name {
                slot,
                name,
                field_sym,
                ..
            } => match params.iter().position(|s| s == slot) {
                Some(i) => {
                    self.push(SInstr::Move {
                        dst,
                        src: base + i as Reg,
                    });
                }
                // A non-parameter variable in a single-`return` body can
                // only be bound through the field-of-`this` fallback; with
                // the receiver's class guarded, the slot is known statically.
                None => {
                    let slot = layout.zip(*field_sym).and_then(|(l, s)| l.slot_of_sym(s));
                    match slot {
                        Some(idx) => {
                            self.push(SInstr::LoadFieldIdx {
                                dst,
                                base: recv,
                                idx: idx as u32,
                            });
                        }
                        None => {
                            let name = self.name(name);
                            self.push(SInstr::LoadField {
                                dst,
                                base: recv,
                                sym: *field_sym,
                                name,
                            });
                        }
                    }
                }
            },
            PExpr::Field(b, n, sym) => {
                let rb = self.inline_operand(b, recv, base, params, layout);
                let name = self.name(n);
                self.push(SInstr::LoadField {
                    dst,
                    base: rb,
                    sym: *sym,
                    name,
                });
            }
            PExpr::Binary(op, a, b) => {
                let ra = self.inline_operand(a, recv, base, params, layout);
                let rb = self.inline_operand(b, recv, base, params, layout);
                self.push(SInstr::Bin {
                    dst,
                    op: *op,
                    a: ra,
                    b: rb,
                });
            }
            PExpr::Neg(a) => {
                let ra = self.inline_operand(a, recv, base, params, layout);
                self.push(SInstr::Neg { dst, a: ra });
            }
            _ => unreachable!("expression shape vetted by `inlinable`"),
        }
    }

    /// An operand register for an inlined expression, reusing the receiver
    /// / argument registers directly when possible.
    fn inline_operand(
        &mut self,
        e: &PExpr,
        recv: Reg,
        base: Reg,
        params: &[SlotId],
        layout: Option<&ClassLayout>,
    ) -> Reg {
        match e {
            PExpr::This => recv,
            PExpr::Name { slot, .. } => {
                if let Some(i) = params.iter().position(|s| s == slot) {
                    return base + i as Reg;
                }
                let r = self.alloc();
                self.inline_expr(e, r, recv, base, params, layout);
                r
            }
            _ => {
                let r = self.alloc();
                self.inline_expr(e, r, recv, base, params, layout);
                r
            }
        }
    }

    /// Emits a frame store, evicting the slot from the read cache.
    fn emit_store(&mut self, slot: SlotId, src: Reg) {
        self.slot_regs.retain(|(s, _)| *s != slot);
        self.push(SInstr::Store { slot, src });
    }

    /// Qualifies every case of a switch for native compilation: each arm
    /// must be a single-class constructor pattern over a pure
    /// field-projection constructor, with unconditionally binding argument
    /// patterns (`T x` / `_`), a plain body target, a single-`return` body
    /// (so the arm cannot fall through into the code after the switch),
    /// and no two arms claiming the same class. Anything else returns
    /// `None` and the switch stays on the guarded form.
    fn native_arms<'p>(
        &self,
        cases: &'p [CasePlan],
        bodies: &'p [Vec<StmtPlan>],
        num_types: usize,
    ) -> Option<Vec<NativeArm<'p>>> {
        let mut arms = Vec::with_capacity(cases.len());
        let mut claimed = vec![false; num_types];
        for c in cases {
            let [pattern] = c.patterns.as_slice() else {
                return None;
            };
            let [CaseGuard::Classes(mask)] = c.guards.as_slice() else {
                return None;
            };
            let mut admitted = (0..num_types).filter(|&t| mask.get(t) == Some(&true));
            let (Some(tix), None) = (admitted.next(), admitted.next()) else {
                return None;
            };
            if claimed[tix] {
                return None;
            }
            let CaseTarget::Body(j) = c.target else {
                return None;
            };
            let body = bodies.get(j)?.as_slice();
            if !matches!(body, [StmtPlan::Return(_)]) {
                return None;
            }
            let PExpr::Call {
                receiver: None,
                args,
                kind,
                ..
            } = pattern
            else {
                return None;
            };
            let (CallKind::StaticConstruct(cr) | CallKind::ClassCtor(cr)) = kind else {
                return None;
            };
            let pid = cr.match_pid?;
            self.ctx.record_dep(pid);
            let mp = self.ctx.methods.get(pid)?;
            let proj = projection_syms(mp)?;
            if proj.len() != args.len() {
                return None;
            }
            // The claimed class's own layout: each projected field must
            // resolve to a slot there, or the arm stays on the guarded form.
            let layout = mp.owner_layout.as_deref()?;
            let mut binds = Vec::with_capacity(args.len());
            for (arg, (sym, _)) in args.iter().zip(proj) {
                let idx = layout.slot_of_sym(sym)? as u32;
                match arg {
                    PExpr::Decl(_, slot, ClassCheck::Any) => binds.push((idx, *slot)),
                    PExpr::Wildcard => binds.push((idx, None)),
                    _ => return None,
                }
            }
            claimed[tix] = true;
            arms.push(NativeArm { tix, binds, body });
        }
        Some(arms)
    }

    /// Emits the native form of a qualified switch: a [`SInstr::SwitchJump`]
    /// whose table maps each claimed type index to its arm's code (direct
    /// field loads for the pattern bindings, then the compiled body). All
    /// other scrutinees — and the `default` arm — land on `other`, which is
    /// the guarded [`SInstr::Switch`] the caller pushes immediately after
    /// this returns.
    fn emit_native_switch(&mut self, scrutinee: Reg, arms: Vec<NativeArm<'_>>, num_types: usize) {
        let jt = self.jumps.len();
        self.jumps.push(JumpTable {
            by_type: vec![Pc::MAX; num_types].into(),
            other: Pc::MAX,
        });
        self.push(SInstr::SwitchJump {
            scrutinee,
            table: jt as u32,
        });
        for arm in arms {
            let pc = self.code.len() as Pc;
            self.jumps[jt].by_type[arm.tix] = pc;
            // Keep the binding loads clear of the scrutinee's register:
            // each arm is entered straight from the jump, so the register
            // counter must restart above it, not above the previous arm's.
            self.next_reg = self.next_reg.max(scrutinee + 1);
            for (idx, slot) in &arm.binds {
                if let Some(slot) = slot {
                    let r = self.alloc();
                    self.push(SInstr::LoadFieldIdx {
                        dst: r,
                        base: scrutinee,
                        idx: *idx,
                    });
                    self.emit_store(*slot, r);
                }
            }
            for st in arm.body {
                self.stmt(st);
            }
        }
        let other = self.code.len() as Pc;
        let t = &mut self.jumps[jt];
        t.other = other;
        for e in t.by_type.iter_mut() {
            if *e == Pc::MAX {
                *e = other;
            }
        }
    }

    /// Compiles an `Assign` / `Expr` / `Return` statement, versioned behind
    /// a [`SInstr::GuardSlot`] when the expression contains a monomorphic
    /// instance call on a slot-variable receiver: the fast branch compiles
    /// with the receiver's class proven (direct layout-slot field loads,
    /// guard-free inlining), the generic branch is the ordinary compilation
    /// the guard falls back to. `store` is an `Assign`'s target slot;
    /// `ret` marks a `return` (the fast branch exits, so no join is
    /// emitted).
    fn guarded_stmt(&mut self, e: &PExpr, store: Option<SlotId>, ret: bool) {
        let Some((rslot, tix, layout)) = self.stmt_spec(e) else {
            self.finish_stmt(e, store, ret);
            return;
        };
        let dst = self.alloc();
        let guard = self.push(SInstr::GuardSlot {
            dst,
            slot: rslot,
            type_index: tix,
            if_false: 0, // patched below
        });
        self.slot_regs.push((rslot, dst));
        self.spec = Some((rslot, tix, layout));
        self.finish_stmt(e, store, ret);
        self.spec = None;
        let skip = (!ret).then(|| self.push(SInstr::Jump { target: 0 }));
        let slow = self.code.len() as Pc;
        if let SInstr::GuardSlot { if_false, .. } = &mut self.code[guard as usize] {
            *if_false = slow;
        }
        // The fast branch's register cache does not hold on the generic
        // branch.
        self.slot_regs.clear();
        self.finish_stmt(e, store, ret);
        let join = self.code.len() as Pc;
        if let Some(skip) = skip {
            if let SInstr::Jump { target } = &mut self.code[skip as usize] {
                *target = join;
            }
        }
    }

    /// The unversioned tail of [`BlockCompiler::guarded_stmt`]: evaluate,
    /// then store or return.
    fn finish_stmt(&mut self, e: &PExpr, store: Option<SlotId>, ret: bool) {
        let src = self.expr(e);
        if let Some(slot) = store {
            self.emit_store(slot, src);
        } else if ret {
            self.push(SInstr::Ret { src });
        }
    }

    /// The specialization candidate of one statement: the first
    /// slot-variable receiver of a monomorphic inlinable instance call in
    /// the expression, with the type index and layout its guard proves.
    fn stmt_spec(&self, e: &PExpr) -> Option<(SlotId, u32, &'a ClassLayout)> {
        match e {
            PExpr::Call {
                receiver: Some(r),
                args,
                kind: CallKind::Instance,
                dispatch,
                ..
            } => {
                if let PExpr::Name { slot, .. } = &**r {
                    if let Some((tix, _, _, Some(layout))) =
                        self.inline_target(*dispatch, args.len(), true)
                    {
                        return Some((*slot, tix, layout));
                    }
                }
                self.stmt_spec(r)
                    .or_else(|| args.iter().find_map(|a| self.stmt_spec(a)))
            }
            PExpr::Call { receiver, args, .. } => receiver
                .as_deref()
                .and_then(|r| self.stmt_spec(r))
                .or_else(|| args.iter().find_map(|a| self.stmt_spec(a))),
            PExpr::Binary(_, a, b) => self.stmt_spec(a).or_else(|| self.stmt_spec(b)),
            PExpr::Neg(a) | PExpr::Field(a, _, _) => self.stmt_spec(a),
            _ => None,
        }
    }

    fn stmt(&mut self, s: &StmtPlan) {
        self.next_reg = 0;
        self.slot_regs.clear();
        match s {
            StmtPlan::Assign(slot, e) => self.guarded_stmt(e, Some(*slot), false),
            StmtPlan::Expr(e) => self.guarded_stmt(e, None, false),
            StmtPlan::Return(Some(e)) => self.guarded_stmt(e, None, true),
            StmtPlan::Return(None) => {
                self.push(SInstr::RetNull);
            }
            StmtPlan::While { cond, body } => match cond {
                Goal::Compare(op, l, r) => {
                    let guard = self.nguards;
                    self.nguards += 1;
                    self.push(SInstr::ResetGuard { guard });
                    let head = self.code.len() as Pc;
                    self.next_reg = 0;
                    let a = self.expr(l);
                    let b = self.expr(r);
                    let cmp = self.push(SInstr::CmpJump {
                        op: *op,
                        a,
                        b,
                        if_false: 0, // patched below
                    });
                    for s in body {
                        self.stmt(s);
                    }
                    self.push(SInstr::LoopJump {
                        target: head,
                        guard,
                    });
                    let end = self.code.len() as Pc;
                    if let SInstr::CmpJump { if_false, .. } = &mut self.code[cmp as usize] {
                        *if_false = end;
                    }
                }
                Goal::Test(e) => {
                    let guard = self.nguards;
                    self.nguards += 1;
                    self.push(SInstr::ResetGuard { guard });
                    let head = self.code.len() as Pc;
                    self.next_reg = 0;
                    let a = self.expr(e);
                    let test = self.push(SInstr::TestJump { a, if_false: 0 });
                    for s in body {
                        self.stmt(s);
                    }
                    self.push(SInstr::LoopJump {
                        target: head,
                        guard,
                    });
                    let end = self.code.len() as Pc;
                    if let SInstr::TestJump { if_false, .. } = &mut self.code[test as usize] {
                        *if_false = end;
                    }
                }
                _ => {
                    let stmt = self.pool_stmt(s);
                    self.push(SInstr::ExecStmt { stmt });
                }
            },
            StmtPlan::Switch {
                scrutinees,
                cases,
                bodies,
                ..
            } if scrutinees.len() == 1 => {
                // Build the jump table from the PR 4 case guards; a switch
                // whose guards are all `Any` gains nothing over the scan.
                let num_types = cases.iter().find_map(|c| match &c.guards[0] {
                    CaseGuard::Classes(mask) => Some(mask.len()),
                    CaseGuard::Any => None,
                });
                match num_types {
                    Some(n) => {
                        let by_type: Vec<Box<[u16]>> = (0..n)
                            .map(|t| {
                                cases
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, c)| c.guards[0].admits(Some(t as u32)))
                                    .map(|(i, _)| i as u16)
                                    .collect()
                            })
                            .collect();
                        let other: Box<[u16]> = cases
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.guards[0].admits(None))
                            .map(|(i, _)| i as u16)
                            .collect();
                        let table = self.switches.len() as u32;
                        self.switches.push(SwitchTable { by_type, other });
                        let scrutinee = self.expr(&scrutinees[0]);
                        let stmt = self.pool_stmt(s);
                        let arms = self.native_arms(cases, bodies, n);
                        if let Some(arms) = arms {
                            self.emit_native_switch(scrutinee, arms, n);
                        }
                        // The guarded form: the whole switch when no native
                        // table was emitted, the `other` fallback (non-object
                        // / foreign / unmatched scrutinees, `default`) when
                        // one was.
                        self.push(SInstr::Switch {
                            scrutinee,
                            table,
                            stmt,
                        });
                    }
                    None => {
                        let stmt = self.pool_stmt(s);
                        self.push(SInstr::ExecStmt { stmt });
                    }
                }
            }
            // Let / If / Cond / Foreach / nested Block / multi-scrutinee
            // Switch / AssignUnsupported: the statement interpreter owns
            // their solution-frame save/restore semantics.
            _ => {
                let stmt = self.pool_stmt(s);
                self.push(SInstr::ExecStmt { stmt });
            }
        }
    }
}

/// Whether a callee-body expression can be emitted inline at a call site:
/// literals, `this` (when the callee has one), parameters, field reads,
/// and integer arithmetic — everything whose register lowering needs no
/// callee frame. Non-parameter variables are admitted only through the
/// field-of-`this` fallback (in a single-`return` body nothing else can
/// bind them).
fn inlinable(e: &PExpr, params: &[SlotId], has_this: bool) -> bool {
    match e {
        PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
        PExpr::This => has_this,
        PExpr::Name {
            slot, field_sym, ..
        } => params.contains(slot) || (has_this && field_sym.is_some()),
        PExpr::Field(b, _, _) => inlinable(b, params, has_this),
        PExpr::Binary(_, a, b) => inlinable(a, params, has_this) && inlinable(b, params, has_this),
        PExpr::Neg(a) => inlinable(a, params, has_this),
        _ => false,
    }
}

/// For a constructor whose matching form is a pure field projection
/// (a conjunction of `field = param` equations and nothing else), the
/// field each parameter projects, in parameter order. This is the shape a
/// `returns(...)`-clause constructor lowers to, and it lets a `case
/// C(int x, ...)` arm bind its variables with direct field loads instead
/// of running the matching solver.
fn projection_syms(mp: &MethodPlan) -> Option<Vec<(Sym, String)>> {
    let BodyPlan::Formula { matching, .. } = &mp.body else {
        return None;
    };
    let params = &matching.param_slots;
    let conjuncts: &[Goal] = match &matching.goal {
        Goal::Seq(gs) => gs,
        g => std::slice::from_ref(g),
    };
    let mut fields: Vec<Option<(Sym, String)>> = vec![None; params.len()];
    for g in conjuncts {
        let Goal::Unify(a, b) = g else {
            return None;
        };
        let (field, param) = match (field_name(a, params), param_slot(b, params)) {
            (Some(f), Some(p)) => (f, p),
            _ => match (field_name(b, params), param_slot(a, params)) {
                (Some(f), Some(p)) => (f, p),
                _ => return None,
            },
        };
        let i = params.iter().position(|&s| s == param)?;
        if fields[i].is_some() {
            return None;
        }
        fields[i] = Some(field);
    }
    fields.into_iter().collect()
}

/// The interned field a `Name` resolves through the field-of-`this`
/// fallback (i.e. it is not a parameter and a class declares the field).
fn field_name(e: &PExpr, params: &[SlotId]) -> Option<(Sym, String)> {
    match e {
        PExpr::Name {
            slot,
            name,
            field_sym: Some(sym),
            ..
        } if !params.contains(slot) => Some((*sym, name.clone())),
        _ => None,
    }
}

/// The slot of a bare parameter occurrence.
fn param_slot(e: &PExpr, params: &[SlotId]) -> Option<SlotId> {
    match e {
        PExpr::Name { slot, .. } if params.contains(slot) => Some(*slot),
        _ => None,
    }
}

/// A constructor specialized to a direct projection: every owner field is
/// assigned exactly one expression over the (always-ground) parameters, so
/// forward construction can fill the layout's slots straight from the
/// argument vector — no frame, no solver.
#[derive(Debug, Clone)]
pub struct FastCtor {
    /// One vetted expression per owner field, in layout order.
    pub fields: Box<[PExpr]>,
    /// Slot of each declared parameter, in declaration order — the `Name`
    /// occurrences inside `fields` resolve to positions in this list.
    pub params: Box<[SlotId]>,
    /// When the constructor is a pure field *permutation* — every field is
    /// assigned exactly one distinct parameter and every parameter is used —
    /// `projection[i]` is the layout slot holding parameter `i`'s value.
    /// Backward mode then has exactly one solution per matching object,
    /// read straight off its field storage with no solver run.
    pub projection: Option<Box<[u32]>>,
}

/// Vets a constructor's forward form for [`FastCtor`] specialization: the
/// goal must be a conjunction of `field = expr` equations — each field
/// assigned exactly once, each `expr` built only from literals, parameters,
/// and integer arithmetic. Guards, `result =` equations, locals, and
/// field-to-field dependencies all disqualify (they need the solver).
pub fn fast_ctor(mp: &MethodPlan) -> Option<FastCtor> {
    if !mp.info.constructs_owner() {
        return None;
    }
    let BodyPlan::Formula { forward, .. } = &mp.body else {
        return None;
    };
    if forward.this_present {
        return None;
    }
    let params = &forward.param_slots;
    let mut leaves = Vec::new();
    collect_conjuncts(&forward.goal, &mut leaves);
    let mut fields: Vec<Option<&PExpr>> = vec![None; forward.field_slots.len()];
    for g in leaves {
        let Goal::Unify(a, b) = g else {
            return None;
        };
        let (slot, expr) = match (field_slot_of(a, forward), fast_expr_ok(b, params)) {
            (Some(s), true) => (s, b),
            _ => match (field_slot_of(b, forward), fast_expr_ok(a, params)) {
                (Some(s), true) => (s, a),
                _ => return None,
            },
        };
        let i = forward.field_slots.iter().position(|&(_, s)| s == slot)?;
        if fields[i].is_some() {
            return None;
        }
        fields[i] = Some(expr);
    }
    let fields: Box<[PExpr]> = fields
        .into_iter()
        .map(|f| f.cloned())
        .collect::<Option<_>>()?;
    let params: Box<[SlotId]> = params.clone().into_boxed_slice();
    let projection = projection_of(&fields, &params);
    Some(FastCtor {
        fields,
        params,
        projection,
    })
}

/// The parameter→field-slot permutation of a pure projection constructor,
/// or `None` when any field is computed (a literal or arithmetic
/// expression) or any parameter is unused or reused. A permutation makes
/// the constructor invertible: deconstruction is field projection.
fn projection_of(fields: &[PExpr], params: &[SlotId]) -> Option<Box<[u32]>> {
    if fields.len() != params.len() {
        return None;
    }
    let mut proj = vec![u32::MAX; params.len()];
    for (idx, e) in fields.iter().enumerate() {
        let PExpr::Name { slot, .. } = e else {
            return None;
        };
        let i = params.iter().position(|p| p == slot)?;
        if proj[i] != u32::MAX {
            return None;
        }
        proj[i] = idx as u32;
    }
    Some(proj.into_boxed_slice())
}

/// Flattens nested conjunctions into their leaf goals (`True` vanishes).
fn collect_conjuncts<'p>(g: &'p Goal, out: &mut Vec<&'p Goal>) {
    match g {
        Goal::True => {}
        Goal::Seq(gs) => {
            for g in gs {
                collect_conjuncts(g, out);
            }
        }
        g => out.push(g),
    }
}

/// The owner-field slot a bare `Name` occurrence writes during
/// construction.
fn field_slot_of(e: &PExpr, forward: &SolvedForm) -> Option<SlotId> {
    match e {
        PExpr::Name { slot, .. } if forward.field_slots.iter().any(|&(_, s)| s == *slot) => {
            Some(*slot)
        }
        _ => None,
    }
}

/// Whether `e` is evaluable from the argument vector alone: literals,
/// parameter reads, and integer arithmetic over them.
fn fast_expr_ok(e: &PExpr, params: &[SlotId]) -> bool {
    match e {
        PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
        PExpr::Name { slot, .. } => params.contains(slot),
        PExpr::Binary(_, a, b) => fast_expr_ok(a, params) && fast_expr_ok(b, params),
        PExpr::Neg(a) => fast_expr_ok(a, params),
        _ => false,
    }
}

/// Compiles one imperative body to register bytecode. `ctx` provides the
/// whole lowered program for cross-method specialization.
pub fn compile_block(bp: &BlockPlan, ctx: &BcCtx<'_>) -> BcBlock {
    let mut c = BlockCompiler {
        ctx,
        code: Vec::new(),
        nregs: 0,
        next_reg: 0,
        nguards: 0,
        consts: Vec::new(),
        exprs: Vec::new(),
        stmts: Vec::new(),
        switches: Vec::new(),
        jumps: Vec::new(),
        names: Vec::new(),
        slot_regs: Vec::new(),
        spec: None,
    };
    for s in &bp.stmts {
        c.stmt(s);
    }
    c.push(SInstr::End);
    BcBlock {
        code: c.code,
        nregs: c.nregs,
        nguards: c.nguards,
        consts: c.consts,
        exprs: c.exprs,
        stmts: c.stmts,
        switches: c.switches,
        jumps: c.jumps,
        names: c.names,
    }
}

/// The `PlanId` of a `CallStatic` (stored narrow in the instruction).
#[inline]
pub fn call_static_pid(pid: u32) -> PlanId {
    pid as PlanId
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

/// Compact one-line rendering of a pooled expression for disassembly.
fn fmt_pexpr(f: &mut fmt::Formatter<'_>, e: &PExpr) -> fmt::Result {
    match e {
        PExpr::Int(i) => write!(f, "{i}"),
        PExpr::Bool(b) => write!(f, "{b}"),
        PExpr::Str(s) => write!(f, "{s:?}"),
        PExpr::Null => write!(f, "null"),
        PExpr::This => write!(f, "this"),
        PExpr::Result(s) => write!(f, "result@{s}"),
        PExpr::Wildcard => write!(f, "_"),
        PExpr::Name { slot, name, .. } => write!(f, "{name}@{slot}"),
        PExpr::Decl(_, Some(s), _) => write!(f, "decl@{s}"),
        PExpr::Decl(_, None, _) => write!(f, "decl@_"),
        PExpr::Field(b, name, _) => {
            fmt_pexpr(f, b)?;
            write!(f, ".{name}")
        }
        PExpr::Call {
            receiver,
            name,
            args,
            ..
        } => {
            if let Some(r) = receiver {
                fmt_pexpr(f, r)?;
                write!(f, ".")?;
            }
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_pexpr(f, a)?;
            }
            write!(f, ")")
        }
        PExpr::Index(a, b) => {
            fmt_pexpr(f, a)?;
            write!(f, "[")?;
            fmt_pexpr(f, b)?;
            write!(f, "]")
        }
        PExpr::NewArray(_, n) => {
            write!(f, "new[")?;
            fmt_pexpr(f, n)?;
            write!(f, "]")
        }
        PExpr::Binary(op, a, b) => {
            write!(f, "(")?;
            fmt_pexpr(f, a)?;
            write!(f, " {op} ")?;
            fmt_pexpr(f, b)?;
            write!(f, ")")
        }
        PExpr::Neg(a) => {
            write!(f, "-(")?;
            fmt_pexpr(f, a)?;
            write!(f, ")")
        }
        PExpr::Tuple(xs) => {
            write!(f, "(")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_pexpr(f, x)?;
            }
            write!(f, ")")
        }
        PExpr::As(a, b) => {
            fmt_pexpr(f, a)?;
            write!(f, " as ")?;
            fmt_pexpr(f, b)
        }
        PExpr::OrPat(a, b) => {
            fmt_pexpr(f, a)?;
            write!(f, " | ")?;
            fmt_pexpr(f, b)
        }
        PExpr::Where(p, _) => {
            fmt_pexpr(f, p)?;
            write!(f, " where (..)")
        }
    }
}

struct PE<'a>(&'a PExpr);
impl fmt::Display for PE<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pexpr(f, self.0)
    }
}

impl fmt::Display for BcBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "entry: {}", self.entry)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            write!(f, "{pc:4}: ")?;
            match i {
                Instr::Emit => writeln!(f, "emit")?,
                Instr::Fail => writeln!(f, "fail")?,
                Instr::Choice(alts) => {
                    write!(f, "choice [")?;
                    for (i, a) in alts.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    writeln!(f, "]")?;
                }
                Instr::Unify {
                    lhs,
                    rhs,
                    mode,
                    next,
                } => {
                    let m = match mode {
                        UnifyMode::EvalEval => "ee",
                        UnifyMode::EvalMatch => "em",
                        UnifyMode::MatchEval => "me",
                        UnifyMode::Dynamic => "dyn",
                    };
                    writeln!(
                        f,
                        "unify.{m} {} = {} -> {next}",
                        PE(&self.exprs[*lhs as usize]),
                        PE(&self.exprs[*rhs as usize]),
                    )?;
                }
                Instr::Compare { op, lhs, rhs, next } => writeln!(
                    f,
                    "cmp {} {op} {} -> {next}",
                    PE(&self.exprs[*lhs as usize]),
                    PE(&self.exprs[*rhs as usize]),
                )?,
                Instr::Invoke {
                    receiver,
                    name,
                    args_start,
                    args_len,
                    next,
                    ..
                } => {
                    write!(f, "invoke ")?;
                    match receiver {
                        Some(r) => write!(f, "{}", PE(&self.exprs[*r as usize]))?,
                        None => write!(f, "this")?,
                    }
                    write!(f, ".{}(", self.names[*name as usize])?;
                    for (i, a) in self.args(*args_start, *args_len).iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", PE(a))?;
                    }
                    writeln!(f, ") -> {next}")?;
                }
                Instr::Test { expr, next } => {
                    writeln!(f, "test {} -> {next}", PE(&self.exprs[*expr as usize]))?;
                }
                Instr::Not { goal, next } => writeln!(f, "not goal#{goal} -> {next}")?,
                Instr::DynSeq { goal, next } => writeln!(f, "dynseq goal#{goal} -> {next}")?,
            }
        }
        Ok(())
    }
}

impl fmt::Display for BcBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "regs: {}  guards: {}", self.nregs, self.nguards)?;
        for (pc, i) in self.code.iter().enumerate() {
            write!(f, "{pc:4}: ")?;
            match i {
                SInstr::Const { dst, k } => {
                    let c = match &self.consts[*k as usize] {
                        Const::Int(i) => format!("{i}"),
                        Const::Bool(b) => format!("{b}"),
                        Const::Str(s) => format!("{s:?}"),
                        Const::Null => "null".to_owned(),
                    };
                    writeln!(f, "r{dst} = const {c}")?;
                }
                SInstr::LoadSlot {
                    dst, slot, name, ..
                } => writeln!(f, "r{dst} = slot {} ({})", slot, self.names[*name as usize])?,
                SInstr::LoadThis { dst } => writeln!(f, "r{dst} = this")?,
                SInstr::LoadField {
                    dst, base, name, ..
                } => writeln!(f, "r{dst} = r{base}.{}", self.names[*name as usize])?,
                SInstr::LoadFieldIdx { dst, base, idx } => {
                    writeln!(f, "r{dst} = r{base}.field#{idx}")?
                }
                SInstr::Move { dst, src } => writeln!(f, "r{dst} = r{src}")?,
                SInstr::Bin { dst, op, a, b } => writeln!(f, "r{dst} = r{a} {op} r{b}")?,
                SInstr::Neg { dst, a } => writeln!(f, "r{dst} = -r{a}")?,
                SInstr::EvalExpr { dst, expr } => {
                    writeln!(f, "r{dst} = eval {}", PE(&self.exprs[*expr as usize]))?;
                }
                SInstr::CallStatic {
                    dst,
                    pid,
                    base,
                    argc,
                } => {
                    writeln!(f, "r{dst} = call plan#{pid} (r{base}..+{argc})")?;
                }
                SInstr::CallDyn {
                    dst,
                    recv,
                    name,
                    base,
                    argc,
                    ..
                } => writeln!(
                    f,
                    "r{dst} = r{recv}.{} (r{base}..+{argc})",
                    self.names[*name as usize]
                )?,
                SInstr::CallThis {
                    dst,
                    name,
                    base,
                    argc,
                    ..
                } => writeln!(
                    f,
                    "r{dst} = this.{} (r{base}..+{argc})",
                    self.names[*name as usize]
                )?,
                SInstr::Store { slot, src } => writeln!(f, "slot {slot} = r{src}")?,
                SInstr::Ret { src } => writeln!(f, "ret r{src}")?,
                SInstr::RetNull => writeln!(f, "ret null")?,
                SInstr::Jump { target } => writeln!(f, "jmp {target}")?,
                SInstr::ResetGuard { guard } => writeln!(f, "guard {guard} = 0")?,
                SInstr::LoopJump { target, guard } => {
                    writeln!(f, "loop {target} (guard {guard})")?;
                }
                SInstr::CmpJump { op, a, b, if_false } => {
                    writeln!(f, "if !(r{a} {op} r{b}) jmp {if_false}")?;
                }
                SInstr::TestJump { a, if_false } => writeln!(f, "if !r{a} jmp {if_false}")?,
                SInstr::ClassIs {
                    a,
                    type_index,
                    if_false,
                } => writeln!(f, "if !(r{a} is type#{type_index}) jmp {if_false}")?,
                SInstr::GuardSlot {
                    dst,
                    slot,
                    type_index,
                    if_false,
                } => writeln!(
                    f,
                    "r{dst} = guard slot {slot} is type#{type_index} else jmp {if_false}"
                )?,
                SInstr::SwitchJump { scrutinee, table } => {
                    let t = &self.jumps[*table as usize];
                    write!(f, "switchjmp r{scrutinee} [")?;
                    for (i, pc) in t.by_type.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{pc}")?;
                    }
                    writeln!(f, "] other {}", t.other)?;
                }
                SInstr::Switch {
                    scrutinee,
                    table,
                    stmt,
                } => writeln!(f, "switch r{scrutinee} table#{table} stmt#{stmt}")?,
                SInstr::ExecStmt { stmt } => writeln!(f, "stmt#{stmt}")?,
                SInstr::End => writeln!(f, "end")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::lower::ProgramPlan;
    use crate::table::ClassTable;
    use jmatch_syntax::parse_program;
    use std::sync::Arc;

    fn plan_for(src: &str) -> Arc<ProgramPlan> {
        let program = parse_program(src).unwrap();
        let mut diags = Diagnostics::new();
        let table = ClassTable::build(&program, &mut diags);
        assert!(diags.errors.is_empty(), "{:?}", diags.errors);
        ProgramPlan::compile(table)
    }

    const ZNAT: &str = r#"
        interface Nat {
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
        }
        class ZNat implements Nat {
            int val;
            private ZNat(int n) returns(n) ( val = n && n >= 0 )
            constructor zero() returns() ( val = 0 )
            constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
        }
    "#;

    #[test]
    fn every_solved_form_gets_bytecode() {
        let plan = plan_for(ZNAT);
        for m in plan.methods() {
            if let crate::lower::BodyPlan::Formula {
                forward, matching, ..
            } = &m.body
            {
                assert!(forward.bc.is_some(), "{} forward", m.info.decl.name);
                assert!(matching.bc.is_some(), "{} matching", m.info.decl.name);
            }
        }
    }

    #[test]
    fn projection_ctors_get_fast_construct() {
        let plan = plan_for(
            r#"
            class P { int a; int b; P(int x, int y) returns(x, y) ( a = x && b = x + y ) }
            class G { int v; G(int n) returns(n) ( v = n && n >= 0 ) }
            class Q { int a; int b; Q(int x, int y) returns(x, y) ( a = y && b = x ) }
            "#,
        );
        let p = plan.method(plan.lookup_impl("P", "P").unwrap());
        let fc = p.fast_ctor.as_ref().expect("pure projection specializes");
        assert_eq!(fc.fields.len(), 2);
        assert!(
            fc.projection.is_none(),
            "computed field `b = x + y` is not invertible by projection"
        );
        let g = plan.method(plan.lookup_impl("G", "G").unwrap());
        assert!(g.fast_ctor.is_none(), "guarded ctor needs the solver");
        let q = plan.method(plan.lookup_impl("Q", "Q").unwrap());
        let qc = q.fast_ctor.as_ref().expect("pure permutation specializes");
        // `a = y && b = x`: parameter 0 (`x`) lives in field slot 1 (`b`),
        // parameter 1 (`y`) in slot 0 (`a`).
        assert_eq!(qc.projection.as_deref(), Some(&[1, 0][..]));
    }

    #[test]
    fn instr_zero_is_emit_and_entry_in_range() {
        let plan = plan_for(ZNAT);
        let succ = plan.method(plan.lookup_impl("ZNat", "succ").unwrap());
        let (forward, matching) = succ.body.solved_forms().unwrap();
        for bc in [forward.bc.as_ref().unwrap(), matching.bc.as_ref().unwrap()] {
            assert_eq!(bc.instrs[0], Instr::Emit);
            assert!((bc.entry as usize) < bc.instrs.len());
        }
    }

    #[test]
    fn forward_mode_resolves_unify_directions_statically() {
        let plan = plan_for(ZNAT);
        let succ = plan.method(plan.lookup_impl("ZNat", "succ").unwrap());
        let (forward, _) = succ.body.solved_forms().unwrap();
        let bc = forward.bc.as_ref().unwrap();
        // Forward succ: `ZNat(val - 1) = n` with `n` a bound parameter and
        // the left a constructor pattern over the unbound field `val`: the
        // analysis must flip it to match-left/eval-right.
        let modes: Vec<UnifyMode> = bc
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Unify { mode, .. } => Some(*mode),
                _ => None,
            })
            .collect();
        assert!(
            modes.contains(&UnifyMode::MatchEval),
            "expected a statically flipped equation, got {modes:?}"
        );
    }

    #[test]
    fn choice_arity_mirrors_the_plan() {
        // `||` parses right-associated, so `x = 0 || x = 1 || x = 2` lowers
        // to `Any[x = 0, Any[x = 1, x = 2]]` — the bytecode must mirror that
        // choice-point structure exactly (two nested binary Choices), so
        // machine guides/paths line up instruction-for-instruction with the
        // plan engines.
        let plan =
            plan_for("class R { boolean below(int x) iterates(x) ( x = 0 || x = 1 || x = 2 ) }");
        let m = plan.method(plan.lookup_impl("R", "below").unwrap());
        let (_, matching) = m.body.solved_forms().unwrap();
        let bc = matching.bc.as_ref().unwrap();
        let choices: Vec<usize> = bc
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Choice(alts) => Some(alts.len()),
                _ => None,
            })
            .collect();
        assert_eq!(choices, vec![2, 2], "{bc}");
    }

    #[test]
    fn while_compare_compiles_to_cmp_loop() {
        let plan = plan_for(
            "static int count(int n) {
                 int i;
                 int acc;
                 i = 0;
                 acc = 0;
                 while (i < n) { acc = acc + i; i = i + 1; }
                 return acc;
             }",
        );
        let m = plan.method(plan.lookup_free("count").unwrap());
        let crate::lower::BodyPlan::Block(bp) = &m.body else {
            panic!()
        };
        let bc = bp.bc.as_ref().unwrap();
        assert!(
            bc.code.iter().any(|i| matches!(i, SInstr::CmpJump { .. })),
            "{bc}"
        );
        assert!(
            bc.code.iter().any(|i| matches!(i, SInstr::LoopJump { .. })),
            "{bc}"
        );
        // The loop region (head through the back-jump) must not fall back to
        // the statement interpreter. Leading declarations may still be
        // ExecStmt — they run once, outside the loop.
        let head = bc
            .code
            .iter()
            .position(|i| matches!(i, SInstr::ResetGuard { .. }))
            .unwrap();
        let back = bc
            .code
            .iter()
            .position(|i| matches!(i, SInstr::LoopJump { .. }))
            .unwrap();
        assert!(head < back, "{bc}");
        assert!(
            !bc.code[head..=back]
                .iter()
                .any(|i| matches!(i, SInstr::ExecStmt { .. })),
            "{bc}"
        );
    }

    #[test]
    fn switch_over_guarded_cases_gets_a_jump_table() {
        // Class-constructor patterns (`case A(..)`) are the shapes that get
        // `CaseGuard::Classes` masks — same as the repr bench's 64-arm
        // dispatch corpus.
        let plan = plan_for(
            "interface P { }
             class A implements P { int va; A(int n) returns(n) ( va = n ) }
             class B implements P { int vb; B(int n) returns(n) ( vb = n ) }
             static int pick(P p) {
                 switch (p) {
                     case A(int x): return x + 1;
                     case B(int y): return y + 2;
                     default: return 0;
                 }
             }",
        );
        let m = plan.method(plan.lookup_free("pick").unwrap());
        let crate::lower::BodyPlan::Block(bp) = &m.body else {
            panic!()
        };
        let bc = bp.bc.as_ref().unwrap();
        let has_switch = bc.code.iter().any(|i| matches!(i, SInstr::Switch { .. }));
        assert!(has_switch, "{bc}");
        assert_eq!(bc.switches.len(), 1);
        // Every per-type candidate list is a subset of the case indices in
        // source order.
        for cands in &bc.switches[0].by_type {
            assert!(cands.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
