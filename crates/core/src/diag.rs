//! Diagnostics produced by the JMatch 2.0 verifier.
//!
//! As in the paper (§5.4), failures of exhaustiveness, redundancy, totality
//! and multiplicity are *warnings*, not errors: they never change the dynamic
//! semantics, they only inform the programmer. Hard errors (unknown types,
//! unresolvable methods, unsolvable formulas) stop compilation.

use jmatch_syntax::lexer::Pos;
use std::fmt;

/// The kind of a verification warning.
///
/// `#[non_exhaustive]`: future verification passes may add kinds without a
/// semver break, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WarningKind {
    /// A `switch`/`cond` does not cover all values (§5.1).
    NonExhaustive,
    /// A `switch`/`cond` arm can never fire (§5.1).
    RedundantArm,
    /// A `let` (or variable declaration) may fail to bind (§5.1).
    LetMayFail,
    /// A method body may not produce a solution although its extracted
    /// matching precondition holds — assertion (2) of §5.2.
    TotalityViolation,
    /// A method body may succeed without establishing its `ensures` clause —
    /// assertion (3) of §5.2.
    PostconditionViolation,
    /// An interface/abstract method's `matches` clause does not imply its
    /// `ensures` clause (§5.2).
    SpecificationMismatch,
    /// The arms of a `|` (disjoint disjunction) overlap (§5.3).
    NotDisjoint,
    /// A non-iterative mode may produce more than one solution (§5.3).
    Multiplicity,
    /// The verifier gave up (expansion depth / budget exhausted, §6.2): the
    /// property could not be confirmed, but no counterexample was found.
    Unknown,
    /// A declaration pattern binds a name that is never read
    /// (`jmatch_core::analysis` lint).
    UnusedBinding,
    /// A predicate / constructor atom whose dispatch table has no
    /// declarative implementation: it can never match
    /// (`jmatch_core::analysis` lint).
    AlwaysFailingInvoke,
    /// A private method unreachable from any exported method — none of its
    /// modes can ever run (`jmatch_core::analysis` lint).
    DeadMode,
    /// A backward-mode body that re-invokes itself on the same receiver as
    /// its leftmost atom, with no structurally-decreasing argument
    /// (`jmatch_core::analysis` lint).
    UnboundedRecursion,
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WarningKind::NonExhaustive => "non-exhaustive",
            WarningKind::RedundantArm => "redundant arm",
            WarningKind::LetMayFail => "let may fail",
            WarningKind::TotalityViolation => "totality violation",
            WarningKind::PostconditionViolation => "postcondition violation",
            WarningKind::SpecificationMismatch => "specification mismatch",
            WarningKind::NotDisjoint => "not disjoint",
            WarningKind::Multiplicity => "multiple solutions",
            WarningKind::Unknown => "could not verify",
            WarningKind::UnusedBinding => "unused binding",
            WarningKind::AlwaysFailingInvoke => "always-failing invoke",
            WarningKind::DeadMode => "dead mode",
            WarningKind::UnboundedRecursion => "unbounded recursion",
        };
        write!(f, "{s}")
    }
}

/// A single verification diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// What kind of problem was found.
    pub kind: WarningKind,
    /// Where the offending construct lives (class / method).
    pub context: String,
    /// Human-readable description.
    pub message: String,
    /// A counterexample extracted from the solver model, if available.
    pub counterexample: Option<String>,
    /// Source position of the construct, when known.
    pub pos: Option<Pos>,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warning[{}] {}: {}",
            self.kind, self.context, self.message
        )?;
        if let Some(ce) = &self.counterexample {
            write!(f, " (counterexample: {ce})")?;
        }
        Ok(())
    }
}

/// A hard compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description of the problem.
    pub message: String,
    /// Context (class / method) of the error.
    pub context: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error in {}: {}", self.context, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Collected output of a verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// Warnings, in the order they were produced.
    pub warnings: Vec<Warning>,
    /// Hard errors.
    pub errors: Vec<CompileError>,
}

impl Diagnostics {
    /// Creates an empty set of diagnostics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a warning.
    pub fn warn(
        &mut self,
        kind: WarningKind,
        context: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.warnings.push(Warning {
            kind,
            context: context.into(),
            message: message.into(),
            counterexample: None,
            pos: None,
        });
    }

    /// Adds a warning carrying a counterexample.
    pub fn warn_with_counterexample(
        &mut self,
        kind: WarningKind,
        context: impl Into<String>,
        message: impl Into<String>,
        counterexample: impl Into<String>,
    ) {
        self.warnings.push(Warning {
            kind,
            context: context.into(),
            message: message.into(),
            counterexample: Some(counterexample.into()),
            pos: None,
        });
    }

    /// Adds a hard error.
    pub fn error(&mut self, context: impl Into<String>, message: impl Into<String>) {
        self.errors.push(CompileError {
            message: message.into(),
            context: context.into(),
        });
    }

    /// Whether any warning of the given kind was produced.
    pub fn has_warning(&self, kind: WarningKind) -> bool {
        self.warnings.iter().any(|w| w.kind == kind)
    }

    /// Warnings of a specific kind.
    pub fn warnings_of(&self, kind: WarningKind) -> Vec<&Warning> {
        self.warnings.iter().filter(|w| w.kind == kind).collect()
    }

    /// Whether no warnings and no errors were produced.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty() && self.errors.is_empty()
    }

    /// Merges another set of diagnostics into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.warnings.extend(other.warnings);
        self.errors.extend(other.errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_queries_warnings() {
        let mut d = Diagnostics::new();
        assert!(d.is_clean());
        d.warn(WarningKind::NonExhaustive, "plus", "missing case");
        d.warn_with_counterexample(
            WarningKind::RedundantArm,
            "length",
            "arm 3 never fires",
            "l = cons(_, _)",
        );
        assert!(!d.is_clean());
        assert!(d.has_warning(WarningKind::NonExhaustive));
        assert!(!d.has_warning(WarningKind::Multiplicity));
        assert_eq!(d.warnings_of(WarningKind::RedundantArm).len(), 1);
        let text = d.warnings[1].to_string();
        assert!(text.contains("redundant arm"));
        assert!(text.contains("counterexample"));
    }

    #[test]
    fn errors_are_reported() {
        let mut d = Diagnostics::new();
        d.error("ZNat.succ", "no mode can solve unknown n");
        assert_eq!(d.errors.len(), 1);
        assert!(d.errors[0].to_string().contains("ZNat.succ"));
    }
}
