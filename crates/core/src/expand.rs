//! Lazy expansion of JMatch specification predicates (§6.2).
//!
//! The verifier abstracts type invariants, `matches` and `ensures` clauses as
//! uninterpreted predicates (`is$T`, `ok$Owner$m$mode`, `ens$Owner$m`). This
//! module is the external-theory plugin that the SMT solver calls back into
//! when it assigns one of those predicates a truth value:
//!
//! * `is$T(x)` set **true** asserts the conjunction of `T`'s visible
//!   invariants instantiated at `x`, membership in `T`'s supertypes, and
//!   disjointness from unrelated concrete classes;
//! * `ok$Owner$m$mode(knowns…)` set **false** asserts the negation of the
//!   matching precondition `ExtractM(matches)` instantiated at the knowns;
//! * `ens$Owner$m(result, args…)` set **true** asserts the `ensures` clause
//!   instantiated at the arguments.
//!
//! Facts produced by an expansion may mention further specification
//! predicates; those are expanded at the next depth, bounded by the solver's
//! iterative deepening — exactly the architecture the paper builds on Z3's
//! external theory plugin.

use crate::extract;
use crate::table::MethodInfo;
use crate::vc::{Env, Seq, VcGen, F};
use jmatch_smt::{Expansion, LazyExpander, Sort, TermData, TermId, TermStore};
use jmatch_syntax::ast::Type;

/// The lazy expander for JMatch specifications.
#[derive(Debug, Clone)]
pub struct JMatchExpander {
    gen: VcGen,
}

impl JMatchExpander {
    /// Creates an expander sharing the verifier's class table.
    pub fn new(gen: VcGen) -> Self {
        JMatchExpander { gen }
    }

    fn atom_parts(&self, store: &TermStore, atom: TermId) -> Option<(String, Vec<TermId>)> {
        match store.data(atom) {
            TermData::App(sym, args, Sort::Bool) => {
                Some((store.symbol_name(*sym).to_owned(), args.clone()))
            }
            _ => None,
        }
    }

    fn expand_is(&self, store: &mut TermStore, atom: TermId, ty: &str, x: TermId) -> Vec<TermId> {
        let mut lemmas = Vec::new();
        let Some(info) = self.gen.table.type_info(ty) else {
            return lemmas;
        };
        // Membership implies the supertype memberships.
        for sup in &info.supertypes {
            if self.gen.table.type_info(sup).is_some() {
                let sup_atom = store.app(&format!("is${sup}"), vec![x], Sort::Bool);
                lemmas.push(store.implies(atom, sup_atom));
            }
        }
        // Concrete classes are disjoint from unrelated concrete classes.
        if !info.is_interface && !info.is_abstract {
            let others: Vec<String> = self
                .gen
                .table
                .types()
                .filter(|t| {
                    !t.is_interface
                        && !t.is_abstract
                        && t.name != ty
                        && !self.gen.table.types_may_overlap(ty, &t.name)
                })
                .map(|t| t.name.clone())
                .collect();
            for other in others {
                let other_atom = store.app(&format!("is${other}"), vec![x], Sort::Bool);
                let neg = store.not(other_atom);
                lemmas.push(store.implies(atom, neg));
            }
        }
        // Membership implies the publicly visible invariants.
        let invariants: Vec<_> = self
            .gen
            .table
            .visible_invariants(ty, false)
            .into_iter()
            .cloned()
            .collect();
        for inv in invariants {
            let mut env = Env::new();
            env.self_class = Some(ty.to_owned());
            env.this_term = Some(x);
            let mut seq = Seq::new();
            self.gen
                .declare_formula_vars(store, &mut env, &mut seq, &inv.formula);
            if self.gen.vf(store, &mut env, &mut seq, &inv.formula).is_ok() {
                let body = seq.close(F::True).lower(store);
                lemmas.push(store.implies(atom, body));
            }
        }
        lemmas
    }

    fn expand_ok(
        &self,
        store: &mut TermStore,
        atom: TermId,
        owner: &str,
        minfo: &MethodInfo,
        mode_idx: usize,
        args: &[TermId],
    ) -> Vec<TermId> {
        let Some(clause) = self.gen.matches_clause(owner, minfo) else {
            return Vec::new();
        };
        let Some(mode) = minfo.modes.get(mode_idx) else {
            return Vec::new();
        };
        let knowns = self.gen.mode_knowns(minfo, mode, mode_idx);
        let unknowns: Vec<String> = {
            let mut u = mode.unknown_params.clone();
            if mode.result_unknown {
                u.push("result".into());
            }
            u
        };
        let extracted = extract::extract(&self.gen.table, &clause, &knowns, &unknowns);
        if matches!(extracted.formula, jmatch_syntax::ast::Formula::Bool(false)) {
            // ¬ok ⇒ ¬false is trivial.
            return Vec::new();
        }

        // Build the environment mapping the knowns to the predicate arguments.
        let mut env = Env::new();
        env.self_class = Some(owner.to_owned());
        let mut seq = Seq::new();
        for (name, term) in knowns.iter().zip(args.iter()) {
            if name == "result" {
                env.result_term = Some(*term);
                env.result_type = Some(minfo.result_type());
                if minfo.constructs_owner() {
                    env.this_term = Some(*term);
                }
            } else {
                let ty = minfo
                    .decl
                    .params
                    .iter()
                    .find(|p| &p.name == name)
                    .map(|p| p.ty.clone())
                    .unwrap_or(Type::Object);
                env.bind(name.clone(), *term, ty);
            }
        }
        // Remaining (solvable) unknowns become fresh variables.
        for u in &extracted.remaining_unknowns {
            if env.lookup(u).is_none() && u != "result" {
                let ty = extract::declared_type_of(&clause, u)
                    .or_else(|| {
                        minfo
                            .decl
                            .params
                            .iter()
                            .find(|p| &p.name == u)
                            .map(|p| p.ty.clone())
                    })
                    .unwrap_or(Type::Object);
                self.gen.declare_var(store, &mut env, &mut seq, u, &ty);
                env.mark_unknown(u);
            }
        }
        self.gen
            .declare_formula_vars(store, &mut env, &mut seq, &extracted.formula);
        if self
            .gen
            .vf(store, &mut env, &mut seq, &extracted.formula)
            .is_err()
        {
            return Vec::new();
        }
        let extract_f = seq.close(F::True);
        // ¬ok ⇒ ¬ExtractM
        let negated = extract_f.negate().lower(store);
        let not_atom = store.not(atom);
        vec![store.implies(not_atom, negated)]
    }

    fn expand_ens(
        &self,
        store: &mut TermStore,
        atom: TermId,
        owner: &str,
        minfo: &MethodInfo,
        args: &[TermId],
    ) -> Vec<TermId> {
        let Some(clause) = self.gen.ensures_clause(owner, minfo) else {
            return Vec::new();
        };
        let mut env = Env::new();
        env.self_class = Some(owner.to_owned());
        if let Some(first) = args.first() {
            env.result_term = Some(*first);
            env.result_type = Some(minfo.result_type());
            if minfo.constructs_owner() {
                env.this_term = Some(*first);
            }
        }
        for (i, p) in minfo.decl.params.iter().enumerate() {
            if let Some(t) = args.get(i + 1) {
                env.bind(p.name.clone(), *t, p.ty.clone());
            }
        }
        let mut seq = Seq::new();
        self.gen
            .declare_formula_vars(store, &mut env, &mut seq, &clause);
        if self.gen.vf(store, &mut env, &mut seq, &clause).is_err() {
            return Vec::new();
        }
        let body = seq.close(F::True).lower(store);
        vec![store.implies(atom, body)]
    }

    /// Splits `ok$Owner$name$mN` into its parts.
    fn parse_ok_name(name: &str) -> Option<(String, String, usize)> {
        let rest = name.strip_prefix("ok$")?;
        let (owner_and_name, mode_part) = rest.rsplit_once('$')?;
        let mode_idx: usize = mode_part.strip_prefix('m')?.parse().ok()?;
        let (owner, mname) = owner_and_name.split_once('$')?;
        Some((owner.to_owned(), mname.to_owned(), mode_idx))
    }

    fn parse_ens_name(name: &str) -> Option<(String, String)> {
        let rest = name.strip_prefix("ens$")?;
        let mut on = rest.splitn(2, '$');
        let owner = on.next()?.to_owned();
        let mname = on.next()?.to_owned();
        Some((owner, mname))
    }

    fn lookup(&self, owner: &str, name: &str) -> Option<MethodInfo> {
        if owner == "<toplevel>" {
            return self.gen.table.lookup_free_method(name).cloned();
        }
        self.gen.table.lookup_method(owner, name).cloned()
    }
}

impl LazyExpander for JMatchExpander {
    fn can_expand(&self, store: &TermStore, atom: TermId, value: bool) -> bool {
        let Some((name, _)) = self.atom_parts(store, atom) else {
            return false;
        };
        if let Some(ty) = name.strip_prefix("is$") {
            return value && self.gen.table.type_info(ty).is_some();
        }
        if let Some((owner, mname, _)) = Self::parse_ok_name(&name) {
            if value {
                return false;
            }
            return self
                .lookup(&owner, &mname)
                .map(|m| self.gen.matches_clause(&owner, &m).is_some())
                .unwrap_or(false);
        }
        if let Some((owner, mname)) = Self::parse_ens_name(&name) {
            if !value {
                return false;
            }
            return self
                .lookup(&owner, &mname)
                .map(|m| self.gen.ensures_clause(&owner, &m).is_some())
                .unwrap_or(false);
        }
        false
    }

    fn expand(
        &mut self,
        store: &mut TermStore,
        atom: TermId,
        value: bool,
        _depth: u32,
    ) -> Expansion {
        let Some((name, args)) = self.atom_parts(store, atom) else {
            return Expansion::NotApplicable;
        };
        if let Some(ty) = name.strip_prefix("is$") {
            if !value || args.len() != 1 {
                return Expansion::Lemmas(Vec::new());
            }
            let ty = ty.to_owned();
            return Expansion::Lemmas(self.expand_is(store, atom, &ty, args[0]));
        }
        if let Some((owner, mname, mode_idx)) = Self::parse_ok_name(&name) {
            if value {
                return Expansion::Lemmas(Vec::new());
            }
            let Some(minfo) = self.lookup(&owner, &mname) else {
                return Expansion::Lemmas(Vec::new());
            };
            return Expansion::Lemmas(self.expand_ok(store, atom, &owner, &minfo, mode_idx, &args));
        }
        if let Some((owner, mname)) = Self::parse_ens_name(&name) {
            if !value {
                return Expansion::Lemmas(Vec::new());
            }
            let Some(minfo) = self.lookup(&owner, &mname) else {
                return Expansion::Lemmas(Vec::new());
            };
            return Expansion::Lemmas(self.expand_ens(store, atom, &owner, &minfo, &args));
        }
        Expansion::NotApplicable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::table::ClassTable;
    use jmatch_smt::{SatResult, Solver};
    use jmatch_syntax::parse_program;

    fn gen_for(src: &str) -> VcGen {
        let program = parse_program(src).unwrap();
        let mut d = Diagnostics::new();
        let table = ClassTable::build(&program, &mut d);
        assert!(d.errors.is_empty(), "{:?}", d.errors);
        VcGen::new(table)
    }

    const LIST_SRC: &str = r#"
        interface List {
            invariant(this = nil() | cons(_, _));
            constructor nil() matches(notall(result));
            constructor cons(Object hd, List tl)
                matches(notall(result)) returns(hd, tl);
            constructor snoc(List hd, Object tl)
                matches ensures(cons(_, _)) returns(hd, tl);
        }
    "#;

    #[test]
    fn parse_predicate_names() {
        assert_eq!(
            JMatchExpander::parse_ok_name("ok$Nat$succ$m1"),
            Some(("Nat".into(), "succ".into(), 1))
        );
        assert_eq!(
            JMatchExpander::parse_ens_name("ens$List$snoc"),
            Some(("List".into(), "snoc".into()))
        );
        assert_eq!(JMatchExpander::parse_ok_name("is$Nat"), None);
    }

    #[test]
    fn invariant_expansion_drives_exhaustiveness() {
        // inv(l) && not nil-matches(l) && not cons-matches(l) is unsat once
        // the List invariant is expanded.
        let gen = gen_for(LIST_SRC);
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let obj = Sort::Obj(store.symbol(crate::vc::OBJECT_SORT_NAME));
        let l = store.var("l", obj);
        let is_list = store.app("is$List", vec![l], Sort::Bool);
        let ok_nil = store.app("ok$List$nil$m1", vec![l], Sort::Bool);
        let ok_cons = store.app("ok$List$cons$m1", vec![l], Sort::Bool);
        solver.assert_formula(&store, is_list);
        let n1 = store.not(ok_nil);
        let n2 = store.not(ok_cons);
        solver.assert_formula(&store, n1);
        solver.assert_formula(&store, n2);
        let mut expander = JMatchExpander::new(gen);
        let result = solver.check_with_expander(&mut store, &mut expander);
        assert_eq!(result, SatResult::Unsat);
    }

    #[test]
    fn snoc_failure_implies_cons_failure() {
        // Figure 12: not snoc-matches(l) expands (through snoc's matches
        // clause `cons(_,_)`) to not cons-matches(l); asserting cons-matches
        // then yields a contradiction.
        let gen = gen_for(LIST_SRC);
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let obj = Sort::Obj(store.symbol(crate::vc::OBJECT_SORT_NAME));
        let l = store.var("l", obj);
        let ok_snoc = store.app("ok$List$snoc$m1", vec![l], Sort::Bool);
        let ok_cons = store.app("ok$List$cons$m1", vec![l], Sort::Bool);
        let not_snoc = store.not(ok_snoc);
        solver.assert_formula(&store, not_snoc);
        solver.assert_formula(&store, ok_cons);
        let mut expander = JMatchExpander::new(gen);
        let result = solver.check_with_expander(&mut store, &mut expander);
        assert_eq!(result, SatResult::Unsat);
    }

    #[test]
    fn unrelated_assignment_stays_sat() {
        let gen = gen_for(LIST_SRC);
        let mut store = TermStore::new();
        let mut solver = Solver::new();
        let obj = Sort::Obj(store.symbol(crate::vc::OBJECT_SORT_NAME));
        let l = store.var("l", obj);
        let is_list = store.app("is$List", vec![l], Sort::Bool);
        let ok_cons = store.app("ok$List$cons$m1", vec![l], Sort::Bool);
        solver.assert_formula(&store, is_list);
        solver.assert_formula(&store, ok_cons);
        let mut expander = JMatchExpander::new(gen);
        let result = solver.check_with_expander(&mut store, &mut expander);
        // The recursive List invariant cannot be expanded to a fixed point, so
        // the solver may answer Unknown here; it must not claim Unsat.
        assert!(!result.is_unsat(), "{result:?}");
    }
}
