//! Extraction of matching preconditions from `matches` clauses (§4.3, §4.4).
//!
//! A method's `matches` clause describes, in one formula, when matching is
//! guaranteed to succeed for the *whole relation* the method implements. For
//! each mode the compiler derives a *matching precondition* over that mode's
//! knowns — `ExtractM M` in the paper — by:
//!
//! 1. converting the clause to negation normal form,
//! 2. reordering atoms inside conjunctions so that as many unknowns as
//!    possible are solved left to right,
//! 3. dropping atoms that still mention unsolvable unknowns (they become
//!    `true`), and
//! 4. treating the opaque `notall(x̄)` predicate as `true` when any listed
//!    variable is unknown and as `false` when all are known (§4.4).
//!
//! The remaining unknowns are exactly the solvable ones; they stay in the
//! formula and are bound (existentially) by the verification-condition
//! translation, as in the paper's definition
//! `ExtractM M ≜ VF⟦M̂⟧ ({û} ∪ vars(M̂)) true`.

use crate::table::ClassTable;
use jmatch_syntax::ast::{CmpOp, Expr, Formula, Type};
use std::collections::HashSet;

/// The result of extracting a matching precondition.
#[derive(Debug, Clone, PartialEq)]
pub struct Extracted {
    /// The reordered, atom-dropped formula (over knowns and the remaining
    /// solvable unknowns).
    pub formula: Formula,
    /// Unknowns that remain in the formula (each is solvable left-to-right).
    pub remaining_unknowns: Vec<String>,
}

impl Extracted {
    /// An extraction that is identically `true` (e.g. an absent clause in a
    /// mode where nothing constrains the knowns).
    pub fn trivially_true() -> Self {
        Extracted {
            formula: Formula::Bool(true),
            remaining_unknowns: Vec::new(),
        }
    }

    /// An extraction that is identically `false` (the default `matches(false)`
    /// of a method without a clause).
    pub fn trivially_false() -> Self {
        Extracted {
            formula: Formula::Bool(false),
            remaining_unknowns: Vec::new(),
        }
    }
}

/// Extracts the matching precondition of `clause` for a mode whose knowns are
/// `knowns` (parameter names, possibly `"result"` and `"this"`).
///
/// `unknowns` are the mode's unknown parameters; variables declared inside the
/// clause are additional unknowns discovered here.
pub fn extract(
    table: &ClassTable,
    clause: &Formula,
    knowns: &[String],
    unknowns: &[String],
) -> Extracted {
    let nnf = to_nnf(clause.clone(), false);
    let mut all_unknowns: HashSet<String> = unknowns.iter().cloned().collect();
    for (_, name) in clause.declared_vars() {
        if name != "_" {
            all_unknowns.insert(name);
        }
    }
    // `knowns` win over unknowns if a name is somehow listed in both.
    for k in knowns {
        all_unknowns.remove(k);
    }
    let mut solved: HashSet<String> = knowns.iter().cloned().collect();
    let formula = extract_formula(table, &nnf, &all_unknowns, &mut solved);
    let remaining: Vec<String> = all_unknowns
        .iter()
        .filter(|u| solved.contains(*u))
        .cloned()
        .collect();
    Extracted {
        formula,
        remaining_unknowns: remaining,
    }
}

/// Negation normal form: negations pushed to the atoms.
pub fn to_nnf(f: Formula, negate: bool) -> Formula {
    match f {
        Formula::Bool(b) => Formula::Bool(b ^ negate),
        Formula::Not(inner) => to_nnf(*inner, !negate),
        Formula::And(a, b) => {
            let a = to_nnf(*a, negate);
            let b = to_nnf(*b, negate);
            if negate {
                Formula::or(a, b)
            } else {
                Formula::and(a, b)
            }
        }
        Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
            let a = to_nnf(*a, negate);
            let b = to_nnf(*b, negate);
            if negate {
                Formula::and(a, b)
            } else {
                Formula::or(a, b)
            }
        }
        Formula::Cmp(op, l, r) => {
            if negate {
                Formula::Cmp(negate_cmp(op), l, r)
            } else {
                Formula::Cmp(op, l, r)
            }
        }
        Formula::Atom(e) => {
            if negate {
                Formula::not(Formula::Atom(e))
            } else {
                Formula::Atom(e)
            }
        }
    }
}

fn negate_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Gt => CmpOp::Le,
    }
}

/// Extracts one (sub)formula. Conjunctions are flattened, reordered and
/// re-assembled; disjunctions are extracted arm by arm with independent
/// copies of the solved set.
fn extract_formula(
    table: &ClassTable,
    f: &Formula,
    unknowns: &HashSet<String>,
    solved: &mut HashSet<String>,
) -> Formula {
    match f {
        Formula::And(..) => {
            let mut conjuncts = Vec::new();
            flatten_and(f, &mut conjuncts);
            let ordered = reorder_and_drop(table, &conjuncts, unknowns, solved);
            ordered
                .into_iter()
                .reduce(Formula::and)
                .unwrap_or(Formula::Bool(true))
        }
        Formula::Or(a, b) => {
            let mut sa = solved.clone();
            let mut sb = solved.clone();
            let ea = extract_formula(table, a, unknowns, &mut sa);
            let eb = extract_formula(table, b, unknowns, &mut sb);
            // A variable counts as solved afterwards only if both arms solve it.
            let both: HashSet<String> = sa.intersection(&sb).cloned().collect();
            *solved = both;
            Formula::or(ea, eb)
        }
        atom => {
            let ordered = reorder_and_drop(table, std::slice::from_ref(atom), unknowns, solved);
            ordered
                .into_iter()
                .reduce(Formula::and)
                .unwrap_or(Formula::Bool(true))
        }
    }
}

fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// The reorder-and-drop loop over the atoms of one conjunction.
fn reorder_and_drop(
    table: &ClassTable,
    atoms: &[Formula],
    unknowns: &HashSet<String>,
    solved: &mut HashSet<String>,
) -> Vec<Formula> {
    let mut pending: Vec<Formula> = atoms.to_vec();
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        let mut next_pending = Vec::new();
        for atom in pending.drain(..) {
            match atom_status(table, &atom, unknowns, solved) {
                AtomStatus::Ready { solves } => {
                    for s in solves {
                        solved.insert(s);
                    }
                    out.push(normalize_notall(&atom, unknowns, solved));
                    progressed = true;
                }
                AtomStatus::Deferred => next_pending.push(atom),
            }
        }
        pending = next_pending;
        if pending.is_empty() {
            break;
        }
        if !progressed {
            // Everything left mentions unsolvable unknowns: drop (→ true).
            break;
        }
    }
    if out.is_empty() {
        out.push(Formula::Bool(true));
    }
    out
}

enum AtomStatus {
    /// The atom can be emitted now; it newly solves the listed unknowns.
    Ready { solves: Vec<String> },
    /// The atom still mentions unsolved unknowns it cannot solve itself.
    Deferred,
}

fn atom_status(
    table: &ClassTable,
    atom: &Formula,
    unknowns: &HashSet<String>,
    solved: &HashSet<String>,
) -> AtomStatus {
    let unsolved = |name: &str| unknowns.contains(name) && !solved.contains(name);
    match atom {
        Formula::Bool(_) => AtomStatus::Ready { solves: vec![] },
        Formula::Atom(e) if is_notall(e) => {
            // notall is handled by normalize_notall; it is always "ready",
            // because it never needs to solve anything.
            let _ = e;
            AtomStatus::Ready { solves: vec![] }
        }
        Formula::Cmp(CmpOp::Eq, l, r) => {
            let lu = unsolved_vars(l, &unsolved);
            let ru = unsolved_vars(r, &unsolved);
            match (lu.is_empty(), ru.is_empty()) {
                (true, true) => AtomStatus::Ready { solves: vec![] },
                (true, false) => {
                    if solvable_pattern(table, r, &ru) {
                        AtomStatus::Ready { solves: ru }
                    } else {
                        AtomStatus::Deferred
                    }
                }
                (false, true) => {
                    if solvable_pattern(table, l, &lu) {
                        AtomStatus::Ready { solves: lu }
                    } else {
                        AtomStatus::Deferred
                    }
                }
                (false, false) => AtomStatus::Deferred,
            }
        }
        Formula::Cmp(_, l, r) => {
            let mut u = unsolved_vars(l, &unsolved);
            u.extend(unsolved_vars(r, &unsolved));
            if u.is_empty() {
                AtomStatus::Ready { solves: vec![] }
            } else {
                AtomStatus::Deferred
            }
        }
        Formula::Atom(e) => {
            let u = unsolved_vars(e, &unsolved);
            if u.is_empty() {
                return AtomStatus::Ready { solves: vec![] };
            }
            // A predicate-position call can solve unknown arguments if a mode
            // with those outputs exists.
            if let Expr::Call { name, .. } = e {
                if call_can_solve(table, name, e, &u) {
                    return AtomStatus::Ready { solves: u };
                }
            }
            AtomStatus::Deferred
        }
        Formula::Not(inner) => {
            let u = formula_unsolved(inner, &unsolved);
            if u.is_empty() {
                AtomStatus::Ready { solves: vec![] }
            } else {
                AtomStatus::Deferred
            }
        }
        // Nested non-atom structure inside a conjunction (a disjunction):
        // recurse conservatively — ready iff it has no unsolved unknowns.
        other => {
            let u = formula_unsolved(other, &unsolved);
            if u.is_empty() {
                AtomStatus::Ready { solves: vec![] }
            } else {
                AtomStatus::Deferred
            }
        }
    }
}

fn is_notall(e: &Expr) -> bool {
    matches!(e, Expr::Call { receiver: None, name, .. } if name == "notall")
}

/// Applies the §4.4 interpretation of `notall`: dropped (`true`) when any
/// argument is unknown/unsolved, `false` when all are known.
fn normalize_notall(
    atom: &Formula,
    unknowns: &HashSet<String>,
    solved: &HashSet<String>,
) -> Formula {
    if let Formula::Atom(Expr::Call {
        receiver: None,
        name,
        args,
    }) = atom
    {
        if name == "notall" {
            let any_unknown = args.iter().any(|a| {
                collect_vars(a)
                    .iter()
                    .any(|v| unknowns.contains(v) && !solved.contains(v))
            });
            return if any_unknown {
                Formula::Bool(true)
            } else {
                Formula::Bool(false)
            };
        }
    }
    atom.clone()
}

/// Whether a pattern with the given unsolved unknowns can be solved when
/// matched against a known value.
fn solvable_pattern(table: &ClassTable, pattern: &Expr, unsolved: &[String]) -> bool {
    match pattern {
        Expr::Var(_) | Expr::Decl(..) | Expr::Wildcard | Expr::Result | Expr::This => true,
        Expr::Binary(..) | Expr::Neg(_) => {
            // Linear arithmetic is invertible when exactly one unknown occurs.
            unsolved.len() == 1
        }
        Expr::Call { name, .. } => call_can_solve(table, name, pattern, unsolved),
        Expr::Tuple(elems) => elems.iter().all(|e| {
            let u = collect_vars(e)
                .into_iter()
                .filter(|v| unsolved.contains(v))
                .collect::<Vec<_>>();
            u.is_empty() || solvable_pattern(table, e, &u)
        }),
        Expr::As(a, b) | Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
            solvable_pattern(table, a, unsolved) || solvable_pattern(table, b, unsolved)
        }
        Expr::Where(p, _) => solvable_pattern(table, p, unsolved),
        _ => false,
    }
}

/// Whether some declared mode of `name` (looked up on any type, since the
/// static receiver type is not tracked during extraction) can output the
/// unsolved variables appearing in the call's arguments.
fn call_can_solve(table: &ClassTable, name: &str, call: &Expr, unsolved: &[String]) -> bool {
    let Expr::Call { args, .. } = call else {
        return false;
    };
    // Which argument positions mention unsolved unknowns?
    let out_positions: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| collect_vars(a).iter().any(|v| unsolved.contains(v)))
        .map(|(i, _)| i)
        .collect();
    // Search every type for a method of this name with a compatible mode.
    for ty in table.types() {
        if let Some(m) = ty.methods.iter().find(|m| m.decl.name == name) {
            for mode in &m.modes {
                let outputs_ok = out_positions.iter().all(|&i| {
                    m.decl
                        .params
                        .get(i)
                        .map(|p| mode.unknown_params.contains(&p.name))
                        .unwrap_or(false)
                });
                if outputs_ok {
                    return true;
                }
            }
        }
    }
    // Free-standing methods too.
    if let Some(m) = table.lookup_free_method(name) {
        for mode in &m.modes {
            let outputs_ok = out_positions.iter().all(|&i| {
                m.decl
                    .params
                    .get(i)
                    .map(|p| mode.unknown_params.contains(&p.name))
                    .unwrap_or(false)
            });
            if outputs_ok {
                return true;
            }
        }
    }
    false
}

fn unsolved_vars(e: &Expr, unsolved: &impl Fn(&str) -> bool) -> Vec<String> {
    collect_vars(e)
        .into_iter()
        .filter(|v| unsolved(v))
        .collect()
}

fn formula_unsolved(f: &Formula, unsolved: &impl Fn(&str) -> bool) -> Vec<String> {
    let mut out = Vec::new();
    collect_formula_vars(f, &mut out);
    out.into_iter().filter(|v| unsolved(v)).collect()
}

/// All variable names mentioned by an expression (references and
/// declarations), excluding wildcards.
pub fn collect_vars(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    collect_expr_vars(e, &mut out);
    out
}

fn collect_expr_vars(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Var(name) => out.push(name.clone()),
        Expr::Decl(_, name) => {
            if name != "_" {
                out.push(name.clone());
            }
        }
        Expr::Field(b, _) => collect_expr_vars(b, out),
        Expr::Call { receiver, args, .. } => {
            if let Some(r) = receiver {
                collect_expr_vars(r, out);
            }
            for a in args {
                collect_expr_vars(a, out);
            }
        }
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            collect_expr_vars(a, out);
            collect_expr_vars(b, out);
        }
        Expr::NewArray(_, a) | Expr::Neg(a) => collect_expr_vars(a, out),
        Expr::Tuple(xs) => {
            for x in xs {
                collect_expr_vars(x, out);
            }
        }
        Expr::As(a, b) | Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
            collect_expr_vars(a, out);
            collect_expr_vars(b, out);
        }
        Expr::Where(p, f) => {
            collect_expr_vars(p, out);
            collect_formula_vars(f, out);
        }
        // `this` and `result` participate in mode analysis like ordinary
        // variables, under their reserved names.
        Expr::This => out.push("this".to_owned()),
        Expr::Result => out.push("result".to_owned()),
        Expr::IntLit(_) | Expr::BoolLit(_) | Expr::StrLit(_) | Expr::Null | Expr::Wildcard => {}
    }
}

fn collect_formula_vars(f: &Formula, out: &mut Vec<String>) {
    match f {
        Formula::Bool(_) => {}
        Formula::Cmp(_, a, b) => {
            collect_expr_vars(a, out);
            collect_expr_vars(b, out);
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
            collect_formula_vars(a, out);
            collect_formula_vars(b, out);
        }
        Formula::Not(a) => collect_formula_vars(a, out),
        Formula::Atom(e) => collect_expr_vars(e, out),
    }
}

/// Extracts the matching precondition for a declared method and mode, using
/// the defaults of the paper: a missing `matches` clause is `false`, except
/// that every mode of a method *without any* specification clauses defaults
/// to an uninformative `true`… no — the paper's default is `matches(false)`;
/// callers that want a different policy handle it themselves.
pub fn extract_for_mode(
    table: &ClassTable,
    clause: Option<&Formula>,
    knowns: &[String],
    unknowns: &[String],
) -> Extracted {
    match clause {
        None => Extracted::trivially_false(),
        Some(c) => extract(table, c, knowns, unknowns),
    }
}

/// A type hint for the remaining unknowns of an extraction, when the clause
/// declared them explicitly.
pub fn declared_type_of(clause: &Formula, var: &str) -> Option<Type> {
    clause
        .declared_vars()
        .into_iter()
        .find(|(_, n)| n == var)
        .map(|(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use jmatch_syntax::{parse_formula, parse_program};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        let program = parse_program("").unwrap();
        let mut d = Diagnostics::new();
        ClassTable::build(&program, &mut d)
    }

    fn fmt(f: &Formula) -> String {
        format!("{f:?}")
    }

    #[test]
    fn znat_forward_mode_keeps_bound() {
        // matches(n >= 0), forward mode: n known.
        let table = empty_table();
        let clause = parse_formula("n >= 0").unwrap();
        let e = extract(&table, &clause, &["n".into()], &["result".into()]);
        assert_eq!(e.formula, clause);
        assert!(e.remaining_unknowns.is_empty());
    }

    #[test]
    fn znat_backward_mode_drops_bound() {
        // matches(n >= 0), backward mode: result known, n unknown → the atom
        // mentions an unsolvable unknown and is dropped.
        let table = empty_table();
        let clause = parse_formula("n >= 0").unwrap();
        let e = extract(&table, &clause, &["result".into()], &["n".into()]);
        assert_eq!(e.formula, Formula::Bool(true));
    }

    #[test]
    fn paper_example_solvable_unknown_is_kept() {
        // x > 0 && y >= 0 && x+1 = y  with x unknown, y known: reorders so
        // x+1 = y solves x, then keeps everything (§4.3 example).
        let table = empty_table();
        let clause = parse_formula("x > 0 && y >= 0 && x + 1 = y").unwrap();
        let e = extract(&table, &clause, &["y".into()], &["x".into()]);
        // All three atoms survive.
        let text = fmt(&e.formula);
        assert!(text.contains("Gt"), "x > 0 kept: {text}");
        assert!(text.contains("Ge"), "y >= 0 kept: {text}");
        assert!(e.remaining_unknowns.contains(&"x".to_string()));
        // And the solving equation comes before the use of x.
        let mut flat = Vec::new();
        flatten_and(&e.formula, &mut flat);
        let pos_solve = flat
            .iter()
            .position(|f| matches!(f, Formula::Cmp(CmpOp::Eq, ..)))
            .unwrap();
        let pos_use = flat
            .iter()
            .position(|f| matches!(f, Formula::Cmp(CmpOp::Gt, ..)))
            .unwrap();
        assert!(pos_solve < pos_use, "solve before use: {flat:?}");
    }

    #[test]
    fn paper_example_unsolvable_atoms_dropped() {
        // y >= 0 && x < y && x > 0 with x unknown: the two atoms mentioning x
        // cannot solve it and are dropped, leaving y >= 0 (§4.3).
        let table = empty_table();
        let clause = parse_formula("y >= 0 && x < y && x > 0").unwrap();
        let e = extract(&table, &clause, &["y".into()], &["x".into()]);
        let mut flat = Vec::new();
        flatten_and(&e.formula, &mut flat);
        assert_eq!(flat.len(), 1);
        assert!(matches!(flat[0], Formula::Cmp(CmpOp::Ge, ..)));
    }

    #[test]
    fn notall_is_true_with_unknowns_false_without() {
        // matches(notall(result)): construction mode (result unknown) → true;
        // predicate/pattern mode (result known) → false.
        let table = empty_table();
        let clause = parse_formula("notall(result)").unwrap();
        let construction = extract(&table, &clause, &[], &["result".into()]);
        assert_eq!(construction.formula, Formula::Bool(true));
        let predicate = extract(&table, &clause, &["result".into()], &[]);
        assert_eq!(predicate.formula, Formula::Bool(false));
    }

    #[test]
    fn notall_refinement_of_znat_predicate_mode() {
        // matches(n >= 0 && notall(result, n)): in the forward mode (n known,
        // result unknown) the notall is dropped, keeping n >= 0; in the
        // predicate mode (both known) it becomes false.
        let table = empty_table();
        let clause = parse_formula("n >= 0 && notall(result, n)").unwrap();
        let forward = extract(&table, &clause, &["n".into()], &["result".into()]);
        let mut flat = Vec::new();
        flatten_and(&forward.formula, &mut flat);
        assert!(flat.contains(&parse_formula("n >= 0").unwrap()));
        assert!(flat.contains(&Formula::Bool(true)));
        let predicate = extract(&table, &clause, &["n".into(), "result".into()], &[]);
        let mut flat2 = Vec::new();
        flatten_and(&predicate.formula, &mut flat2);
        assert!(flat2.contains(&Formula::Bool(false)));
    }

    #[test]
    fn call_with_mode_solves_unknowns() {
        // bar's matches clause references foo (§5.2 example):
        //   y > 0 && result = foo(y) && result < 4   with y known.
        let program = parse_program(
            "class M {
                int foo(int x) matches(x > 2) ensures(result >= x) ( result = x + 1 )
             }",
        )
        .unwrap();
        let mut d = Diagnostics::new();
        let table = ClassTable::build(&program, &mut d);
        let clause = parse_formula("y > 0 && result = foo(y) && result < 4").unwrap();
        let e = extract(&table, &clause, &["y".into()], &["result".into()]);
        let mut flat = Vec::new();
        flatten_and(&e.formula, &mut flat);
        // All three atoms are kept because result is solved by the call.
        assert_eq!(flat.len(), 3);
        assert!(e.remaining_unknowns.contains(&"result".to_string()));
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let f = parse_formula("!(x >= 0 && y.zero())").unwrap();
        let nnf = to_nnf(f, false);
        match nnf {
            Formula::Or(a, b) => {
                assert!(matches!(*a, Formula::Cmp(CmpOp::Lt, ..)));
                assert!(matches!(*b, Formula::Not(_)));
            }
            other => panic!("unexpected nnf: {other:?}"),
        }
    }

    #[test]
    fn disjunctive_clause_extracts_each_arm() {
        let table = empty_table();
        let clause = parse_formula("x = 0 || x >= 5").unwrap();
        let e = extract(&table, &clause, &["x".into()], &[]);
        assert!(matches!(e.formula, Formula::Or(..)));
    }

    #[test]
    fn missing_clause_defaults_to_false() {
        let table = empty_table();
        let e = extract_for_mode(&table, None, &[], &[]);
        assert_eq!(e.formula, Formula::Bool(false));
    }

    #[test]
    fn declared_type_lookup() {
        let clause = parse_formula("this = succ(Nat y) && y = x").unwrap();
        assert_eq!(
            declared_type_of(&clause, "y"),
            Some(Type::Named("Nat".into()))
        );
        assert_eq!(declared_type_of(&clause, "z"), None);
    }
}
