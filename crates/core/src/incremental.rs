//! Red/green dependency tracking for incremental recompilation.
//!
//! This module is the fingerprint layer behind the runtime's `Workspace`
//! editing API: it decides, after an edit, *which* methods must be
//! re-verified (and, via [`structure_hash`], whether lowering can be reused
//! at all) — everything else is green and keeps its cached results.
//!
//! ## The red/green invariants
//!
//! Every method (a *unit*: an owned method in declaration order, then the
//! free-standing methods) gets a [`UnitFp`] built from three ingredients,
//! none of which include source positions — an edit that only shifts line
//! numbers dirties nothing:
//!
//! * **signature fingerprint** ([`sig_fp`]): visibility, staticness,
//!   abstractness, kind, return type, name, parameters, declared modes, and
//!   the `matches`/`ensures` clauses. The specification clauses are part of
//!   the *signature* because they are what other methods' verification
//!   conditions unroll (the lazy expander only ever expands specs — `is$T`
//!   invariants, `matches`, `ensures` — never bodies).
//! * **body fingerprint** ([`body_fp`]): the body alone. Because specs, not
//!   bodies, are what cross-method expansion sees, a body-only edit has no
//!   verification dependents: only the edited method re-verifies.
//! * **environment key** (`UnitFp::env`): a hash of the global hierarchy
//!   (the `is$T` disjointness axioms quantify over *all* concrete classes,
//!   so any subtype edge is global), the unit's own signature, and the
//!   *spec closure* — the fixpoint of every signature and type shape
//!   reachable from the unit through names it mentions, following
//!   `matches`/`ensures` clauses, invariants, field types, and supertypes
//!   (but never bodies).
//!
//! The **verify key** (`UnitFp::verify`) is `H(env, body)`. A unit whose
//! verify key is unchanged across an edit is *green*: its cached
//! [`Diagnostics`] are returned without a single solver query. A unit whose
//! verify key changed but whose environment key survived keeps its
//! incremental solver [`Session`] — the persistent term store keeps every
//! canonicalized VC-cache key valid, so re-verification of a body-only edit
//! starts from all previously learned clauses and cached verdicts.
//!
//! ## Parallel verification
//!
//! Distinct methods own distinct sessions, so dirty units shard across
//! workers with [`jmatch_smt::pool::map_ordered`]: results come back in
//! input (= declaration) order, making the assembled diagnostics
//! deterministic and identical at any worker count.

use crate::diag::Diagnostics;
use crate::table::{ClassTable, MethodInfo, TypeInfo};
use crate::verify::{Session, SessionStats, Verifier, VerifyOptions};
use jmatch_syntax::ast::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Hashes any `Hash` value to a 64-bit fingerprint.
fn fp<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Identifies one verification unit across generations: the owner type
/// (`<toplevel>` for free methods), the method name, and the occurrence
/// index among same-named methods of the same owner.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// Owner type name (`<toplevel>` for free-standing methods).
    pub owner: String,
    /// Method name.
    pub name: String,
    /// Occurrence index among units with the same `(owner, name)`.
    pub occ: u32,
}

impl UnitKey {
    /// `Owner.name` — the diagnostics context string of the unit.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.owner, self.name)
    }
}

/// The red/green fingerprints of one verification unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFp {
    /// Cross-generation identity of the unit.
    pub key: UnitKey,
    /// Signature fingerprint (includes `matches`/`ensures` — see module docs).
    pub sig: u64,
    /// Body fingerprint.
    pub body: u64,
    /// Environment key: hierarchy + own signature + spec closure.
    pub env: u64,
    /// Verify key: `H(env, body)`. Unchanged ⇒ the unit is green.
    pub verify: u64,
}

/// All fingerprints of one program generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprints {
    /// Hash of every type's name, flags and supertype edges, in declaration
    /// order. Any change invalidates every environment key (the `is$T`
    /// disjointness axioms are global).
    pub hierarchy: u64,
    /// Hash of everything lowering depends on: type shapes (fields included)
    /// plus every unit's `(owner, name, kind, sig, has_body)` in unit order.
    /// Plans, slot numbering and dispatch tables can only be reused across
    /// an edit when this is unchanged.
    pub structure: u64,
    /// Per-unit fingerprints, in unit order (types in declaration order,
    /// their methods in declaration order, then free methods).
    pub units: Vec<UnitFp>,
}

/// All verification units of a table, in the canonical unit order: types in
/// declaration order, each type's methods in declaration order, then the
/// free-standing methods. This is exactly the order
/// [`Verifier::verify_program_with_stats`] checks them in.
pub fn units(table: &ClassTable) -> Vec<(Option<&TypeInfo>, &MethodInfo)> {
    let mut out = Vec::new();
    for ty in table.types() {
        for m in &ty.methods {
            out.push((Some(ty), m));
        }
    }
    for m in table.free_methods() {
        out.push((None, m));
    }
    out
}

/// The signature fingerprint of a method: everything another method's
/// verification can observe about it. Positions are excluded.
pub fn sig_fp(minfo: &MethodInfo) -> u64 {
    let d = &minfo.decl;
    fp(&(
        &d.visibility,
        d.is_static,
        d.is_abstract,
        d.kind,
        &d.return_type,
        &d.name,
        &d.params,
        &d.modes,
        &d.matches,
        &d.ensures,
    ))
}

/// The body fingerprint of a method. Positions are excluded.
pub fn body_fp(minfo: &MethodInfo) -> u64 {
    fp(&minfo.decl.body)
}

/// The shape fingerprint of one type: name, flags, supertypes, fields
/// (including initializers) and invariants — everything verification of
/// *other* code can observe about the type. Positions are excluded.
pub fn type_fp(info: &TypeInfo) -> u64 {
    let fields: Vec<_> = info
        .fields
        .iter()
        .map(|f| (&f.visibility, f.is_static, &f.ty, &f.name, &f.init))
        .collect();
    let invariants: Vec<_> = info
        .invariants
        .iter()
        .map(|i| (&i.visibility, &i.formula))
        .collect();
    fp(&(
        &info.name,
        info.is_interface,
        info.is_abstract,
        &info.supertypes,
        fields,
        invariants,
    ))
}

/// Hash of the global type hierarchy: every type's name, interface/abstract
/// flags and supertype edges, in declaration order. Part of every unit's
/// environment key because the expander's `is$T` axioms assert disjointness
/// against **all** unrelated concrete classes.
pub fn hierarchy_hash(table: &ClassTable) -> u64 {
    let mut h = DefaultHasher::new();
    for ty in table.types() {
        (&ty.name, ty.is_interface, ty.is_abstract, &ty.supertypes).hash(&mut h);
    }
    h.finish()
}

/// Hash of everything lowering depends on: every type's shape fingerprint
/// plus every unit's `(owner, name, kind, sig, has_body)` in unit order.
///
/// When this survives an edit, plan ids, interned symbols and dispatch
/// tables of the previous generation are all still valid (the interner fills
/// in declaration order from exactly these names), so only methods whose
/// *body* fingerprint changed need re-lowering.
pub fn structure_hash(table: &ClassTable) -> u64 {
    let mut h = DefaultHasher::new();
    for ty in table.types() {
        type_fp(ty).hash(&mut h);
    }
    for (_, m) in units(table) {
        (
            &m.owner,
            &m.decl.name,
            m.decl.kind,
            sig_fp(m),
            !matches!(m.decl.body, MethodBody::Absent),
        )
            .hash(&mut h);
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Reference collection (names and types a declaration mentions)
// ---------------------------------------------------------------------

/// Names and type names referenced by some syntax, in sets so closure
/// computation is order-independent.
#[derive(Default)]
struct Refs {
    names: BTreeSet<String>,
    types: BTreeSet<String>,
}

fn collect_type(t: &Type, refs: &mut Refs) {
    match t {
        Type::Named(n) => {
            refs.types.insert(n.clone());
        }
        Type::Array(inner) => collect_type(inner, refs),
        _ => {}
    }
}

fn collect_expr(e: &Expr, refs: &mut Refs) {
    match e {
        Expr::Var(n) => {
            // A bare name can be a local, a field, or a class name used as a
            // static-call receiver; record it as both a callable name and a
            // type name — over-approximation only ever re-verifies more.
            refs.names.insert(n.clone());
            refs.types.insert(n.clone());
        }
        Expr::Decl(ty, _) => collect_type(ty, refs),
        Expr::Field(inner, name) => {
            refs.names.insert(name.clone());
            collect_expr(inner, refs);
        }
        Expr::Call {
            receiver,
            name,
            args,
        } => {
            refs.names.insert(name.clone());
            if let Some(r) = receiver {
                collect_expr(r, refs);
            }
            for a in args {
                collect_expr(a, refs);
            }
        }
        Expr::Index(a, b)
        | Expr::Binary(_, a, b)
        | Expr::As(a, b)
        | Expr::OrPat(a, b)
        | Expr::DisjointOr(a, b) => {
            collect_expr(a, refs);
            collect_expr(b, refs);
        }
        Expr::NewArray(ty, len) => {
            collect_type(ty, refs);
            collect_expr(len, refs);
        }
        Expr::Neg(inner) => collect_expr(inner, refs),
        Expr::Tuple(xs) => {
            for x in xs {
                collect_expr(x, refs);
            }
        }
        Expr::Where(p, f) => {
            collect_expr(p, refs);
            collect_formula(f, refs);
        }
        Expr::IntLit(_)
        | Expr::BoolLit(_)
        | Expr::StrLit(_)
        | Expr::Null
        | Expr::This
        | Expr::Result
        | Expr::Wildcard => {}
    }
}

fn collect_formula(f: &Formula, refs: &mut Refs) {
    match f {
        Formula::Bool(_) => {}
        Formula::Cmp(_, a, b) => {
            collect_expr(a, refs);
            collect_expr(b, refs);
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
            collect_formula(a, refs);
            collect_formula(b, refs);
        }
        Formula::Not(a) => collect_formula(a, refs),
        Formula::Atom(e) => collect_expr(e, refs),
    }
}

fn collect_stmts(stmts: &[Stmt], refs: &mut Refs) {
    for s in stmts {
        collect_stmt(s, refs);
    }
}

fn collect_stmt(s: &Stmt, refs: &mut Refs) {
    match s {
        Stmt::Let(f) => collect_formula(f, refs),
        Stmt::Switch {
            scrutinees,
            cases,
            default,
        } => {
            for e in scrutinees {
                collect_expr(e, refs);
            }
            for c in cases {
                for p in &c.patterns {
                    collect_expr(p, refs);
                }
                collect_stmts(&c.body, refs);
            }
            if let Some(d) = default {
                collect_stmts(d, refs);
            }
        }
        Stmt::Cond { arms, else_arm } => {
            for (f, body) in arms {
                collect_formula(f, refs);
                collect_stmts(body, refs);
            }
            if let Some(e) = else_arm {
                collect_stmts(e, refs);
            }
        }
        Stmt::If { cond, then, els } => {
            collect_formula(cond, refs);
            collect_stmts(then, refs);
            if let Some(e) = els {
                collect_stmts(e, refs);
            }
        }
        Stmt::Foreach { formula, body } => {
            collect_formula(formula, refs);
            collect_stmts(body, refs);
        }
        Stmt::While { cond, body } => {
            collect_formula(cond, refs);
            collect_stmts(body, refs);
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                collect_expr(e, refs);
            }
        }
        Stmt::Assign(a, b) => {
            collect_expr(a, refs);
            collect_expr(b, refs);
        }
        Stmt::ExprStmt(e) => collect_expr(e, refs),
        Stmt::Block(body) => collect_stmts(body, refs),
    }
}

/// References made by a *signature* (specs and types, no body) — what spec
/// closure follows transitively.
fn spec_refs(minfo: &MethodInfo, refs: &mut Refs) {
    for p in &minfo.decl.params {
        collect_type(&p.ty, refs);
    }
    if let Some(rt) = &minfo.decl.return_type {
        collect_type(rt, refs);
    }
    if let Some(f) = &minfo.decl.matches {
        collect_formula(f, refs);
    }
    if let Some(f) = &minfo.decl.ensures {
        collect_formula(f, refs);
    }
    if minfo.owner != "<toplevel>" {
        refs.types.insert(minfo.owner.clone());
    }
}

/// References made by the whole declaration, body included — the closure
/// *seeds* for the declaring unit itself.
fn decl_refs(minfo: &MethodInfo, refs: &mut Refs) {
    spec_refs(minfo, refs);
    refs.names.insert(minfo.decl.name.clone());
    match &minfo.decl.body {
        MethodBody::Absent => {}
        MethodBody::Formula(f) => collect_formula(f, refs),
        MethodBody::Block(stmts) => collect_stmts(stmts, refs),
    }
}

/// The environment key of one unit: hierarchy hash + own signature + the
/// spec closure of everything the unit references.
///
/// The closure follows a name to the signatures of **all** same-named units
/// (method dispatch is by name at spec level), and from there through their
/// `matches`/`ensures` clauses and parameter/return types — never bodies. A
/// type pulls in its shape fingerprint, supertypes, invariant references
/// and field types. Material is accumulated in a [`BTreeSet`] so the hash
/// is independent of traversal order.
fn env_key(table: &ClassTable, minfo: &MethodInfo, hierarchy: u64, sig: u64) -> u64 {
    let mut seeds = Refs::default();
    decl_refs(minfo, &mut seeds);

    // (tag, name, fingerprint) — tag 0 for unit signatures, 1 for types.
    let mut material: BTreeSet<(u8, String, u64)> = BTreeSet::new();
    let mut done_names: BTreeSet<String> = BTreeSet::new();
    let mut done_types: BTreeSet<String> = BTreeSet::new();
    let mut pending_names: Vec<String> = seeds.names.into_iter().collect();
    let mut pending_types: Vec<String> = seeds.types.into_iter().collect();
    let all_units = units(table);

    loop {
        if let Some(n) = pending_names.pop() {
            if !done_names.insert(n.clone()) {
                continue;
            }
            for (_, u) in all_units.iter().filter(|(_, u)| u.decl.name == n) {
                material.insert((0, u.qualified_name(), sig_fp(u)));
                let mut refs = Refs::default();
                spec_refs(u, &mut refs);
                pending_names.extend(refs.names);
                pending_types.extend(refs.types);
            }
        } else if let Some(t) = pending_types.pop() {
            if !done_types.insert(t.clone()) {
                continue;
            }
            match table.type_info(&t) {
                Some(info) => {
                    material.insert((1, t, type_fp(info)));
                    pending_types.extend(info.supertypes.iter().cloned());
                    let mut refs = Refs::default();
                    for inv in &info.invariants {
                        collect_formula(&inv.formula, &mut refs);
                    }
                    for f in &info.fields {
                        collect_type(&f.ty, &mut refs);
                    }
                    pending_names.extend(refs.names);
                    pending_types.extend(refs.types);
                }
                // Undeclared names (locals recorded conservatively, builtin
                // type names): record presence only, so *declaring* a type
                // with that name later changes the key — which is exactly
                // when invalidation is required.
                None => {
                    material.insert((1, t, 0));
                }
            }
        } else {
            break;
        }
    }
    fp(&(hierarchy, sig, &material))
}

impl Fingerprints {
    /// Computes every fingerprint of a resolved program.
    pub fn of(table: &ClassTable) -> Fingerprints {
        let hierarchy = hierarchy_hash(table);
        let structure = structure_hash(table);
        let mut occs: HashMap<(String, String), u32> = HashMap::new();
        let mut out = Vec::new();
        for (_, m) in units(table) {
            let occ = occs
                .entry((m.owner.clone(), m.decl.name.clone()))
                .or_insert(0);
            let key = UnitKey {
                owner: m.owner.clone(),
                name: m.decl.name.clone(),
                occ: *occ,
            };
            *occ += 1;
            let sig = sig_fp(m);
            let body = body_fp(m);
            let env = env_key(table, m, hierarchy, sig);
            let verify = fp(&(env, body));
            out.push(UnitFp {
                key,
                sig,
                body,
                env,
                verify,
            });
        }
        Fingerprints {
            hierarchy,
            structure,
            units: out,
        }
    }

    /// The fingerprint entry for `Owner.name` (first occurrence), if any.
    pub fn unit(&self, owner: &str, name: &str) -> Option<&UnitFp> {
        self.units
            .iter()
            .find(|u| u.key.owner == owner && u.key.name == name)
    }
}

// ---------------------------------------------------------------------
// The incremental verification engine
// ---------------------------------------------------------------------

/// What one [`VerifyEngine::verify`] rebuild actually did.
#[derive(Debug, Clone, Default)]
pub struct RebuildStats {
    /// Qualified names of the units that were re-verified, in unit order.
    pub reverified: Vec<String>,
    /// Number of green units whose cached diagnostics were reused.
    pub reused: usize,
    /// Solver work performed by **this** rebuild only (deltas, not session
    /// lifetime totals).
    pub stats: SessionStats,
}

/// Per-unit cached state carried across rebuilds.
#[derive(Debug)]
struct UnitEntry {
    env: u64,
    verify: u64,
    diags: Diagnostics,
    session: Option<Session>,
}

/// The incremental verification engine: caches per-unit diagnostics and
/// solver sessions across program generations, re-verifying only units
/// whose verify key changed (see the module docs for the invariants).
#[derive(Debug)]
pub struct VerifyEngine {
    options: VerifyOptions,
    units: HashMap<UnitKey, UnitEntry>,
}

/// Field-wise `after - before` (saturating; the shared CDCL counters only
/// ever grow, but saturation keeps the helper total).
fn stats_delta(after: SessionStats, before: SessionStats) -> SessionStats {
    SessionStats {
        solver_queries: after.solver_queries.saturating_sub(before.solver_queries),
        cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
        rounds: after.rounds.saturating_sub(before.rounds),
        theory_conflicts: after
            .theory_conflicts
            .saturating_sub(before.theory_conflicts),
        lemmas: after.lemmas.saturating_sub(before.lemmas),
        sat_conflicts: after.sat_conflicts.saturating_sub(before.sat_conflicts),
        sat_decisions: after.sat_decisions.saturating_sub(before.sat_decisions),
        sat_propagations: after
            .sat_propagations
            .saturating_sub(before.sat_propagations),
    }
}

impl VerifyEngine {
    /// Creates an engine with the given verification options.
    pub fn new(options: VerifyOptions) -> Self {
        VerifyEngine {
            options,
            units: HashMap::new(),
        }
    }

    /// The verification options the engine runs with.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Verifies a program generation, reusing cached results for every green
    /// unit. Returns the full diagnostics — identical content and order to a
    /// from-scratch per-method verification — plus what this rebuild did.
    ///
    /// `threads` bounds the worker pool for dirty units (`0` =
    /// [`jmatch_smt::pool::configured_threads`]); because each dirty unit
    /// owns its session and results are reassembled in unit order, the
    /// output is identical at any worker count.
    pub fn verify(
        &mut self,
        table: &Arc<ClassTable>,
        fps: &Fingerprints,
        threads: usize,
    ) -> (Diagnostics, RebuildStats) {
        let verifier = Verifier::new(Arc::clone(table), self.options.clone());
        let mut old = std::mem::take(&mut self.units);
        let us = units(table);
        debug_assert_eq!(us.len(), fps.units.len());

        // Partition into green (cached) and red (to re-verify) units. Green
        // slots are pre-filled; red units carry their previous session when
        // the environment key survived the edit.
        let n = us.len();
        let mut slots: Vec<Option<(Diagnostics, Option<Session>)>> = Vec::new();
        slots.resize_with(n, || None);
        let mut red = vec![false; n];
        let mut work: Vec<(usize, Option<&TypeInfo>, &MethodInfo, Option<Session>)> = Vec::new();
        for (i, ((owner, m), ufp)) in us.iter().zip(&fps.units).enumerate() {
            match old.remove(&ufp.key) {
                Some(entry) if entry.verify == ufp.verify => {
                    slots[i] = Some((entry.diags, entry.session));
                }
                Some(entry) if entry.env == ufp.env => {
                    red[i] = true;
                    work.push((i, *owner, m, entry.session));
                }
                _ => {
                    red[i] = true;
                    work.push((i, *owner, m, None));
                }
            }
        }
        // Sessions of removed units (still in `old`) drop here.
        drop(old);

        // Shard dirty units across workers; each owns its session, results
        // come back in input order.
        let results = jmatch_smt::map_ordered(work, threads, |_, (i, owner, m, session)| {
            let mut sess = match session {
                Some(mut s) => {
                    // Same environment, new class table: keep the term
                    // store, learned clauses and VC cache; swap only the
                    // expander (which captures the table).
                    s.retarget(&verifier);
                    s
                }
                None => verifier.new_session(),
            };
            let before = sess.stats();
            let mut diags = Diagnostics::new();
            verifier.verify_method_in(&mut sess, owner, m, &mut diags);
            let delta = stats_delta(sess.stats(), before);
            (i, diags, delta, sess)
        });

        let mut rebuild = RebuildStats {
            reused: n - results.len(),
            ..RebuildStats::default()
        };
        for (i, diags, delta, sess) in results {
            rebuild.stats.absorb(delta);
            slots[i] = Some((diags, Some(sess)));
        }

        // Reassemble diagnostics in unit order and store the new cache.
        let mut out = Diagnostics::new();
        for (i, ((_, m), ufp)) in us.iter().zip(&fps.units).enumerate() {
            let (diags, session) = slots[i].take().expect("every unit slot is filled");
            if red[i] {
                rebuild.reverified.push(m.qualified_name());
            }
            out.extend(diags.clone());
            self.units.insert(
                ufp.key.clone(),
                UnitEntry {
                    env: ufp.env,
                    verify: ufp.verify,
                    diags,
                    session,
                },
            );
        }
        (out, rebuild)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_syntax::parse_program;

    fn table_for(src: &str) -> Arc<ClassTable> {
        let program = parse_program(src).unwrap();
        let mut diags = Diagnostics::new();
        ClassTable::build(&program, &mut diags)
    }

    const BASE: &str = "
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
        }
        class PZero implements Nat {
            constructor zero() returns() ( true )
            constructor succ(Nat n) returns(n) ( false )
        }
        class PSucc implements Nat {
            Nat pred;
            constructor zero() returns() ( false )
            constructor succ(Nat n) returns(n) ( pred = n )
        }
        static Nat pred(Nat m) {
            switch (m) {
                case succ(Nat k): return k;
                case zero(): return zero();
            }
        }
        static int answer() { return 42; }
    ";

    #[test]
    fn fingerprints_are_reproducible() {
        let a = Fingerprints::of(&table_for(BASE));
        let b = Fingerprints::of(&table_for(BASE));
        assert_eq!(a, b);
    }

    #[test]
    fn whitespace_only_edit_changes_nothing() {
        let a = Fingerprints::of(&table_for(BASE));
        let shifted = format!("\n\n\n{}", BASE.replace("switch (m)", "switch  (m)"));
        let b = Fingerprints::of(&table_for(&shifted));
        assert_eq!(a, b, "position shifts must not dirty any unit");
    }

    #[test]
    fn body_edit_dirties_only_that_unit() {
        let a = Fingerprints::of(&table_for(BASE));
        let b = Fingerprints::of(&table_for(&BASE.replace("return 42;", "return 43;")));
        assert_eq!(a.hierarchy, b.hierarchy);
        assert_eq!(a.structure, b.structure, "a body edit keeps the structure");
        let changed: Vec<&UnitKey> = a
            .units
            .iter()
            .zip(&b.units)
            .filter(|(x, y)| x.verify != y.verify)
            .map(|(x, _)| &x.key)
            .collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].qualified(), "<toplevel>.answer");
        // The environment survived: the session would be reused.
        let (x, y) = (
            a.unit("<toplevel>", "answer").unwrap(),
            b.unit("<toplevel>", "answer").unwrap(),
        );
        assert_eq!(x.env, y.env);
        assert_ne!(x.body, y.body);
    }

    #[test]
    fn spec_edit_dirties_dependents() {
        // Changing succ's matches clause on the interface must re-verify
        // every unit whose closure reaches `succ` — in particular `pred`.
        let a = Fingerprints::of(&table_for(BASE));
        let edited = BASE.replace(
            "constructor succ(Nat n) returns(n);",
            "constructor succ(Nat n) returns(n) matches(true);",
        );
        let b = Fingerprints::of(&table_for(&edited));
        assert_ne!(a.structure, b.structure, "a spec edit changes structure");
        let pred = (
            a.unit("<toplevel>", "pred").unwrap(),
            b.unit("<toplevel>", "pred").unwrap(),
        );
        assert_ne!(pred.0.env, pred.1.env, "pred depends on succ's spec");
        let answer = (
            a.unit("<toplevel>", "answer").unwrap(),
            b.unit("<toplevel>", "answer").unwrap(),
        );
        assert_eq!(
            answer.0.verify, answer.1.verify,
            "answer references neither succ nor Nat"
        );
    }

    #[test]
    fn hierarchy_edit_dirties_everything() {
        let a = Fingerprints::of(&table_for(BASE));
        let edited = format!("{BASE} class PExtra implements Nat {{ constructor zero() returns() ( false ) constructor succ(Nat n) returns(n) ( false ) }}");
        let b = Fingerprints::of(&table_for(&edited));
        assert_ne!(a.hierarchy, b.hierarchy);
        for (x, y) in a.units.iter().zip(&b.units) {
            assert_ne!(
                x.env,
                y.env,
                "{}: hierarchy edits are global (is$T disjointness)",
                x.key.qualified()
            );
        }
    }

    #[test]
    fn engine_skips_green_units_and_agrees_with_fresh() {
        let t1 = table_for(BASE);
        let fp1 = Fingerprints::of(&t1);
        let mut engine = VerifyEngine::new(VerifyOptions::default());
        let (full, first) = engine.verify(&t1, &fp1, 1);
        assert_eq!(first.reverified.len(), fp1.units.len());
        assert!(first.stats.solver_queries > 0);

        // No edit: everything green, zero queries.
        let (again, stats) = engine.verify(&t1, &fp1, 1);
        assert_eq!(again, full);
        assert_eq!(stats.reverified, Vec::<String>::new());
        assert_eq!(stats.stats.solver_queries, 0);

        // Body edit: exactly one unit re-verifies, and the result matches a
        // fresh engine's verdict on the edited program.
        let t2 = table_for(&BASE.replace("return 42;", "return 40 + 2;"));
        let fp2 = Fingerprints::of(&t2);
        let (inc, stats) = engine.verify(&t2, &fp2, 1);
        assert_eq!(stats.reverified, vec!["<toplevel>.answer".to_string()]);
        let mut fresh = VerifyEngine::new(VerifyOptions::default());
        let (scratch, _) = fresh.verify(&t2, &fp2, 1);
        assert_eq!(inc, scratch);
    }

    #[test]
    fn diagnostics_identical_at_any_worker_count() {
        let table = table_for(&BASE.replace("case zero(): return zero();", ""));
        let fps = Fingerprints::of(&table);
        let baseline = VerifyEngine::new(VerifyOptions::default())
            .verify(&table, &fps, 1)
            .0;
        assert!(
            baseline.has_warning(crate::diag::WarningKind::NonExhaustive)
                || baseline.has_warning(crate::diag::WarningKind::Unknown)
        );
        for threads in [2, 8] {
            let got = VerifyEngine::new(VerifyOptions::default())
                .verify(&table, &fps, threads)
                .0;
            assert_eq!(got, baseline, "threads={threads}");
        }
    }
}
