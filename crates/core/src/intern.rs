//! Program-wide string interning for runtime names.
//!
//! Every name the *runtime* dispatches or resolves on — class names, field
//! names, method and constructor names — is interned into a [`Sym`] while
//! the class table is built, following the design of `jmatch_smt::sym`
//! (the solver keeps its own interner; its symbols never mix with these).
//! A `Sym` is a small copyable handle: comparing two of them is one `u32`
//! compare instead of a byte-by-byte `String` compare, and hashing one is
//! trivial, which is what makes slot-indexed object layouts and
//! class-keyed dispatch tables (see [`crate::table::ClassLayout`] and
//! [`crate::lower::DispatchTable`]) O(1) at run time.
//!
//! The interner is **frozen** once [`crate::table::ClassTable::build`]
//! finishes: later phases (lowering, the evaluators, the embedding API)
//! only [`Interner::lookup`] and [`Interner::resolve`]. A name that was
//! never declared simply has no symbol, which the runtime reports exactly
//! like the old string-keyed misses ("no field", "method not found").

use std::collections::HashMap;
use std::fmt;

/// An interned runtime name (class, field, method or constructor).
///
/// Symbols are only meaningful relative to the [`Interner`] (and therefore
/// the [`crate::table::ClassTable`]) that created them; comparing symbols
/// from different programs is meaningless, which is why cross-program
/// paths (the embedding API boundary) resolve through strings instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// Raw index of the symbol inside its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simple append-only string interner (the design of `jmatch_smt::sym`,
/// instantiated for runtime names).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("val");
        let b = i.intern("val");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "val");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut i = Interner::new();
        assert_ne!(i.intern("x"), i.intern("y"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.lookup("zero").is_none());
        let z = i.intern("zero");
        assert_eq!(i.lookup("zero"), Some(z));
        assert_eq!(i.len(), 1);
    }
}
