//! # jmatch-core
//!
//! The static-analysis half of the JMatch 2.0 reproduction (*Reconciling
//! Exhaustive Pattern Matching with Objects*, PLDI 2013): class-table
//! resolution, mode analysis, matching-precondition extraction (`ExtractM`),
//! verification-condition generation (the paper's `F` language and the
//! `VF`/`VM`/`VP` translations of Figure 10), and the verification driver for
//! exhaustiveness, redundancy, totality, disjointness and multiplicity.
//!
//! ## Example
//!
//! ```
//! use jmatch_core::{compile, CompileOptions, WarningKind};
//!
//! let source = "
//!     interface Nat {
//!         invariant(this = zero() | succ(_));
//!         constructor zero() returns();
//!         constructor succ(Nat n) returns(n);
//!     }
//!     static Nat pred(Nat m) {
//!         switch (m) {
//!             case succ(Nat k): return k;
//!         }
//!     }
//! ";
//! let result = compile(source, &CompileOptions::default())?;
//! // The switch is missing the zero() case, and the verifier says so.
//! assert!(result.diagnostics.has_warning(WarningKind::NonExhaustive)
//!     || result.diagnostics.has_warning(WarningKind::Unknown));
//! # Ok::<(), jmatch_syntax::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bytecode;
pub mod diag;
pub mod expand;
pub mod extract;
pub mod incremental;
pub mod intern;
pub mod lower;
pub mod table;
pub mod vc;
pub mod verify;

pub use analysis::{AnalysisOptions, AnalysisReport, Justification, Prune};
pub use diag::{CompileError, Diagnostics, Warning, WarningKind};
pub use expand::JMatchExpander;
pub use extract::{extract, Extracted};
pub use incremental::{Fingerprints, RebuildStats, UnitFp, UnitKey, VerifyEngine};
pub use intern::{Interner, Sym};
pub use lower::{MethodPlan, PlanId, ProgramPlan, SlotId};
pub use table::{ClassLayout, ClassTable, MethodInfo, Mode, TypeInfo};
pub use vc::{Env, Seq, VcGen, F};
pub use verify::{Session, SessionStats, Verifier, VerifyOptions};

use jmatch_syntax::{parse_program, ParseError, Program};
use std::sync::Arc;

/// Options for [`compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Whether to run the static verification passes (exhaustiveness,
    /// redundancy, totality, disjointness, multiplicity). Turning this off
    /// corresponds to the "w/o verif" column of the paper's Table 1.
    pub verify: bool,
    /// Iterative-deepening bound for lazy expansion (§6.2).
    pub max_expansion_depth: u32,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            verify: true,
            max_expansion_depth: 3,
        }
    }
}

/// The result of compiling a JMatch program.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The parsed program.
    pub program: Program,
    /// The resolved class table.
    pub table: Arc<ClassTable>,
    /// Warnings and errors produced by resolution and verification.
    pub diagnostics: Diagnostics,
}

/// Parses, resolves, and (optionally) verifies a JMatch program.
///
/// Verification reuses **one incremental solver session** for the entire
/// compilation (the paper's single-Z3-process architecture): every VC query
/// runs inside a `push`/`pop` scope of a shared [`jmatch_smt::Solver`], with
/// lemma replay and a canonical-formula result cache — see
/// [`verify::Session`].
///
/// # Errors
///
/// Returns a [`ParseError`] if the source is not syntactically valid; semantic
/// problems are reported through [`Compilation::diagnostics`] instead.
pub fn compile(source: &str, options: &CompileOptions) -> Result<Compilation, ParseError> {
    let program = parse_program(source)?;
    let mut diagnostics = Diagnostics::new();
    let table = ClassTable::build(&program, &mut diagnostics);
    if options.verify {
        let verifier = Verifier::new(
            Arc::clone(&table),
            VerifyOptions {
                max_expansion_depth: options.max_expansion_depth,
                report_unknown: false,
                session_reuse: true,
            },
        );
        diagnostics.extend(verifier.verify_program());
    }
    Ok(Compilation {
        program,
        table,
        diagnostics,
    })
}

/// Compiles several source files as one program (they are concatenated; the
/// dialect has no package system).
///
/// # Errors
///
/// Returns a [`ParseError`] if any source fails to parse.
pub fn compile_sources<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    options: &CompileOptions,
) -> Result<Compilation, ParseError> {
    let combined: String = sources.into_iter().collect::<Vec<_>>().join("\n");
    compile(&combined, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_without_verification_reports_no_warnings() {
        let src = "
            interface Nat {
                invariant(this = zero() | succ(_));
                constructor zero() returns();
                constructor succ(Nat n) returns(n);
            }
            static Nat pred(Nat m) {
                switch (m) {
                    case succ(Nat k): return k;
                }
            }
        ";
        let no_verify = compile(
            src,
            &CompileOptions {
                verify: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(no_verify.diagnostics.warnings.is_empty());
        let verify = compile(src, &CompileOptions::default()).unwrap();
        assert!(!verify.diagnostics.warnings.is_empty());
    }

    #[test]
    fn compile_sources_concatenates() {
        let a = "interface I { constructor mk() returns(); }";
        let b = "class C implements I { constructor mk() returns() ( true ) }";
        let c = compile_sources([a, b], &CompileOptions::default()).unwrap();
        assert!(c.table.type_info("I").is_some());
        assert!(c.table.type_info("C").is_some());
    }
}
