//! Lowering declarative methods to mode-specialized query plans.
//!
//! The paper compiles JMatch to Java_yield by *statically* selecting a
//! solved form per mode (§2.3): given which relation variables are knowns,
//! the compiler orders the conjuncts of a declarative body once, at compile
//! time, so the generated code never searches for a solving order at run
//! time. This module is that translation for the reproduction: it runs after
//! class-table/mode resolution and compiles every method body — declarative
//! formulas, `switch` dispatch, `foreach` enumeration, imperative blocks —
//! into a [`Plan`] IR that `jmatch-runtime`'s plan evaluator executes
//! directly.
//!
//! The lowering performs three jobs the tree-walking interpreter used to
//! redo on every call:
//!
//! 1. **Slot allocation** — every variable of a method body is assigned a
//!    fixed frame slot ([`SlotId`]), so the evaluator works on a flat
//!    `Vec<Option<Value>>` frame instead of cloning `HashMap` environments.
//! 2. **Solved-form selection** — conjunctions are scheduled statically by a
//!    *must/may* binding analysis (see [`Goal::Seq`]): at each step the
//!    lowering simulates the interpreter's "first ready conjunct" rule under
//!    both the variables that are *certainly* bound and those that *might*
//!    be. When both agree, the order is fixed in the plan; when they
//!    disagree (the mode analysis cannot pin the order), the conjunction is
//!    emitted as [`Goal::DynSeq`] and scheduled at run time exactly like the
//!    tree-walker would.
//! 3. **Dispatch resolution** — method lookup along the supertype chain
//!    (`find_impl` in the interpreter) is precomputed into per-class plan
//!    indices, and `switch` fall-through targets are resolved into a
//!    [`CaseTarget`] jump table.
//!
//! # Worked example
//!
//! `ZNat.succ` from Figure 1 of the paper has the declarative body
//! `val >= 1 && ZNat(val - 1) = n`. In the *forward* mode (construction:
//! `n` known, the field `val` unknown) the guard `val >= 1` cannot run
//! first, so the solved form inverts the body: solve `ZNat(val - 1) = n`
//! (binding `val` through the invertible subtraction), then check the
//! guard. In the *backward* mode (pattern matching: `this` known, `n`
//! unknown) the source order is already solved. The plan records both:
//!
//! ```
//! use jmatch_core::{compile, CompileOptions};
//! use jmatch_core::lower::{Goal, ProgramPlan};
//!
//! let source = r#"
//!     interface Nat {
//!         constructor zero() returns();
//!         constructor succ(Nat n) returns(n);
//!     }
//!     class ZNat implements Nat {
//!         int val;
//!         private ZNat(int n) returns(n) ( val = n && n >= 0 )
//!         constructor zero() returns() ( val = 0 )
//!         constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
//!     }
//! "#;
//! let compiled = compile(source, &CompileOptions { verify: false, ..Default::default() })?;
//! let plan = ProgramPlan::compile(compiled.table.clone());
//! let succ = plan.method(plan.lookup_impl("ZNat", "succ").unwrap());
//! let (forward, matching) = succ.body.solved_forms().unwrap();
//!
//! // Forward mode: the equation runs before the guard (indices swapped)...
//! let Goal::Seq(fwd) = &forward.goal else { panic!() };
//! assert!(matches!(fwd[0], Goal::Unify(..)));
//! assert!(matches!(fwd[1], Goal::Compare(..)));
//! // ...while the backward mode keeps the source order.
//! let Goal::Seq(bwd) = &matching.goal else { panic!() };
//! assert!(matches!(bwd[0], Goal::Compare(..)));
//! assert!(matches!(bwd[1], Goal::Unify(..)));
//! # Ok::<(), jmatch_syntax::ParseError>(())
//! ```
//!
//! [`Plan`]: ProgramPlan

use crate::intern::Sym;
use crate::table::{ClassLayout, ClassTable, MethodInfo};
use jmatch_syntax::ast::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a variable slot in a plan frame.
pub type SlotId = u32;

/// Index of a [`MethodPlan`] inside a [`ProgramPlan`].
pub type PlanId = usize;

/// Index of a [`DispatchTable`] inside a [`ProgramPlan`].
pub type DispatchId = u32;

/// A class-keyed dispatch table for one method / constructor name: the
/// [`PlanId`] of the implementation reachable from each declared type,
/// indexed by the type's dense [`ClassLayout::type_index`].
///
/// This is the compile-time/runtime split of WAM-style first-argument
/// indexing: the supertype walk (`lookup_impl`) runs here, once per
/// `(name, class)` pair at [`ProgramPlan::compile`] time, and the
/// evaluators resolve a dynamic dispatch with a single array load keyed by
/// the receiver's runtime class symbol — no hash of a `String` key, no
/// walk, no allocation.
#[derive(Debug, Clone)]
pub struct DispatchTable {
    name: String,
    by_type: Box<[Option<PlanId>]>,
}

impl DispatchTable {
    /// The method / constructor name the table dispatches.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The implementation reachable from the type at `type_index`.
    pub fn at(&self, type_index: u32) -> Option<PlanId> {
        self.by_type[type_index as usize]
    }

    /// Number of entries (one per declared type, by dense type index).
    pub fn len(&self) -> usize {
        self.by_type.len()
    }

    /// Whether the table has no entries (a program with no types).
    pub fn is_empty(&self) -> bool {
        self.by_type.is_empty()
    }

    /// When exactly one type resolves through this table, that
    /// `(type_index, plan)` — the monomorphic-call precondition of the
    /// bytecode compiler's call-site inlining.
    pub fn unique_impl(&self) -> Option<(u32, PlanId)> {
        let mut found = None;
        for (i, p) in self.by_type.iter().enumerate() {
            if let Some(pid) = p {
                if found.is_some() {
                    return None;
                }
                found = Some((i as u32, *pid));
            }
        }
        found
    }
}

/// A statically named class at a call / pattern site, with everything the
/// evaluators used to look up per call resolved at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRef {
    /// The class name (kept for error messages and foreign-value paths).
    pub name: String,
    /// The class's dense type index, when it is declared in the table.
    pub type_index: Option<u32>,
    /// Forward-construction resolution (evaluation position): the plan a
    /// `Class.ctor(args)` / `Class(args)` expression runs. `None` falls
    /// back to the string-keyed path so error messages stay identical.
    pub construct_pid: Option<PlanId>,
    /// Backward-matching resolution (pattern position): the plan a
    /// `Class.ctor(pats)` / `Class(pats)` pattern matches against.
    pub match_pid: Option<PlanId>,
}

/// The class restriction of a `T x` declaration pattern, resolved at
/// lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassCheck {
    /// No restriction (primitive or unconstrained declared type).
    Any,
    /// Object values must be subtypes of the type at this index
    /// (non-objects are unrestricted, as before).
    Subtype(u32),
    /// The named type is not in the table; fall back to the string-keyed
    /// subtype walk at run time (preserves erroneous-program behavior).
    Dynamic,
}

/// Which scrutinee classes one `switch` case pattern can possibly match —
/// the tag-dispatch table of a case arm. `Classes` is a bitmask over type
/// indices: an object whose class is masked out is *statically* known not
/// to match, so the case is skipped without running the matching plan or
/// creating its choice points. Non-objects (and objects from a foreign
/// program) are always admitted, and patterns whose match could *error*
/// (rather than merely fail) are `Any`, so pruning never changes
/// observable behavior.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseGuard {
    /// Any value might match.
    Any,
    /// Only objects of the masked classes might match.
    Classes(Box<[bool]>),
}

impl CaseGuard {
    /// Whether a value with the given resolved type index might match.
    /// `None` (non-objects, foreign classes) is always admitted.
    pub fn admits(&self, type_index: Option<u32>) -> bool {
        match self {
            CaseGuard::Any => true,
            CaseGuard::Classes(mask) => type_index.is_none_or(|i| mask[i as usize]),
        }
    }

    fn intersect(self, other: CaseGuard) -> CaseGuard {
        match (self, other) {
            (CaseGuard::Any, g) | (g, CaseGuard::Any) => g,
            (CaseGuard::Classes(a), CaseGuard::Classes(b)) => CaseGuard::Classes(
                a.iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x && y)
                    .collect::<Vec<bool>>()
                    .into(),
            ),
        }
    }

    fn union(self, other: CaseGuard) -> CaseGuard {
        match (self, other) {
            (CaseGuard::Any, _) | (_, CaseGuard::Any) => CaseGuard::Any,
            (CaseGuard::Classes(a), CaseGuard::Classes(b)) => CaseGuard::Classes(
                a.iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x || y)
                    .collect::<Vec<bool>>()
                    .into(),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame layout
// ---------------------------------------------------------------------------

/// The slot layout of one lowered frame: which variable lives in which slot.
#[derive(Debug, Clone, Default)]
pub struct FrameLayout {
    names: Vec<String>,
    index: HashMap<String, SlotId>,
}

impl FrameLayout {
    /// Number of slots in the frame.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the frame has no slots.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The slot of a variable name, if it occurs in the plan.
    pub fn slot_of(&self, name: &str) -> Option<SlotId> {
        self.index.get(name).copied()
    }

    /// The variable name stored in a slot.
    pub fn name_of(&self, slot: SlotId) -> &str {
        &self.names[slot as usize]
    }

    fn slot(&mut self, name: &str) -> SlotId {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = self.names.len() as SlotId;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }
}

// ---------------------------------------------------------------------------
// Plan expressions (patterns and expressions share one shape, like the AST)
// ---------------------------------------------------------------------------

/// How a call expression resolves, precomputed where the AST allows it.
#[derive(Debug, Clone, PartialEq)]
pub enum CallKind {
    /// `Class.name(args)` — a (named-)constructor invocation on a class,
    /// with the class and both resolution modes precomputed.
    StaticConstruct(ClassRef),
    /// `recv.name(args)` with an object receiver — dynamic dispatch through
    /// the call's [`DispatchTable`].
    Instance,
    /// `Class(args)` — the class constructor of the named class.
    ClassCtor(ClassRef),
    /// `name(args)` resolving to a free-standing method (the plan resolved
    /// at lowering time when it exists).
    Free(Option<PlanId>),
    /// `name(args)` falling back to a method on `this`.
    ThisMethod,
    /// `name(args)` that resolves to nothing — a runtime error when reached.
    Unresolved,
}

/// A lowered pattern/expression. Mirrors [`Expr`] with variables resolved to
/// frame slots and embedded formulas lowered to [`Goal`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// `null`.
    Null,
    /// `this`.
    This,
    /// `result`, resolved to its slot.
    Result(SlotId),
    /// `_`.
    Wildcard,
    /// A variable occurrence: its slot plus the static resolution facts the
    /// evaluator needs (field-of-`this` fallback, class-name reference).
    Name {
        /// The frame slot backing the variable.
        slot: SlotId,
        /// Source name (needed for the runtime field-of-`this` fallback).
        name: String,
        /// The interned name, when any class declares a field called this
        /// — the O(1) field-of-`this` fallback.
        field_sym: Option<Sym>,
        /// Whether the name is a type in the class table.
        class_ref: bool,
    },
    /// A declaration pattern `T x` (`None` slot for `T _`), with the class
    /// restriction of a named type resolved to a [`ClassCheck`].
    Decl(Type, Option<SlotId>, ClassCheck),
    /// Field access `e.f`, the field name interned at lowering time
    /// (`None` when no class declares the field — a guaranteed runtime
    /// "no field" error, like the old string miss).
    Field(Box<PExpr>, String, Option<Sym>),
    /// A call / constructor pattern.
    Call {
        /// Receiver, if any.
        receiver: Option<Box<PExpr>>,
        /// Method or constructor name.
        name: String,
        /// Argument patterns.
        args: Vec<PExpr>,
        /// Precomputed resolution for ground (evaluation) position.
        kind: CallKind,
        /// The dispatch table for `name`, for runtime-class-dispatched
        /// positions (`None` only for names lowered standalone that no
        /// compiled table registered).
        dispatch: Option<DispatchId>,
    },
    /// Indexing (unsupported at run time, kept for faithful errors).
    Index(Box<PExpr>, Box<PExpr>),
    /// Array allocation (unsupported at run time).
    NewArray(Type, Box<PExpr>),
    /// Binary arithmetic (invertible in pattern position).
    Binary(BinOp, Box<PExpr>, Box<PExpr>),
    /// Unary minus.
    Neg(Box<PExpr>),
    /// Tuple (only meaningful inside equations; eliminated during lowering
    /// when both sides are tuples of equal length).
    Tuple(Vec<PExpr>),
    /// `p1 as p2`.
    As(Box<PExpr>, Box<PExpr>),
    /// `p1 # p2` / `p1 | p2` pattern disjunction.
    OrPat(Box<PExpr>, Box<PExpr>),
    /// `p where (f)` — the formula is lowered to a goal.
    Where(Box<PExpr>, Box<Goal>),
}

// ---------------------------------------------------------------------------
// Goals (lowered formulas)
// ---------------------------------------------------------------------------

/// The readiness test of one conjunct, used by [`Goal::DynSeq`] to reproduce
/// the interpreter's dynamic "first ready conjunct" scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadyCheck {
    /// Always ready.
    Always,
    /// Never ready (a bare declaration atom).
    Never,
    /// Ready when the expression is ground.
    Ground(PExpr),
    /// Ready when either side is ground (an equation).
    EitherGround(Box<PExpr>, Box<PExpr>),
    /// Ready when both sides are ground (an ordering comparison).
    BothGround(Box<PExpr>, Box<PExpr>),
    /// Ready when all sub-checks are ready (nested connectives).
    All(Vec<ReadyCheck>),
}

/// A lowered formula: the executable query plan of one declarative body in
/// one mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Goal {
    /// Trivially true: emit the current bindings.
    True,
    /// Trivially false: no solutions.
    Fail,
    /// A statically scheduled conjunction — the solved form of §2.3. The
    /// goals run in order; each solution of a goal feeds the next.
    Seq(Vec<Goal>),
    /// A conjunction whose order the mode analysis could not pin down
    /// statically; the evaluator selects the first ready conjunct at run
    /// time, exactly like the tree-walking interpreter.
    DynSeq(Vec<(ReadyCheck, Goal)>),
    /// Disjunction: enumerate each branch's solutions in order.
    Any(Vec<Goal>),
    /// Negation as failure: succeeds (binding nothing) iff the inner goal
    /// has no solution.
    Not(Box<Goal>),
    /// An equation `l = r`: evaluate the ground side, match the other.
    Unify(PExpr, PExpr),
    /// An ordering comparison over ground operands.
    Compare(CmpOp, PExpr, PExpr),
    /// A predicate / constructor-match atom `recv.name(args)`: solve the
    /// callee's matching plan against the receiver and match the solutions'
    /// parameter values against `args`.
    Invoke {
        /// Ground receiver (`None` means `this`).
        receiver: Option<PExpr>,
        /// Constructor / method name (dispatched on the runtime class).
        name: String,
        /// Argument patterns, matched in the caller's frame.
        args: Vec<PExpr>,
        /// The dispatch table for `name`: the runtime resolves the
        /// receiver's class symbol through it in O(1) instead of walking
        /// the supertype chain per call.
        dispatch: Option<DispatchId>,
    },
    /// A ground boolean test.
    Test(PExpr),
    /// A bare declaration atom: emits the current bindings unchanged.
    Trivial,
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// Where a matched `switch` case transfers control, with fall-through
/// resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseTarget {
    /// Execute the body of case `i`.
    Body(usize),
    /// Fall through past the last case into the `default` arm.
    Default,
    /// Fall off the end — a runtime error.
    FellOff,
}

/// One lowered `case` arm.
#[derive(Debug, Clone)]
pub struct CasePlan {
    /// One pattern per scrutinee.
    pub patterns: Vec<PExpr>,
    /// One tag-dispatch guard per pattern: which scrutinee classes the
    /// pattern can possibly match. Checked (an array load) before the
    /// pattern's matching plan runs, so impossible cases are skipped
    /// without creating any choice points.
    pub guards: Vec<CaseGuard>,
    /// Precomputed fall-through target.
    pub target: CaseTarget,
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub enum StmtPlan {
    /// `let f;` — commit to the first solution of the goal.
    Let(Goal),
    /// A `switch` with its dispatch plan.
    Switch {
        /// Scrutinee expressions.
        scrutinees: Vec<PExpr>,
        /// The case arms with resolved targets.
        cases: Vec<CasePlan>,
        /// Lowered case bodies (indexed by [`CaseTarget::Body`]).
        bodies: Vec<Vec<StmtPlan>>,
        /// The lowered `default` body, if any.
        default: Option<Vec<StmtPlan>>,
    },
    /// `cond { (f) {s} ... else {s} }`.
    Cond {
        /// The arms in order.
        arms: Vec<(Goal, Vec<StmtPlan>)>,
        /// The `else` arm.
        else_arm: Option<Vec<StmtPlan>>,
    },
    /// `if (f) s else s`.
    If {
        /// Condition goal.
        cond: Goal,
        /// Then branch.
        then: Vec<StmtPlan>,
        /// Else branch.
        els: Option<Vec<StmtPlan>>,
    },
    /// `foreach (f) { s }`.
    Foreach {
        /// The iterated goal.
        goal: Goal,
        /// Slots of variables the formula *declares* (used for the
        /// outer-update merge semantics).
        declared: Vec<SlotId>,
        /// Loop body.
        body: Vec<StmtPlan>,
    },
    /// `while (f) { s }`.
    While {
        /// Loop condition goal.
        cond: Goal,
        /// Loop body.
        body: Vec<StmtPlan>,
    },
    /// `return e;` / `return;`.
    Return(Option<PExpr>),
    /// Assignment to a variable slot.
    Assign(SlotId, PExpr),
    /// Assignment to anything else — the right-hand side is still evaluated
    /// (for faithful error ordering), then the statement fails.
    AssignUnsupported(PExpr),
    /// An expression evaluated for effect.
    Expr(PExpr),
    /// A nested block (inner-only bindings are dropped on exit).
    Block(Vec<StmtPlan>),
}

// ---------------------------------------------------------------------------
// Method plans
// ---------------------------------------------------------------------------

/// One mode-specialized solved form of a declarative body.
#[derive(Debug, Clone)]
pub struct SolvedForm {
    /// The lowered body.
    pub goal: Goal,
    /// Slot layout of the frame the goal runs in.
    pub frame: FrameLayout,
    /// Slot of each declared parameter, in declaration order.
    pub param_slots: Vec<SlotId>,
    /// Slot of `result`.
    pub result_slot: SlotId,
    /// Slots of the owner's fields (used when constructing instances).
    pub field_slots: Vec<(String, SlotId)>,
    /// Whether `this` is in scope in this mode.
    pub this_present: bool,
    /// Whether the determinism analysis (pass 3.5, [`crate::analysis`])
    /// proved the form emits at most one solution and its search cannot
    /// raise a runtime error. The evaluators commit to the first solution
    /// of a `det` form instead of keeping its choice points alive. Always
    /// `false` when the analysis is disabled.
    pub det: bool,
    /// The form's threaded bytecode (pass 4 of [`ProgramPlan::compile`];
    /// `None` when bytecode emission is disabled).
    pub bc: Option<crate::bytecode::BcBody>,
}

/// A lowered imperative body.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    /// The lowered statements.
    pub stmts: Vec<StmtPlan>,
    /// Slot layout of the method frame.
    pub frame: FrameLayout,
    /// Slot of each declared parameter, in declaration order.
    pub param_slots: Vec<SlotId>,
    /// The body's register bytecode (pass 4 of [`ProgramPlan::compile`];
    /// `None` when bytecode emission is disabled).
    pub bc: Option<crate::bytecode::BcBlock>,
}

/// The lowered body of one method.
// A program holds one `BodyPlan` per method, so the size skew between the
// solved-form-carrying variants and `Absent` has no practical cost.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum BodyPlan {
    /// No implementation (interface / abstract method).
    Absent,
    /// A declarative body with its mode-specialized solved forms.
    Formula {
        /// Forward mode: parameters known, `result` / fields unknown.
        forward: SolvedForm,
        /// Backward / iterative modes: `this` known, parameters unknown.
        matching: SolvedForm,
        /// For methods named `equals` only: `this` *and* the parameter known
        /// — the mode the runtime's deep-equality check solves in when it
        /// bridges two implementations through an equality constructor
        /// (§3.2).
        equals_bound: Option<SolvedForm>,
    },
    /// An imperative body.
    Block(BlockPlan),
}

impl BodyPlan {
    /// The forward and matching solved forms of a declarative body.
    pub fn solved_forms(&self) -> Option<(&SolvedForm, &SolvedForm)> {
        match self {
            BodyPlan::Formula {
                forward, matching, ..
            } => Some((forward, matching)),
            _ => None,
        }
    }
}

/// A method together with its compiled plans.
#[derive(Debug, Clone)]
pub struct MethodPlan {
    /// The resolved method (owner, declaration, modes).
    pub info: MethodInfo,
    /// The compiled body.
    pub body: BodyPlan,
    /// The runtime layout of the owner class (`None` for free-standing
    /// methods): construction fills this layout's slots directly.
    pub owner_layout: Option<Arc<ClassLayout>>,
    /// Pass-4 projection-constructor specialization: when the forward form
    /// is a pure `field = expr(params)` conjunction, forward construction
    /// fills the layout straight from the arguments (`None` when bytecode
    /// emission is disabled or the form needs the solver).
    pub fast_ctor: Option<crate::bytecode::FastCtor>,
    /// Plans whose *bodies* this method's bytecode specialized against
    /// (inlined returned expressions, projection-switch shapes), recorded
    /// during pass 4. Incremental recompilation re-emits this method's
    /// bytecode whenever any of these plans changed; the edges are one level
    /// deep by construction (inlining embeds the callee's plan expression,
    /// not its bytecode), so no transitive closure is needed.
    pub bc_deps: Vec<PlanId>,
}

// ---------------------------------------------------------------------------
// Program plans
// ---------------------------------------------------------------------------

/// The pass-1 resolution maps: where every `(owner, name)` pair resolves,
/// before any body is lowered. Lowering reads these to resolve call sites
/// statically; the finished [`ProgramPlan`] keeps them for the string-keyed
/// API boundary.
#[derive(Debug, Clone, Default)]
struct PlanMaps {
    /// First method declared under `(owner, name)` (any kind, any body).
    /// Keyed by interned symbols, so the string-keyed API boundary resolves
    /// without allocating.
    declared: HashMap<(Sym, Sym), PlanId>,
    /// First method declared under `(owner, name)` *with* a body.
    declared_impl: HashMap<(Sym, Sym), PlanId>,
    /// The class constructor of each class.
    class_ctors: HashMap<Sym, PlanId>,
    /// Free-standing methods by name (first wins, like the table).
    free: HashMap<String, PlanId>,
    /// Whether each plan's method has a body.
    bodied: Vec<bool>,
}

impl PlanMaps {
    fn lookup_declared(&self, table: &ClassTable, ty: &str, name: &str) -> Option<PlanId> {
        // A name no type declares has no symbol — and therefore no entry.
        let name_sym = table.interner().lookup(name)?;
        Self::walk(&self.declared, table, ty, name_sym)
    }

    fn lookup_impl(&self, table: &ClassTable, class: &str, name: &str) -> Option<PlanId> {
        let name_sym = table.interner().lookup(name)?;
        Self::walk(&self.declared_impl, table, class, name_sym)
    }

    /// The shared supertype walk behind both resolutions: first entry for
    /// `(ty, name)` in `map` on the type itself, then on supertypes.
    fn walk(
        map: &HashMap<(Sym, Sym), PlanId>,
        table: &ClassTable,
        ty: &str,
        name_sym: Sym,
    ) -> Option<PlanId> {
        if let Some(ty_sym) = table.interner().lookup(ty) {
            if let Some(&id) = map.get(&(ty_sym, name_sym)) {
                return Some(id);
            }
        }
        let info = table.type_info(ty)?;
        info.supertypes
            .iter()
            .find_map(|sup| Self::walk(map, table, sup, name_sym))
    }

    fn class_ctor(&self, table: &ClassTable, class: &str) -> Option<PlanId> {
        self.class_ctors
            .get(&table.interner().lookup(class)?)
            .copied()
    }
}

/// The dispatch-table registry filled while bodies are lowered: every
/// invoked (or declared) name gets a [`DispatchId`]; the tables themselves
/// are materialized after lowering.
#[derive(Debug, Default)]
struct DispatchRegistry {
    ids: HashMap<String, DispatchId>,
    names: Vec<String>,
}

impl DispatchRegistry {
    fn id_for(&mut self, name: &str) -> DispatchId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as DispatchId;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }
}

/// Options of [`ProgramPlan::compile_with`]: which optional passes run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Emit flat bytecode for every lowered body (pass 4). On by default;
    /// the plan-walking baseline of the `bytecode_vs_plan` bench turns it
    /// off.
    pub bytecode: bool,
    /// Run the static-analysis pipeline (pass 3.5, [`crate::analysis`]):
    /// dead-alternative pruning, determinism inference, IR lints. On by
    /// default; `analysis: false` keeps the unanalyzed plan as the
    /// differential oracle.
    pub analysis: bool,
    /// Cross-check every switch/cond-arm prune against the §5 verifier
    /// through the SMT session (see
    /// [`AnalysisOptions::smt`](crate::analysis::AnalysisOptions)). Off by
    /// default.
    pub smt_prune_check: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            bytecode: true,
            analysis: true,
            smt_prune_check: false,
        }
    }
}

/// The compiled program: every method body lowered to its query plans, plus
/// the class-keyed dispatch tables the evaluators resolve calls through
/// without searching the class table.
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    table: Arc<ClassTable>,
    /// One `Arc` per method plan so incremental recompilation can share
    /// every unchanged plan between generations.
    methods: Vec<Arc<MethodPlan>>,
    maps: PlanMaps,
    /// Dispatch table per registered name.
    dispatch_ids: HashMap<String, DispatchId>,
    /// `Arc`-shared so a recompile that registers no new dispatched name
    /// reuses the whole table block.
    dispatch: Arc<[DispatchTable]>,
    /// The class constructor of each type, by type index.
    class_ctor_by_type: Box<[Option<PlanId>]>,
    /// The `equals` dispatch table (deep equality's hot lookup).
    equals_dispatch: Option<DispatchId>,
    /// Whether pass 4 emitted bytecode (standalone lowering follows suit).
    bc_enabled: bool,
    /// What pass 3.5 found (`None` when the analysis was disabled).
    analysis: Option<crate::analysis::AnalysisReport>,
}

impl ProgramPlan {
    /// Lowers every method of a resolved program. This is the one-time
    /// compile work that replaces the interpreter's per-call mode search:
    /// pass 1 registers every method in the resolution maps, pass 2 lowers
    /// bodies against those maps (resolving static call sites and interning
    /// dispatched names), pass 3 materializes one [`DispatchTable`] per
    /// name, pass 4 emits the flat bytecode of every lowered body (see
    /// [`crate::bytecode`]).
    pub fn compile(table: Arc<ClassTable>) -> Arc<ProgramPlan> {
        Self::compile_with(table, PlanOptions::default())
    }

    /// [`ProgramPlan::compile`] with bytecode emission switchable — the
    /// plan-walking baseline of the `bytecode_vs_plan` bench compiles with
    /// `bytecode: false` so both configurations share every other pass.
    pub fn compile_opts(table: Arc<ClassTable>, bytecode: bool) -> Arc<ProgramPlan> {
        Self::compile_with(
            table,
            PlanOptions {
                bytecode,
                ..PlanOptions::default()
            },
        )
    }

    /// [`ProgramPlan::compile`] with every optional pass switchable.
    pub fn compile_with(table: Arc<ClassTable>, opts: PlanOptions) -> Arc<ProgramPlan> {
        let bytecode = opts.bytecode;
        // Pass 1: resolution maps, no lowering yet.
        let (maps, infos) = Self::build_maps(&table);
        // Every declared name gets a table up front so standalone-lowered
        // formulas (built after compile) dispatch through them too.
        let mut registry = DispatchRegistry::default();
        for m in &infos {
            registry.id_for(&m.decl.name);
        }
        // Pass 2: lower bodies against the complete maps.
        let mut methods: Vec<Arc<MethodPlan>> = infos
            .iter()
            .map(|m| Arc::new(lower_method(&table, &maps, &mut registry, m)))
            .collect();
        // Pass 3: materialize the dispatch tables.
        let n = table.num_types();
        let type_names: Vec<&str> = table.types().map(|t| t.name.as_str()).collect();
        let dispatch: Arc<[DispatchTable]> = registry
            .names
            .iter()
            .map(|name| DispatchTable {
                name: name.clone(),
                by_type: type_names
                    .iter()
                    .map(|ty| maps.lookup_impl(&table, ty, name))
                    .collect(),
            })
            .collect();
        // Pass 3.5: static analysis — prune dead alternatives, infer
        // determinism, collect lints. Runs after dispatch materialization
        // (inter-procedural facts flow through the tables) and before
        // bytecode emission (pass 4 compiles the *pruned* plans, so goal
        // trees and bytecode stay mirror images).
        let analysis = if opts.analysis {
            Some(crate::analysis::analyze(
                &table,
                &mut methods,
                &dispatch,
                &crate::analysis::AnalysisOptions {
                    smt: opts.smt_prune_check,
                },
            ))
        } else {
            None
        };
        // Pass 4: emit the flat bytecode of every lowered body.
        if bytecode {
            Self::emit_bytecode(&mut methods, &dispatch, None);
        }
        let class_ctor_by_type: Box<[Option<PlanId>]> = type_names
            .iter()
            .map(|ty| maps.class_ctor(&table, ty))
            .collect();
        debug_assert_eq!(class_ctor_by_type.len(), n);
        let equals_dispatch = registry.ids.get("equals").copied();
        Arc::new(ProgramPlan {
            table,
            methods,
            maps,
            dispatch_ids: registry.ids,
            dispatch,
            class_ctor_by_type,
            equals_dispatch,
            bc_enabled: bytecode,
            analysis,
        })
    }

    /// Recompiles after an edit whose [`structure`](crate::incremental::structure_hash)
    /// is unchanged, sharing every clean plan with the previous generation.
    ///
    /// `dirty[pid]` must be true exactly for the plans whose body
    /// fingerprint changed (with an unchanged structure, signatures are
    /// constant, so bodies are the only thing that can differ). The caller
    /// guarantees plan ids, interned symbols and dispatched names line up
    /// with `prev` — which is what an unchanged structure hash certifies.
    ///
    /// Sharing is by `Arc`: clean plans are cloned pointers, the dispatch
    /// block is reused wholesale when no new name was registered, and
    /// bytecode is re-emitted only for changed plans and for plans whose
    /// recorded [`MethodPlan::bc_deps`] intersect the changed set.
    pub fn recompile(
        prev: &ProgramPlan,
        table: Arc<ClassTable>,
        dirty: &[bool],
        opts: PlanOptions,
    ) -> Arc<ProgramPlan> {
        let bytecode = opts.bytecode;
        let (maps, infos) = Self::build_maps(&table);
        assert_eq!(
            infos.len(),
            prev.methods.len(),
            "recompile requires an unchanged program structure"
        );
        assert_eq!(dirty.len(), prev.methods.len());
        // Seed the registry from the previous generation's dispatch names,
        // in order: every DispatchId embedded in a reused plan's goals (and
        // bytecode) keeps meaning the same name; new names append.
        let mut registry = DispatchRegistry::default();
        for t in prev.dispatch.iter() {
            registry.id_for(&t.name);
        }
        let prev_names = registry.names.len();
        // Pass 2': re-lower dirty bodies only; clean plans are shared.
        let mut methods: Vec<Arc<MethodPlan>> = infos
            .iter()
            .enumerate()
            .map(|(pid, m)| {
                if dirty[pid] {
                    Arc::new(lower_method(&table, &maps, &mut registry, m))
                } else {
                    Arc::clone(&prev.methods[pid])
                }
            })
            .collect();
        // Pass 3': dispatch tables are structurally determined, so they can
        // only grow — share the whole block unless a dirty body dispatched
        // a name never seen before.
        let type_names: Vec<&str> = table.types().map(|t| t.name.as_str()).collect();
        let dispatch: Arc<[DispatchTable]> = if registry.names.len() == prev_names {
            Arc::clone(&prev.dispatch)
        } else {
            registry
                .names
                .iter()
                .map(|name| DispatchTable {
                    name: name.clone(),
                    by_type: type_names
                        .iter()
                        .map(|ty| maps.lookup_impl(&table, ty, name))
                        .collect(),
                })
                .collect()
        };
        // Pass 3.5': analysis with carry-forward — pruning (the potentially
        // solver-backed pass) runs only on dirty plans, reusing the previous
        // report's prune records for clean ones; the cheap inter-procedural
        // fact fixpoint and lints re-run globally, rewriting a clean plan's
        // determinism bits only when they actually changed (which marks it
        // changed for the bytecode pass below).
        let analysis = if opts.analysis {
            Some(crate::analysis::analyze_incremental(
                &table,
                &mut methods,
                &dispatch,
                &crate::analysis::AnalysisOptions {
                    smt: opts.smt_prune_check,
                },
                prev.analysis.as_ref().map(|a| (a, dirty)),
            ))
        } else {
            None
        };
        // Pass 4': re-emit bytecode for changed plans and for plans whose
        // bytecode specialized against a changed plan's body.
        if bytecode {
            let changed: Vec<bool> = methods
                .iter()
                .zip(&prev.methods)
                .map(|(a, b)| !Arc::ptr_eq(a, b))
                .collect();
            let need: Vec<bool> = (0..methods.len())
                .map(|pid| changed[pid] || prev.methods[pid].bc_deps.iter().any(|&d| changed[d]))
                .collect();
            Self::emit_bytecode(&mut methods, &dispatch, Some(&need));
        }
        let class_ctor_by_type: Box<[Option<PlanId>]> = type_names
            .iter()
            .map(|ty| maps.class_ctor(&table, ty))
            .collect();
        let equals_dispatch = registry.ids.get("equals").copied();
        Arc::new(ProgramPlan {
            table,
            methods,
            maps,
            dispatch_ids: registry.ids,
            dispatch,
            class_ctor_by_type,
            equals_dispatch,
            bc_enabled: bytecode,
            analysis,
        })
    }

    /// Pass 1: the resolution maps and the flat method list, in plan-id
    /// order (types in declaration order, their methods in declaration
    /// order, then free methods).
    fn build_maps(table: &ClassTable) -> (PlanMaps, Vec<&MethodInfo>) {
        let mut maps = PlanMaps::default();
        let mut infos: Vec<&MethodInfo> = Vec::new();
        let interned = |name: &str| {
            table
                .interner()
                .lookup(name)
                .expect("declared names are interned by ClassTable::build")
        };
        for ty in table.types() {
            let ty_sym = interned(&ty.name);
            for m in &ty.methods {
                let id = infos.len();
                infos.push(m);
                let key = (ty_sym, interned(&m.decl.name));
                maps.declared.entry(key).or_insert(id);
                let has_body = !matches!(m.decl.body, MethodBody::Absent);
                if has_body {
                    maps.declared_impl.entry(key).or_insert(id);
                }
                if m.decl.kind == MethodKind::ClassConstructor {
                    maps.class_ctors.entry(ty_sym).or_insert(id);
                }
                maps.bodied.push(has_body);
            }
        }
        for m in table.free_methods() {
            let id = infos.len();
            infos.push(m);
            maps.free.entry(m.decl.name.clone()).or_insert(id);
            maps.bodied.push(!matches!(m.decl.body, MethodBody::Absent));
        }
        (maps, infos)
    }

    /// Pass 4: emit the flat bytecode of every lowered body for which
    /// `need[pid]` holds (all bodies when `need` is `None`). The plan stays
    /// alongside as the lowering source and the differential oracle. Block
    /// bodies compile against the whole program (methods + dispatch tables)
    /// so monomorphic call sites and field-projection switch arms can be
    /// specialized, which is why the bytecode of all bodies is computed
    /// first and attached after; the plans consulted along the way are
    /// recorded as [`MethodPlan::bc_deps`].
    fn emit_bytecode(
        methods: &mut [Arc<MethodPlan>],
        dispatch: &[DispatchTable],
        need: Option<&[bool]>,
    ) {
        type Compiled = (
            Option<crate::bytecode::BcBlock>,
            Option<crate::bytecode::FastCtor>,
            Vec<PlanId>,
        );
        let compiled: Vec<Option<Compiled>> = {
            let ctx = crate::bytecode::BcCtx::new(methods, dispatch);
            methods
                .iter()
                .enumerate()
                .map(|(pid, mp)| {
                    if !need.is_none_or(|n| n[pid]) {
                        return None;
                    }
                    let block = match &mp.body {
                        BodyPlan::Block(bp) => Some(crate::bytecode::compile_block(bp, &ctx)),
                        _ => None,
                    };
                    let deps = ctx.take_deps();
                    let fast = crate::bytecode::fast_ctor(mp);
                    Some((block, fast, deps))
                })
                .collect()
        };
        for (pid, item) in compiled.into_iter().enumerate() {
            let Some((block, fast, deps)) = item else {
                continue;
            };
            let mp = Arc::make_mut(&mut methods[pid]);
            mp.fast_ctor = fast;
            mp.bc_deps = deps;
            match &mut mp.body {
                BodyPlan::Formula {
                    forward,
                    matching,
                    equals_bound,
                } => {
                    forward.bc = Some(crate::bytecode::compile_body(forward, &forward.param_slots));
                    matching.bc = Some(crate::bytecode::compile_body(matching, &[]));
                    if let Some(eb) = equals_bound {
                        // The runtime's deep-equality bridge seeds only
                        // the first parameter (the other side of the
                        // equation), so only it is must-bound.
                        let seed: Vec<SlotId> =
                            eb.param_slots.first().copied().into_iter().collect();
                        eb.bc = Some(crate::bytecode::compile_body(eb, &seed));
                    }
                }
                BodyPlan::Block(bp) => {
                    bp.bc = block;
                }
                BodyPlan::Absent => {}
            }
        }
    }

    /// Whether pass 4 emitted bytecode for this plan.
    pub fn bytecode_enabled(&self) -> bool {
        self.bc_enabled
    }

    /// What the static-analysis pass found: lints, prunes, determinism
    /// counts. `None` when the plan was compiled with `analysis: false`.
    pub fn analysis(&self) -> Option<&crate::analysis::AnalysisReport> {
        self.analysis.as_ref()
    }

    /// The class table the plan was compiled from.
    pub fn table(&self) -> &Arc<ClassTable> {
        &self.table
    }

    /// All compiled method plans (`Arc`-shared across generations).
    pub fn methods(&self) -> &[Arc<MethodPlan>] {
        &self.methods
    }

    /// A method plan by id.
    pub fn method(&self, id: PlanId) -> &MethodPlan {
        &self.methods[id]
    }

    /// Resolves `name` on `ty` like `ClassTable::lookup_method`: the first
    /// declaration found on the type itself, then on supertypes.
    pub fn lookup_declared(&self, ty: &str, name: &str) -> Option<PlanId> {
        self.maps.lookup_declared(&self.table, ty, name)
    }

    /// Resolves the *implementation* of `name` reachable from the concrete
    /// class `class` (the interpreter's `find_impl`): the first declaration
    /// with a body on the class itself, then on supertypes.
    pub fn lookup_impl(&self, class: &str, name: &str) -> Option<PlanId> {
        self.maps.lookup_impl(&self.table, class, name)
    }

    /// The class constructor plan of a class.
    pub fn class_ctor(&self, class: &str) -> Option<PlanId> {
        self.maps.class_ctor(&self.table, class)
    }

    /// The class constructor plan of the type at `type_index`.
    pub fn class_ctor_at(&self, type_index: u32) -> Option<PlanId> {
        self.class_ctor_by_type[type_index as usize]
    }

    /// A free-standing method plan by name.
    pub fn lookup_free(&self, name: &str) -> Option<PlanId> {
        self.maps.free.get(name).copied()
    }

    /// The dispatch table registered for `name`, if any.
    pub fn dispatch_id(&self, name: &str) -> Option<DispatchId> {
        self.dispatch_ids.get(name).copied()
    }

    /// The implementation `name`'s dispatch table resolves for the class
    /// at `type_index` — one array load, the runtime's whole dynamic
    /// dispatch.
    pub fn dispatch_at(&self, id: DispatchId, type_index: u32) -> Option<PlanId> {
        self.dispatch[id as usize].at(type_index)
    }

    /// The dispatch table of `equals` (the deep-equality hot path).
    pub fn equals_dispatch(&self) -> Option<DispatchId> {
        self.equals_dispatch
    }

    /// All dispatch tables (diagnostics / tests).
    pub fn dispatch_tables(&self) -> &[DispatchTable] {
        &self.dispatch
    }
}

// ---------------------------------------------------------------------------
// Binding state for the must/may analysis
// ---------------------------------------------------------------------------

/// What the lowering knows about one variable's boundness at a program
/// point: `must` ⊆ (actually bound at run time) ⊆ `may`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Bound {
    must: bool,
    may: bool,
}

/// Per-slot binding state during lowering.
#[derive(Debug, Clone, Default)]
struct SlotState {
    slots: Vec<Bound>,
}

impl SlotState {
    fn get(&self, s: SlotId) -> Bound {
        self.slots.get(s as usize).copied().unwrap_or_default()
    }

    fn ensure(&mut self, s: SlotId) {
        if self.slots.len() <= s as usize {
            self.slots.resize(s as usize + 1, Bound::default());
        }
    }

    fn bind_must(&mut self, s: SlotId) {
        self.ensure(s);
        self.slots[s as usize] = Bound {
            must: true,
            may: true,
        };
    }

    fn bind_may(&mut self, s: SlotId) {
        self.ensure(s);
        self.slots[s as usize].may = true;
    }

    fn apply(&mut self, binds: &Binds) {
        for &s in &binds.must {
            self.bind_must(s);
        }
        for &s in &binds.may {
            self.bind_may(s);
        }
    }

    /// Intersection of musts / union of mays across branches.
    fn join(&mut self, other: &SlotState) {
        let n = self.slots.len().max(other.slots.len());
        self.slots.resize(n, Bound::default());
        for (i, b) in self.slots.iter_mut().enumerate() {
            let o = other.slots.get(i).copied().unwrap_or_default();
            b.must &= o.must;
            b.may |= o.may;
        }
    }
}

/// Slots a conjunct binds when it succeeds.
#[derive(Debug, Clone, Default)]
struct Binds {
    /// Bound on every success path.
    must: Vec<SlotId>,
    /// Bound on at least one success path.
    may: Vec<SlotId>,
}

impl Binds {
    fn add_must(&mut self, s: SlotId) {
        if !self.must.contains(&s) {
            self.must.push(s);
        }
        self.add_may(s);
    }

    fn add_may(&mut self, s: SlotId) {
        if !self.may.contains(&s) {
            self.may.push(s);
        }
    }

    fn union(&mut self, other: &Binds) {
        for &s in &other.must {
            self.add_must(s);
        }
        for &s in &other.may {
            self.add_may(s);
        }
    }

    /// Branch combination: intersect musts, union mays.
    fn branch(&mut self, other: &Binds) {
        self.must.retain(|s| other.must.contains(s));
        for &s in &other.may {
            self.add_may(s);
        }
    }
}

// ---------------------------------------------------------------------------
// The lowering context
// ---------------------------------------------------------------------------

/// How call / pattern sites resolve while lowering: against the in-progress
/// pass-1 maps during [`ProgramPlan::compile`], or against a finished plan
/// for standalone formulas lowered at query time.
enum Res<'t> {
    /// Compiling a program: maps are complete, dispatch ids are handed out
    /// on demand.
    Building {
        maps: &'t PlanMaps,
        registry: &'t mut DispatchRegistry,
    },
    /// Lowering a standalone formula against a finished plan: only names
    /// the plan registered dispatch through tables.
    Frozen(&'t ProgramPlan),
}

impl Res<'_> {
    fn dispatch_id(&mut self, name: &str) -> Option<DispatchId> {
        match self {
            Res::Building { registry, .. } => Some(registry.id_for(name)),
            Res::Frozen(plan) => plan.dispatch_id(name),
        }
    }

    fn lookup_impl(&self, table: &ClassTable, class: &str, name: &str) -> Option<PlanId> {
        match self {
            Res::Building { maps, .. } => maps.lookup_impl(table, class, name),
            Res::Frozen(plan) => plan.lookup_impl(class, name),
        }
    }

    fn lookup_declared(&self, table: &ClassTable, ty: &str, name: &str) -> Option<PlanId> {
        match self {
            Res::Building { maps, .. } => maps.lookup_declared(table, ty, name),
            Res::Frozen(plan) => plan.lookup_declared(ty, name),
        }
    }

    fn class_ctor(&self, table: &ClassTable, class: &str) -> Option<PlanId> {
        match self {
            Res::Building { maps, .. } => maps.class_ctor(table, class),
            Res::Frozen(plan) => plan.class_ctor(class),
        }
    }

    fn lookup_free(&self, name: &str) -> Option<PlanId> {
        match self {
            Res::Building { maps, .. } => maps.free.get(name).copied(),
            Res::Frozen(plan) => plan.lookup_free(name),
        }
    }

    fn has_body(&self, pid: PlanId) -> bool {
        match self {
            Res::Building { maps, .. } => maps.bodied[pid],
            Res::Frozen(plan) => !matches!(plan.method(pid).body, BodyPlan::Absent),
        }
    }
}

/// Mutable lowering state for one solved form / block plan.
struct Lowerer<'t> {
    table: &'t ClassTable,
    frame: FrameLayout,
    /// `Some(owner)` when `this` is statically in scope; the owner class is
    /// used for the field-of-`this` must-groundness test.
    this_owner: Option<String>,
    /// Call-site resolution and dispatch-table registration.
    res: Res<'t>,
}

/// Which groundness approximation a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Approx {
    Must,
    May,
}

impl<'t> Lowerer<'t> {
    fn new(table: &'t ClassTable, this_owner: Option<String>, res: Res<'t>) -> Self {
        Lowerer {
            table,
            frame: FrameLayout::default(),
            this_owner,
            res,
        }
    }

    fn slot(&mut self, name: &str) -> SlotId {
        self.frame.slot(name)
    }

    /// Resolves the class restriction of a declared type.
    fn class_check(&self, ty: &Type) -> ClassCheck {
        match ty {
            Type::Named(t) => match self.table.type_index(t) {
                Some(i) => ClassCheck::Subtype(i),
                None => ClassCheck::Dynamic,
            },
            _ => ClassCheck::Any,
        }
    }

    /// Resolves a statically named class at a call / pattern site.
    /// `class_ctor_call` marks `Class(args)` expressions, whose evaluation
    /// position resolves through the class constructor only.
    fn class_ref(&self, class: &str, name: &str, class_ctor_call: bool) -> ClassRef {
        let match_pid = self
            .res
            .lookup_impl(self.table, class, name)
            .or_else(|| self.res.class_ctor(self.table, class));
        let construct_pid = if class_ctor_call {
            self.res.class_ctor(self.table, class)
        } else {
            // Mirrors the evaluator's `construct`: the first declaration
            // (or the class constructor), falling through to the first
            // implementation when only a bodiless signature is reachable.
            match self
                .res
                .lookup_declared(self.table, class, name)
                .or_else(|| self.res.class_ctor(self.table, class))
            {
                Some(d) if self.res.has_body(d) => Some(d),
                Some(_) => self.res.lookup_impl(self.table, class, name),
                None => None,
            }
        };
        ClassRef {
            name: class.to_owned(),
            type_index: self.table.type_index(class),
            construct_pid,
            match_pid,
        }
    }

    /// Mask of every class that is a subtype of the type at `sup`.
    fn subtype_mask(&self, sup: u32) -> CaseGuard {
        let n = self.table.num_types() as u32;
        CaseGuard::Classes((0..n).map(|c| self.table.is_subtype_idx(c, sup)).collect())
    }

    /// The tag-dispatch guard of one case pattern: which scrutinee classes
    /// could possibly match it. Conservative — a pattern whose match could
    /// *error* (instead of merely failing) guards as [`CaseGuard::Any`], so
    /// skipping a guarded-out case is always observationally identical to
    /// running the pattern and failing.
    fn case_guard(&self, pat: &PExpr) -> CaseGuard {
        match pat {
            // Literals and arithmetic patterns only ever match primitive
            // values: an object scrutinee fails before any work happens.
            PExpr::Int(_)
            | PExpr::Bool(_)
            | PExpr::Str(_)
            | PExpr::Null
            | PExpr::Binary(..)
            | PExpr::Neg(_) => CaseGuard::Classes(vec![false; self.table.num_types()].into()),
            PExpr::Decl(_, _, check) => match check {
                ClassCheck::Subtype(i) => self.subtype_mask(*i),
                // `Dynamic` falls back to the string walk at run time (it
                // can admit classes with erroneous supertype chains), so it
                // cannot be pruned statically.
                ClassCheck::Any | ClassCheck::Dynamic => CaseGuard::Any,
            },
            PExpr::Call {
                kind: CallKind::StaticConstruct(cr),
                ..
            } => self.static_ctor_guard(cr),
            PExpr::Call {
                kind: CallKind::ClassCtor(cr),
                receiver: None,
                ..
            } => self.static_ctor_guard(cr),
            PExpr::As(a, b) => self.case_guard(a).intersect(self.case_guard(b)),
            PExpr::Where(p, _) => self.case_guard(p),
            PExpr::OrPat(a, b) => self.case_guard(a).union(self.case_guard(b)),
            // Runtime-class-dispatched constructor patterns error (not
            // fail) when the class lacks the constructor, and everything
            // else is unrestricted.
            _ => CaseGuard::Any,
        }
    }

    /// Guard of a statically classed constructor pattern `C.mk(..)` /
    /// `C(..)`: subtypes of `C` can match directly; other classes only
    /// through an equality-constructor conversion, so the mask applies
    /// only when `C` has no `equals` implementation.
    fn static_ctor_guard(&self, cr: &ClassRef) -> CaseGuard {
        if cr.match_pid.is_none() {
            // Unresolvable constructor: matching errors for every value.
            return CaseGuard::Any;
        }
        if self
            .res
            .lookup_impl(self.table, &cr.name, "equals")
            .is_some()
        {
            return CaseGuard::Any;
        }
        match cr.type_index {
            Some(i) => self.subtype_mask(i),
            None => CaseGuard::Any,
        }
    }

    // -- expression lowering ------------------------------------------------

    fn lower_expr(&mut self, e: &Expr, st: &SlotState) -> PExpr {
        match e {
            Expr::IntLit(n) => PExpr::Int(*n),
            Expr::BoolLit(b) => PExpr::Bool(*b),
            Expr::StrLit(s) => PExpr::Str(s.clone()),
            Expr::Null => PExpr::Null,
            Expr::This => PExpr::This,
            Expr::Result => PExpr::Result(self.slot("result")),
            Expr::Wildcard => PExpr::Wildcard,
            Expr::Var(name) => PExpr::Name {
                slot: self.slot(name),
                name: name.clone(),
                field_sym: self.table.interner().lookup(name),
                class_ref: self.table.type_info(name).is_some(),
            },
            Expr::Decl(ty, name) => {
                let slot = if name == "_" {
                    None
                } else {
                    Some(self.slot(name))
                };
                PExpr::Decl(ty.clone(), slot, self.class_check(ty))
            }
            Expr::Field(b, f) => PExpr::Field(
                Box::new(self.lower_expr(b, st)),
                f.clone(),
                self.table.interner().lookup(f),
            ),
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                let kind = match receiver.as_deref() {
                    Some(Expr::Var(class)) if self.table.type_info(class).is_some() => {
                        CallKind::StaticConstruct(self.class_ref(class, name, false))
                    }
                    Some(_) => CallKind::Instance,
                    None => {
                        if self.table.type_info(name).is_some() {
                            CallKind::ClassCtor(self.class_ref(name, name, true))
                        } else if self.table.lookup_free_method(name).is_some() {
                            CallKind::Free(self.res.lookup_free(name))
                        } else if self.this_owner.is_some() {
                            CallKind::ThisMethod
                        } else {
                            CallKind::Unresolved
                        }
                    }
                };
                let dispatch = self.res.dispatch_id(name);
                // Argument patterns are matched left to right; later args
                // (and their `where` clauses) see the binds of earlier ones.
                let mut inner = st.clone();
                let recv = receiver
                    .as_deref()
                    .map(|r| Box::new(self.lower_expr(r, &inner)));
                let mut lowered_args = Vec::with_capacity(args.len());
                for a in args {
                    lowered_args.push(self.lower_expr(a, &inner));
                    let b = self.pat_binds(a);
                    inner.apply(&b);
                }
                PExpr::Call {
                    receiver: recv,
                    name: name.clone(),
                    args: lowered_args,
                    kind,
                    dispatch,
                }
            }
            Expr::Index(a, b) => PExpr::Index(
                Box::new(self.lower_expr(a, st)),
                Box::new(self.lower_expr(b, st)),
            ),
            Expr::NewArray(ty, a) => PExpr::NewArray(ty.clone(), Box::new(self.lower_expr(a, st))),
            Expr::Binary(op, a, b) => PExpr::Binary(
                *op,
                Box::new(self.lower_expr(a, st)),
                Box::new(self.lower_expr(b, st)),
            ),
            Expr::Neg(a) => PExpr::Neg(Box::new(self.lower_expr(a, st))),
            Expr::Tuple(xs) => PExpr::Tuple(xs.iter().map(|x| self.lower_expr(x, st)).collect()),
            Expr::As(a, b) => {
                let la = self.lower_expr(a, st);
                let mut inner = st.clone();
                let ba = self.pat_binds(a);
                inner.apply(&ba);
                let lb = self.lower_expr(b, &inner);
                PExpr::As(Box::new(la), Box::new(lb))
            }
            Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => PExpr::OrPat(
                Box::new(self.lower_expr(a, st)),
                Box::new(self.lower_expr(b, st)),
            ),
            Expr::Where(p, f) => {
                let lp = self.lower_expr(p, st);
                // The refinement formula runs after the pattern matched.
                let mut inner = st.clone();
                let bp = self.pat_binds(p);
                inner.apply(&bp);
                let goal = self.lower_formula(f, &mut inner);
                PExpr::Where(Box::new(lp), Box::new(goal))
            }
        }
    }

    // -- groundness (static, must/may) --------------------------------------

    fn ground(&mut self, e: &Expr, st: &SlotState, approx: Approx) -> bool {
        match e {
            Expr::IntLit(_) | Expr::BoolLit(_) | Expr::StrLit(_) | Expr::Null => true,
            Expr::This => self.this_owner.is_some(),
            Expr::Result => {
                let s = self.slot("result");
                let b = st.get(s);
                match approx {
                    Approx::Must => b.must,
                    Approx::May => b.may,
                }
            }
            Expr::Wildcard | Expr::Decl(..) => false,
            Expr::Var(name) => {
                let s = self.slot(name);
                let b = st.get(s);
                let bound = match approx {
                    Approx::Must => b.must,
                    Approx::May => b.may,
                };
                bound || self.field_ground(name, approx) || self.table.type_info(name).is_some()
            }
            Expr::Field(b, _) => self.ground(b, st, approx),
            Expr::Call { receiver, args, .. } => {
                receiver
                    .as_deref()
                    .map(|r| self.ground(r, st, approx))
                    .unwrap_or(true)
                    && args.iter().all(|a| self.ground(a, st, approx))
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                self.ground(a, st, approx) && self.ground(b, st, approx)
            }
            Expr::NewArray(_, a) | Expr::Neg(a) => self.ground(a, st, approx),
            Expr::Tuple(xs) => xs.iter().all(|x| self.ground(x, st, approx)),
            Expr::As(a, b) | Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                self.ground(a, st, approx) && self.ground(b, st, approx)
            }
            Expr::Where(p, _) => self.ground(p, st, approx),
        }
    }

    /// Whether `name` resolves to a field of `this`. The must variant uses
    /// the static owner class; the may variant admits any subtype of it
    /// (the runtime class of `this` may declare more fields).
    fn field_ground(&self, name: &str, approx: Approx) -> bool {
        let Some(owner) = &self.this_owner else {
            return false;
        };
        match approx {
            Approx::Must => self.table.field_type(owner, name).is_some(),
            Approx::May => self.table.types().any(|t| {
                self.table.is_subtype(&t.name, owner)
                    && self.table.field_type(&t.name, name).is_some()
            }),
        }
    }

    // -- binds analysis ------------------------------------------------------

    /// Slots a *pattern* binds when matched successfully.
    fn pat_binds(&mut self, e: &Expr) -> Binds {
        let mut b = Binds::default();
        self.collect_pat_binds(e, &mut b);
        b
    }

    fn collect_pat_binds(&mut self, e: &Expr, out: &mut Binds) {
        match e {
            Expr::Var(name) => {
                let s = self.slot(name);
                out.add_must(s);
            }
            Expr::Decl(_, name) if name != "_" => {
                let s = self.slot(name);
                out.add_must(s);
            }
            Expr::Result => {
                let s = self.slot("result");
                out.add_must(s);
            }
            Expr::Call { args, .. } => {
                // The receiver is only used for dispatch; args are matched.
                for a in args {
                    self.collect_pat_binds(a, out);
                }
            }
            Expr::Binary(_, a, b) | Expr::As(a, b) => {
                self.collect_pat_binds(a, out);
                self.collect_pat_binds(b, out);
            }
            Expr::Neg(a) => self.collect_pat_binds(a, out),
            Expr::Tuple(xs) => {
                for x in xs {
                    self.collect_pat_binds(x, out);
                }
            }
            Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                let mut ba = Binds::default();
                self.collect_pat_binds(a, &mut ba);
                let mut bb = Binds::default();
                self.collect_pat_binds(b, &mut bb);
                ba.branch(&bb);
                out.union(&ba);
            }
            Expr::Where(p, f) => {
                self.collect_pat_binds(p, out);
                let fb = self.formula_binds(f);
                out.union(&fb);
            }
            // Field access, indexing, literals, `this`, wildcards and
            // declarations of `_` bind nothing when matched (field and index
            // patterns are evaluated, not inverted).
            _ => {}
        }
    }

    /// Slots a formula binds when it succeeds.
    fn formula_binds(&mut self, f: &Formula) -> Binds {
        match f {
            Formula::Bool(_) => Binds::default(),
            Formula::Cmp(CmpOp::Eq, l, r) => {
                let mut b = self.pat_binds(l);
                let rb = self.pat_binds(r);
                b.union(&rb);
                b
            }
            // Ordering comparisons evaluate both sides; nothing is bound.
            Formula::Cmp(..) => Binds::default(),
            Formula::And(a, b) => {
                let mut ba = self.formula_binds(a);
                let bb = self.formula_binds(b);
                ba.union(&bb);
                ba
            }
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                let mut ba = self.formula_binds(a);
                let bb = self.formula_binds(b);
                ba.branch(&bb);
                ba
            }
            // Negation emits the *original* bindings.
            Formula::Not(_) => Binds::default(),
            Formula::Atom(Expr::Call { args, .. }) => {
                let mut b = Binds::default();
                for a in args {
                    let ab = self.pat_binds(a);
                    b.union(&ab);
                }
                b
            }
            // A bare declaration atom and ground boolean atoms bind nothing.
            Formula::Atom(_) => Binds::default(),
        }
    }

    // -- readiness -----------------------------------------------------------

    /// Lowers the interpreter's `conjunct_ready` test for one conjunct.
    fn lower_ready(&mut self, f: &Formula, st: &SlotState) -> ReadyCheck {
        match f {
            Formula::Bool(_) => ReadyCheck::Always,
            Formula::Cmp(CmpOp::Eq, l, r) => ReadyCheck::EitherGround(
                Box::new(self.lower_expr(l, st)),
                Box::new(self.lower_expr(r, st)),
            ),
            Formula::Cmp(_, l, r) => ReadyCheck::BothGround(
                Box::new(self.lower_expr(l, st)),
                Box::new(self.lower_expr(r, st)),
            ),
            Formula::Atom(Expr::Call { receiver, .. }) => match receiver {
                Some(r) => ReadyCheck::Ground(self.lower_expr(r, st)),
                None => ReadyCheck::Always,
            },
            Formula::Atom(Expr::Decl(..)) | Formula::Atom(Expr::Wildcard) => ReadyCheck::Never,
            Formula::Atom(e) => ReadyCheck::Ground(self.lower_expr(e, st)),
            Formula::Not(inner) => self.lower_ready(inner, st),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                ReadyCheck::All(vec![self.lower_ready(a, st), self.lower_ready(b, st)])
            }
        }
    }

    /// Static readiness of a conjunct under an approximation.
    fn ready(&mut self, f: &Formula, st: &SlotState, approx: Approx) -> bool {
        match f {
            Formula::Bool(_) => true,
            Formula::Cmp(CmpOp::Eq, l, r) => {
                self.ground(l, st, approx) || self.ground(r, st, approx)
            }
            Formula::Cmp(_, l, r) => self.ground(l, st, approx) && self.ground(r, st, approx),
            Formula::Atom(Expr::Call { receiver, .. }) => match receiver {
                Some(r) => self.ground(r, st, approx),
                None => true,
            },
            Formula::Atom(e) => self.ground(e, st, approx),
            Formula::Not(inner) => self.ready(inner, st, approx),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.ready(a, st, approx) && self.ready(b, st, approx)
            }
        }
    }

    // -- formula lowering ----------------------------------------------------

    /// Lowers a formula under the current binding state, updating the state
    /// with the formula's binds.
    fn lower_formula(&mut self, f: &Formula, st: &mut SlotState) -> Goal {
        let goal = match f {
            Formula::Bool(true) => Goal::True,
            Formula::Bool(false) => Goal::Fail,
            Formula::And(..) => {
                let mut conjuncts = Vec::new();
                flatten_and(f, &mut conjuncts);
                return self.lower_conjunction(&conjuncts, st);
            }
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                let mut branches = Vec::new();
                let mut sa = st.clone();
                branches.push(self.lower_formula(a, &mut sa));
                let mut sb = st.clone();
                branches.push(self.lower_formula(b, &mut sb));
                Goal::Any(branches)
            }
            Formula::Not(inner) => {
                let mut si = st.clone();
                Goal::Not(Box::new(self.lower_formula(inner, &mut si)))
            }
            Formula::Cmp(CmpOp::Eq, lhs, rhs) => return self.lower_equation(lhs, rhs, st),
            Formula::Cmp(op, lhs, rhs) => {
                Goal::Compare(*op, self.lower_expr(lhs, st), self.lower_expr(rhs, st))
            }
            Formula::Atom(e) => match e {
                Expr::Call {
                    receiver,
                    name,
                    args,
                } => {
                    let recv = receiver.as_deref().map(|r| self.lower_expr(r, st));
                    let dispatch = self.res.dispatch_id(name);
                    let mut inner = st.clone();
                    let mut lowered_args = Vec::with_capacity(args.len());
                    for a in args {
                        lowered_args.push(self.lower_expr(a, &inner));
                        let b = self.pat_binds(a);
                        inner.apply(&b);
                    }
                    Goal::Invoke {
                        receiver: recv,
                        name: name.clone(),
                        args: lowered_args,
                        dispatch,
                    }
                }
                Expr::Decl(..) => Goal::Trivial,
                other => Goal::Test(self.lower_expr(other, st)),
            },
        };
        let binds = self.formula_binds(f);
        st.apply(&binds);
        goal
    }

    /// Lowers an equation, mirroring the interpreter's `solve_cmp`
    /// preprocessing: pattern disjunction distributes over the equation and
    /// tuple equations decompose componentwise.
    fn lower_equation(&mut self, lhs: &Expr, rhs: &Expr, st: &mut SlotState) -> Goal {
        if let Expr::OrPat(a, b) | Expr::DisjointOr(a, b) = rhs {
            let mut sa = st.clone();
            let ga = self.lower_equation(lhs, a, &mut sa);
            let mut sb = st.clone();
            let gb = self.lower_equation(lhs, b, &mut sb);
            sa.join(&sb);
            *st = sa;
            return Goal::Any(vec![ga, gb]);
        }
        if let Expr::OrPat(a, b) | Expr::DisjointOr(a, b) = lhs {
            let mut sa = st.clone();
            let ga = self.lower_equation(a, rhs, &mut sa);
            let mut sb = st.clone();
            let gb = self.lower_equation(b, rhs, &mut sb);
            sa.join(&sb);
            *st = sa;
            return Goal::Any(vec![ga, gb]);
        }
        if let (Expr::Tuple(ls), Expr::Tuple(rs)) = (lhs, rhs) {
            if ls.len() == rs.len() {
                let conjuncts: Vec<Formula> = ls
                    .iter()
                    .zip(rs.iter())
                    .map(|(l, r)| Formula::Cmp(CmpOp::Eq, l.clone(), r.clone()))
                    .collect();
                if conjuncts.is_empty() {
                    return Goal::True;
                }
                return self.lower_conjunction(&conjuncts, st);
            }
        }
        let goal = Goal::Unify(self.lower_expr(lhs, st), self.lower_expr(rhs, st));
        let f = Formula::Cmp(CmpOp::Eq, lhs.clone(), rhs.clone());
        let binds = self.formula_binds(&f);
        st.apply(&binds);
        goal
    }

    /// Schedules and lowers a conjunction: the static solved form when the
    /// must/may analysis agrees on the order, the dynamic fallback
    /// otherwise.
    fn lower_conjunction(&mut self, conjuncts: &[Formula], st: &mut SlotState) -> Goal {
        // Simulate the interpreter's dynamic scheduling under both
        // approximations.
        let mut sim = st.clone();
        let mut remaining: Vec<usize> = (0..conjuncts.len()).collect();
        let mut order = Vec::with_capacity(conjuncts.len());
        let mut exact = true;
        while !remaining.is_empty() {
            let i_must = remaining
                .iter()
                .position(|&i| self.ready(&conjuncts[i], &sim, Approx::Must));
            let i_may = remaining
                .iter()
                .position(|&i| self.ready(&conjuncts[i], &sim, Approx::May));
            match (i_must, i_may) {
                (Some(a), Some(b)) if a == b => {
                    let chosen = remaining.remove(a);
                    order.push(chosen);
                    let binds = self.formula_binds(&conjuncts[chosen]);
                    sim.apply(&binds);
                }
                _ => {
                    exact = false;
                    break;
                }
            }
        }
        if exact {
            // Lower each conjunct in its scheduled position.
            let mut goals = Vec::with_capacity(order.len());
            for &i in &order {
                goals.push(self.lower_formula(&conjuncts[i], st));
            }
            return Goal::Seq(goals);
        }
        // Dynamic fallback: the run-time scheduler may run the conjuncts in
        // any order, so each is lowered with every other conjunct's possible
        // binds in the may-set.
        let mut widened = st.clone();
        for c in conjuncts {
            let b = self.formula_binds(c);
            for &s in &b.may {
                widened.bind_may(s);
            }
        }
        let mut lowered = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            let check = self.lower_ready(c, &widened);
            let mut sc = widened.clone();
            let goal = self.lower_formula(c, &mut sc);
            lowered.push((check, goal));
        }
        // After the whole conjunction, every conjunct has run.
        for c in conjuncts {
            let b = self.formula_binds(c);
            st.apply(&b);
        }
        Goal::DynSeq(lowered)
    }

    // -- statement lowering --------------------------------------------------

    fn lower_block(&mut self, stmts: &[Stmt], st: &mut SlotState) -> Vec<StmtPlan> {
        stmts.iter().map(|s| self.lower_stmt(s, st)).collect()
    }

    fn lower_stmt(&mut self, stmt: &Stmt, st: &mut SlotState) -> StmtPlan {
        match stmt {
            Stmt::Let(f) => StmtPlan::Let(self.lower_formula(f, st)),
            Stmt::Switch {
                scrutinees,
                cases,
                default,
            } => {
                let lowered_scrutinees: Vec<PExpr> =
                    scrutinees.iter().map(|s| self.lower_expr(s, st)).collect();
                // Resolve fall-through targets once.
                let mut case_plans = Vec::with_capacity(cases.len());
                let mut bodies = Vec::with_capacity(cases.len());
                for (idx, case) in cases.iter().enumerate() {
                    let mut inner = st.clone();
                    let mut pats = Vec::with_capacity(case.patterns.len());
                    for p in &case.patterns {
                        pats.push(self.lower_expr(p, &inner));
                        let b = self.pat_binds(p);
                        inner.apply(&b);
                    }
                    let target = match (idx..cases.len()).find(|&j| !cases[j].body.is_empty()) {
                        Some(j) => CaseTarget::Body(j),
                        None if default.is_some() => CaseTarget::Default,
                        None => CaseTarget::FellOff,
                    };
                    let guards = pats.iter().map(|p| self.case_guard(p)).collect();
                    case_plans.push(CasePlan {
                        patterns: pats,
                        guards,
                        target,
                    });
                    bodies.push(self.lower_block(&case.body, &mut inner));
                }
                let default_plan = default.as_ref().map(|d| {
                    let mut inner = st.clone();
                    self.lower_block(d, &mut inner)
                });
                StmtPlan::Switch {
                    scrutinees: lowered_scrutinees,
                    cases: case_plans,
                    bodies,
                    default: default_plan,
                }
            }
            Stmt::Cond { arms, else_arm } => {
                let lowered_arms = arms
                    .iter()
                    .map(|(f, body)| {
                        let mut inner = st.clone();
                        let goal = self.lower_formula(f, &mut inner);
                        (goal, self.lower_block(body, &mut inner))
                    })
                    .collect();
                let lowered_else = else_arm.as_ref().map(|b| {
                    let mut inner = st.clone();
                    self.lower_block(b, &mut inner)
                });
                StmtPlan::Cond {
                    arms: lowered_arms,
                    else_arm: lowered_else,
                }
            }
            Stmt::If { cond, then, els } => {
                let mut then_state = st.clone();
                let goal = self.lower_formula(cond, &mut then_state);
                let lowered_then = self.lower_block(then, &mut then_state);
                // The else branch executes on the unmodified environment and
                // its mutations persist; approximate its binds as may-only.
                let lowered_else = els.as_ref().map(|b| {
                    let mut inner = st.clone();
                    let plan = self.lower_block(b, &mut inner);
                    for (i, bound) in inner.slots.iter().enumerate() {
                        if bound.may {
                            st.bind_may(i as SlotId);
                        }
                    }
                    plan
                });
                StmtPlan::If {
                    cond: goal,
                    then: lowered_then,
                    els: lowered_else,
                }
            }
            Stmt::Foreach { formula, body } => {
                let mut inner = st.clone();
                let goal = self.lower_formula(formula, &mut inner);
                let declared = formula
                    .declared_vars()
                    .into_iter()
                    .map(|(_, n)| self.slot(&n))
                    .collect();
                let lowered_body = self.lower_block(body, &mut inner);
                StmtPlan::Foreach {
                    goal,
                    declared,
                    body: lowered_body,
                }
            }
            Stmt::While { cond, body } => {
                let mut inner = st.clone();
                let goal = self.lower_formula(cond, &mut inner);
                let lowered_body = self.lower_block(body, &mut inner);
                // Bindings persist across iterations only as possibilities.
                for (i, bound) in inner.slots.iter().enumerate() {
                    if bound.may {
                        st.bind_may(i as SlotId);
                    }
                }
                StmtPlan::While {
                    cond: goal,
                    body: lowered_body,
                }
            }
            Stmt::Return(e) => StmtPlan::Return(e.as_ref().map(|e| self.lower_expr(e, st))),
            Stmt::Assign(lhs, rhs) => {
                let value = self.lower_expr(rhs, st);
                match lhs {
                    Expr::Var(name) => {
                        let s = self.slot(name);
                        st.bind_must(s);
                        StmtPlan::Assign(s, value)
                    }
                    _ => StmtPlan::AssignUnsupported(value),
                }
            }
            Stmt::ExprStmt(e) => StmtPlan::Expr(self.lower_expr(e, st)),
            Stmt::Block(stmts) => {
                let mut inner = st.clone();
                StmtPlan::Block(self.lower_block(stmts, &mut inner))
            }
        }
    }
}

/// Flattens nested conjunctions into a conjunct list (the interpreter's
/// `flatten_and`).
fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

// ---------------------------------------------------------------------------
// Method lowering
// ---------------------------------------------------------------------------

/// The binding assumptions of one lowered mode.
struct ModeCtx {
    /// Whether `this` is in scope (and its static class).
    this_owner: Option<String>,
    /// Whether the declared parameters start out bound.
    params_bound: bool,
}

fn lower_method(
    table: &ClassTable,
    maps: &PlanMaps,
    registry: &mut DispatchRegistry,
    m: &MethodInfo,
) -> MethodPlan {
    let body = match &m.decl.body {
        MethodBody::Absent => BodyPlan::Absent,
        MethodBody::Formula(f) => {
            let has_receiver = m.owner != "<toplevel>";
            // Forward mode: constructors run without `this` (the object is
            // being built); ordinary instance methods run with it.
            let forward_ctx = ModeCtx {
                this_owner: (has_receiver && m.decl.kind == MethodKind::Method)
                    .then(|| m.owner.clone()),
                params_bound: true,
            };
            let matching_ctx = ModeCtx {
                this_owner: has_receiver.then(|| m.owner.clone()),
                params_bound: false,
            };
            let forward = lower_solved_form(table, maps, registry, m, f, &forward_ctx);
            let matching = lower_solved_form(table, maps, registry, m, f, &matching_ctx);
            let equals_bound = (m.decl.name == "equals").then(|| {
                lower_solved_form(
                    table,
                    maps,
                    registry,
                    m,
                    f,
                    &ModeCtx {
                        this_owner: Some(m.owner.clone()),
                        params_bound: true,
                    },
                )
            });
            BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            }
        }
        MethodBody::Block(stmts) => {
            let has_receiver = m.owner != "<toplevel>";
            let mut lo = Lowerer::new(
                table,
                has_receiver.then(|| m.owner.clone()),
                Res::Building { maps, registry },
            );
            let mut st = SlotState::default();
            let param_slots: Vec<SlotId> = m
                .decl
                .params
                .iter()
                .map(|p| {
                    let s = lo.slot(&p.name);
                    st.bind_must(s);
                    s
                })
                .collect();
            let stmts = lo.lower_block(stmts, &mut st);
            BodyPlan::Block(BlockPlan {
                stmts,
                frame: lo.frame,
                param_slots,
                bc: None,
            })
        }
    };
    MethodPlan {
        info: m.clone(),
        body,
        owner_layout: table.layout(&m.owner).cloned(),
        fast_ctor: None,
        bc_deps: Vec::new(),
    }
}

fn lower_solved_form(
    table: &ClassTable,
    maps: &PlanMaps,
    registry: &mut DispatchRegistry,
    m: &MethodInfo,
    f: &Formula,
    ctx: &ModeCtx,
) -> SolvedForm {
    let mut lo = Lowerer::new(
        table,
        ctx.this_owner.clone(),
        Res::Building { maps, registry },
    );
    let mut st = SlotState::default();
    // Parameters, `result` and the owner's fields always get slots so the
    // evaluator can seed and read them by index.
    let param_slots: Vec<SlotId> = m
        .decl
        .params
        .iter()
        .map(|p| {
            let s = lo.slot(&p.name);
            if ctx.params_bound {
                st.bind_must(s);
            }
            s
        })
        .collect();
    let result_slot = lo.slot("result");
    let field_slots: Vec<(String, SlotId)> = table
        .type_info(&m.owner)
        .map(|info| {
            info.fields
                .iter()
                .map(|fd| (fd.name.clone(), lo.slot(&fd.name)))
                .collect()
        })
        .unwrap_or_default();
    let goal = lo.lower_formula(f, &mut st);
    SolvedForm {
        goal,
        frame: lo.frame,
        param_slots,
        result_slot,
        field_slots,
        this_present: ctx.this_owner.is_some(),
        det: false,
        bc: None,
    }
}

/// Lowers a standalone formula (the ad-hoc `solve` entry point of the
/// runtime) against a finished plan: `bound` names the variables known at
/// entry, `this_class` the runtime class of `this` if it is in scope. Call
/// sites resolve through the plan's dispatch tables where the names are
/// registered.
pub fn lower_standalone(
    plan: &ProgramPlan,
    f: &Formula,
    bound: &[&str],
    this_class: Option<&str>,
) -> SolvedForm {
    let table = plan.table();
    let mut lo = Lowerer::new(table, this_class.map(str::to_owned), Res::Frozen(plan));
    let mut st = SlotState::default();
    for name in bound {
        let s = lo.slot(name);
        st.bind_must(s);
    }
    let result_slot = lo.slot("result");
    let bound_slots: Vec<SlotId> = bound
        .iter()
        .map(|name| lo.frame.slot_of(name).unwrap())
        .collect();
    let goal = lo.lower_formula(f, &mut st);
    let mut form = SolvedForm {
        goal,
        frame: lo.frame,
        param_slots: Vec::new(),
        result_slot,
        field_slots: Vec::new(),
        this_present: this_class.is_some(),
        det: false,
        bc: None,
    };
    // Standalone forms are analyzed against the program's frozen facts
    // (one monotone evaluation — the program fixpoint already converged).
    if plan.analysis().is_some() {
        form.det = crate::analysis::standalone_facts(plan, &form, &bound_slots, this_class).det();
    }
    if plan.bytecode_enabled() {
        form.bc = Some(crate::bytecode::compile_body(&form, &bound_slots));
    }
    form
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use jmatch_syntax::parse_program;

    fn plan_for(src: &str) -> Arc<ProgramPlan> {
        let program = parse_program(src).unwrap();
        let mut diags = Diagnostics::new();
        let table = ClassTable::build(&program, &mut diags);
        assert!(diags.errors.is_empty(), "{:?}", diags.errors);
        ProgramPlan::compile(table)
    }

    const ZNAT: &str = r#"
        interface Nat {
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
        }
        class ZNat implements Nat {
            int val;
            private ZNat(int n) returns(n) ( val = n && n >= 0 )
            constructor zero() returns() ( val = 0 )
            constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
        }
    "#;

    #[test]
    fn succ_solved_forms_differ_by_mode() {
        let plan = plan_for(ZNAT);
        let succ = plan.method(plan.lookup_impl("ZNat", "succ").unwrap());
        let (forward, matching) = succ.body.solved_forms().unwrap();
        // Forward (construction): the equation binds `val` before the guard.
        let Goal::Seq(fwd) = &forward.goal else {
            panic!("forward not statically scheduled: {:?}", forward.goal)
        };
        assert!(matches!(fwd[0], Goal::Unify(..)));
        assert!(matches!(fwd[1], Goal::Compare(..)));
        // Backward (matching): `val` is a field of the known `this`, so the
        // source order is already solved.
        let Goal::Seq(bwd) = &matching.goal else {
            panic!("matching not statically scheduled: {:?}", matching.goal)
        };
        assert!(matches!(bwd[0], Goal::Compare(..)));
        assert!(matches!(bwd[1], Goal::Unify(..)));
    }

    #[test]
    fn class_ctor_schedules_statically_in_both_modes() {
        let plan = plan_for(ZNAT);
        let ctor = plan.method(plan.class_ctor("ZNat").unwrap());
        let (forward, matching) = ctor.body.solved_forms().unwrap();
        assert!(matches!(forward.goal, Goal::Seq(_)));
        assert!(matches!(matching.goal, Goal::Seq(_)));
        // The constructor frame exposes slots for params, result and fields.
        assert_eq!(forward.param_slots.len(), 1);
        assert_eq!(forward.field_slots.len(), 1);
        assert_eq!(forward.field_slots[0].0, "val");
    }

    #[test]
    fn unresolvable_order_falls_back_to_dynamic() {
        // `int x = int y && int y = 3` — under the entry bindings neither
        // side of the first equation is ever ground, and readiness depends
        // on the solving order, which the analysis cannot pin down: the
        // second conjunct must run first at run time.
        let plan = plan_for(
            "static int weird() {
                 let (int x = int y && int y = 3);
                 return x;
             }",
        );
        let m = plan.method(plan.lookup_free("weird").unwrap());
        let BodyPlan::Block(block) = &m.body else {
            panic!()
        };
        let StmtPlan::Let(goal) = &block.stmts[0] else {
            panic!()
        };
        // Conjunct 0 (`int x = int y`) is never must-ready, so scheduling
        // cannot be exact.
        assert!(
            matches!(goal, Goal::DynSeq(_)),
            "expected dynamic fallback, got {goal:?}"
        );
    }

    #[test]
    fn switch_fall_through_targets_are_resolved() {
        let plan = plan_for(
            "static int pick(int n) {
                 switch (n) {
                     case 0:
                     case 1: return 10;
                     case 2: return 20;
                     default: return 30;
                 }
             }",
        );
        let m = plan.method(plan.lookup_free("pick").unwrap());
        let BodyPlan::Block(block) = &m.body else {
            panic!()
        };
        let StmtPlan::Switch { cases, .. } = &block.stmts[0] else {
            panic!()
        };
        assert_eq!(cases[0].target, CaseTarget::Body(1));
        assert_eq!(cases[1].target, CaseTarget::Body(1));
        assert_eq!(cases[2].target, CaseTarget::Body(2));
    }

    #[test]
    fn dispatch_indices_mirror_table_lookup() {
        let plan = plan_for(ZNAT);
        // The interface declares `succ` without a body; the class implements
        // it.
        let declared = plan.lookup_declared("Nat", "succ").unwrap();
        assert_eq!(plan.method(declared).info.owner, "Nat");
        let implemented = plan.lookup_impl("ZNat", "succ").unwrap();
        assert_eq!(plan.method(implemented).info.owner, "ZNat");
        assert!(plan.lookup_impl("Nat", "succ").is_none());
        assert!(plan.class_ctor("ZNat").is_some());
        assert!(plan.class_ctor("Nat").is_none());
    }

    #[test]
    fn recompile_shares_clean_plans_and_relowers_dirty_ones() {
        const EXTRA: &str = "
            static int twice(int n) { return n + n; }
            static int quad(int n) { return twice(twice(n)); }
        ";
        let src = format!("{ZNAT}{EXTRA}");
        let prev = plan_for(&src);
        let edited = src.replace("return n + n;", "return 2 * n;");
        let program = parse_program(&edited).unwrap();
        let mut diags = Diagnostics::new();
        let table = ClassTable::build_reusing(&program, &mut diags, prev.table());
        assert!(diags.errors.is_empty());
        let fp_prev = crate::incremental::Fingerprints::of(prev.table());
        let fp_next = crate::incremental::Fingerprints::of(&table);
        assert_eq!(fp_prev.structure, fp_next.structure);
        let dirty: Vec<bool> = fp_prev
            .units
            .iter()
            .zip(&fp_next.units)
            .map(|(a, b)| a.body != b.body)
            .collect();
        assert_eq!(dirty.iter().filter(|&&d| d).count(), 1);
        let next = ProgramPlan::recompile(&prev, table, &dirty, PlanOptions::default());

        // Every untouched plan is the same allocation; the edited method and
        // its bytecode dependents (`quad` inlines `twice`) are fresh.
        let twice = next.lookup_free("twice").unwrap();
        let quad = next.lookup_free("quad").unwrap();
        for (pid, (a, b)) in prev.methods().iter().zip(next.methods()).enumerate() {
            if pid == twice || pid == quad {
                assert!(!Arc::ptr_eq(a, b), "pid {pid} must be recompiled");
            } else {
                assert!(Arc::ptr_eq(a, b), "pid {pid} must be shared");
            }
        }
        assert!(next.method(quad).bc_deps.contains(&twice));
        // The recompile agrees with a from-scratch compile on dispatch
        // layout and bytecode presence.
        let scratch = ProgramPlan::compile(ClassTable::build(&program, &mut Diagnostics::new()));
        assert_eq!(
            next.dispatch_tables().len(),
            scratch.dispatch_tables().len()
        );
        for (a, b) in next.dispatch_tables().iter().zip(scratch.dispatch_tables()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.by_type, b.by_type);
        }
        let a = format!("{:?}", next.method(quad).body);
        let b = format!("{:?}", scratch.method(quad).body);
        assert_eq!(a, b, "recompiled bytecode must match a fresh compile");
    }

    #[test]
    fn standalone_lowering_respects_entry_bindings() {
        let program =
            parse_program("class R { boolean below(int n, int x) iterates(x) ( x = 0 || x = 1 ) }")
                .unwrap();
        let mut diags = Diagnostics::new();
        let table = ClassTable::build(&program, &mut diags);
        let body = match &table.lookup_method("R", "below").unwrap().decl.body {
            MethodBody::Formula(f) => f.clone(),
            _ => panic!(),
        };
        let plan = ProgramPlan::compile(table);
        let form = lower_standalone(&plan, &body, &["n"], Some("R"));
        assert!(form.frame.slot_of("x").is_some());
        assert!(matches!(form.goal, Goal::Any(_)));
    }
}
