//! The class table: resolved types, methods, modes and specifications.
//!
//! The table is the verifier's (and the runtime's) view of a parsed program:
//! every interface and class with its supertypes, fields, invariants, and
//! methods; every method with its declared modes, `matches` and `ensures`
//! clauses. Lookup is *modular* in the sense of the paper: a client matching
//! on an interface type only ever sees what the interface declares (its
//! invariants and the specifications of its named constructors), never the
//! private representation of an implementation.

use crate::diag::Diagnostics;
use crate::intern::{Interner, Sym};
use jmatch_syntax::ast::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies one mode of a method.
///
/// Mode 0 is always the *forward* mode (all parameters known, `result`
/// unknown); declared `returns`/`iterates` clauses follow in order.
pub type ModeIndex = usize;

/// A resolved mode: which of the method's relation variables are unknowns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mode {
    /// Whether the mode may produce more than one solution (`iterates`).
    pub iterative: bool,
    /// Parameter names solved for in this mode.
    pub unknown_params: Vec<String>,
    /// Whether `result` is an unknown in this mode.
    pub result_unknown: bool,
}

impl Mode {
    /// Whether a parameter is a known (input) in this mode.
    pub fn param_is_known(&self, name: &str) -> bool {
        !self.unknown_params.iter().any(|p| p == name)
    }

    /// Whether the mode has no unknowns at all (a pure predicate mode).
    pub fn is_predicate(&self) -> bool {
        self.unknown_params.is_empty() && !self.result_unknown
    }
}

/// A method (or constructor) together with its owner and resolved modes.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodInfo {
    /// Name of the declaring type.
    pub owner: String,
    /// The declaration itself.
    pub decl: MethodDecl,
    /// All modes: index 0 is the forward mode, the rest are declared modes.
    pub modes: Vec<Mode>,
}

impl MethodInfo {
    /// The mode in which the given set of parameters are unknowns and
    /// `result` is known/unknown as requested. Returns the first match.
    pub fn find_mode(&self, unknown_params: &[String], result_unknown: bool) -> Option<ModeIndex> {
        self.modes.iter().position(|m| {
            m.result_unknown == result_unknown
                && m.unknown_params.len() == unknown_params.len()
                && unknown_params.iter().all(|p| m.unknown_params.contains(p))
        })
    }

    /// Whether this is a named constructor.
    pub fn is_named_constructor(&self) -> bool {
        self.decl.kind == MethodKind::NamedConstructor
    }

    /// Whether this callable constructs (and therefore matches) instances of
    /// its owner type: named constructors and class constructors.
    pub fn constructs_owner(&self) -> bool {
        self.decl.kind != MethodKind::Method
    }

    /// The result type of the method. Constructors produce their owner type.
    pub fn result_type(&self) -> Type {
        match self.decl.kind {
            MethodKind::Method => self.decl.return_type.clone().unwrap_or(Type::Void),
            _ => Type::Named(self.owner.clone()),
        }
    }

    /// A stable identifier `<Owner>.<name>` for diagnostics and predicates.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.owner, self.decl.name)
    }
}

/// A resolved type (interface or class) in the table.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeInfo {
    /// Type name.
    pub name: String,
    /// Whether this is an interface.
    pub is_interface: bool,
    /// Whether the class is abstract (interfaces are implicitly abstract).
    pub is_abstract: bool,
    /// Direct supertypes (implemented interfaces and the superclass).
    pub supertypes: Vec<String>,
    /// Fields declared directly in this type.
    pub fields: Vec<FieldDecl>,
    /// Invariants declared directly in this type.
    pub invariants: Vec<InvariantDecl>,
    /// Methods declared directly in this type (by declaration order).
    pub methods: Vec<MethodInfo>,
}

/// The compile-time object layout of one class: its interned name, its
/// dense *type index* (position in declaration order, the key of every
/// dispatch table), and the slot order of its directly declared fields.
///
/// A runtime `Object` holds an `Arc<ClassLayout>` plus a flat `Box<[Value]>`
/// of field slots; reading a field is `slot_of_sym` (a handful of `u32`
/// compares resolved against symbols interned at compile time) followed by
/// one indexed load, instead of hashing a `String` into a per-object map.
/// The layout covers the fields construction initializes — the class's own
/// declarations, in declaration order — mirroring the previous
/// `HashMap`-shaped objects exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLayout {
    sym: Sym,
    type_index: u32,
    name: String,
    field_names: Box<[String]>,
    field_syms: Box<[Sym]>,
}

impl ClassLayout {
    /// The interned class name.
    pub fn sym(&self) -> Sym {
        self.sym
    }

    /// The class's dense index in declaration order — the key runtime
    /// dispatch tables are indexed by.
    pub fn type_index(&self) -> u32 {
        self.type_index
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of field slots.
    pub fn num_fields(&self) -> usize {
        self.field_names.len()
    }

    /// Field names in slot order.
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// The slot of a field, by name (the string-based API boundary).
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.field_names.iter().position(|f| f == name)
    }

    /// The slot of a field, by interned symbol (the hot path: a few `u32`
    /// compares, no hashing).
    pub fn slot_of_sym(&self, sym: Sym) -> Option<usize> {
        self.field_syms.iter().position(|&f| f == sym)
    }

    /// The field name stored in a slot.
    pub fn field_name(&self, slot: usize) -> &str {
        &self.field_names[slot]
    }
}

/// The resolved program: all types and free-standing methods, plus the
/// frozen name [`Interner`], per-class [`ClassLayout`]s and the
/// precomputed subtype matrix the runtime representation is built on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassTable {
    types: HashMap<String, TypeInfo>,
    type_order: Vec<String>,
    free_methods: Vec<MethodInfo>,
    /// Interned class / field / method names; frozen after `build`.
    interner: Interner,
    /// One layout per type, in declaration order (indexed by type index).
    layouts: Vec<Arc<ClassLayout>>,
    /// Type name → type index.
    type_indices: HashMap<String, u32>,
    /// Dense `n × n` subtype matrix over the declared types
    /// (`subtypes[a * n + b]` ⇔ type `a` is a subtype of type `b`).
    subtypes: Vec<bool>,
}

impl ClassTable {
    /// Builds a class table from a parsed program.
    ///
    /// Resolution problems (duplicate types, unknown supertypes) are recorded
    /// in `diags` as errors; the table is still returned so later phases can
    /// proceed best-effort.
    pub fn build(program: &Program, diags: &mut Diagnostics) -> Arc<ClassTable> {
        Arc::new(Self::build_inner(program, diags))
    }

    /// Like [`ClassTable::build`], but shares per-class [`ClassLayout`]
    /// allocations with a previous generation of the same program wherever
    /// they are value-equal.
    ///
    /// The runtime compares layouts by pointer on its hot paths
    /// (`index_of_layout`), so objects constructed under the previous
    /// generation keep taking the fast path against a recompiled table as
    /// long as their class's layout didn't change. Layouts whose shape *did*
    /// change (renamed fields, reordered types) keep their fresh allocation —
    /// adoption is purely an equality-gated swap.
    pub fn build_reusing(
        program: &Program,
        diags: &mut Diagnostics,
        prev: &ClassTable,
    ) -> Arc<ClassTable> {
        let mut table = Self::build_inner(program, diags);
        table.adopt_layouts(prev);
        Arc::new(table)
    }

    /// Swaps every freshly built layout that is value-equal to the previous
    /// generation's layout of the same class for the previous `Arc`.
    fn adopt_layouts(&mut self, prev: &ClassTable) {
        for layout in &mut self.layouts {
            if let Some(&pi) = prev.type_indices.get(layout.name()) {
                let old = &prev.layouts[pi as usize];
                if **old == **layout {
                    *layout = Arc::clone(old);
                }
            }
        }
    }

    fn build_inner(program: &Program, diags: &mut Diagnostics) -> ClassTable {
        let mut table = ClassTable::default();
        for decl in &program.decls {
            match decl {
                Decl::Interface(i) => {
                    let info = TypeInfo {
                        name: i.name.clone(),
                        is_interface: true,
                        is_abstract: true,
                        supertypes: i.extends.clone(),
                        fields: Vec::new(),
                        invariants: i.invariants.clone(),
                        methods: i
                            .methods
                            .iter()
                            .map(|m| MethodInfo {
                                owner: i.name.clone(),
                                modes: resolve_modes(m),
                                decl: m.clone(),
                            })
                            .collect(),
                    };
                    table.insert_type(info, diags);
                }
                Decl::Class(c) => {
                    let mut supertypes = c.implements.clone();
                    if let Some(sup) = &c.extends {
                        supertypes.push(sup.clone());
                    }
                    let info = TypeInfo {
                        name: c.name.clone(),
                        is_interface: false,
                        is_abstract: c.is_abstract,
                        supertypes,
                        fields: c.fields.clone(),
                        invariants: c.invariants.clone(),
                        methods: c
                            .methods
                            .iter()
                            .map(|m| MethodInfo {
                                owner: c.name.clone(),
                                modes: resolve_modes(m),
                                decl: m.clone(),
                            })
                            .collect(),
                    };
                    table.insert_type(info, diags);
                }
                Decl::Method(m) => {
                    table.free_methods.push(MethodInfo {
                        owner: "<toplevel>".into(),
                        modes: resolve_modes(m),
                        decl: m.clone(),
                    });
                }
            }
        }
        // Validate supertype references.
        for name in table.type_order.clone() {
            let supers = table.types[&name].supertypes.clone();
            for s in supers {
                if !table.types.contains_key(&s) && s != "Object" {
                    diags.error(name.clone(), format!("unknown supertype `{s}`"));
                }
            }
        }
        table.finish();
        table
    }

    /// Freezes the runtime representation: interns every class / field /
    /// method name, assigns type indices, builds per-class layouts and the
    /// dense subtype matrix. Runs once, at the end of `build`.
    fn finish(&mut self) {
        // Class names first (small symbols), then fields, then methods.
        for name in &self.type_order {
            self.interner.intern(name);
        }
        for name in &self.type_order {
            let info = &self.types[name];
            for f in &info.fields {
                self.interner.intern(&f.name);
            }
            for m in &info.methods {
                self.interner.intern(&m.decl.name);
            }
        }
        for m in &self.free_methods {
            self.interner.intern(&m.decl.name);
        }
        let n = self.type_order.len();
        let mut matrix = vec![false; n * n];
        for (a, sub) in self.type_order.iter().enumerate() {
            for (b, sup) in self.type_order.iter().enumerate() {
                matrix[a * n + b] = self.is_subtype_walk(sub, sup);
            }
        }
        self.subtypes = matrix;
        for (i, name) in self.type_order.iter().enumerate() {
            let info = &self.types[name];
            self.layouts.push(Arc::new(ClassLayout {
                sym: self.interner.lookup(name).expect("type name interned"),
                type_index: i as u32,
                name: name.clone(),
                field_names: info.fields.iter().map(|f| f.name.clone()).collect(),
                field_syms: info
                    .fields
                    .iter()
                    .map(|f| self.interner.lookup(&f.name).expect("field name interned"))
                    .collect(),
            }));
            self.type_indices.insert(name.clone(), i as u32);
        }
    }

    fn insert_type(&mut self, info: TypeInfo, diags: &mut Diagnostics) {
        if self.types.contains_key(&info.name) {
            diags.error(info.name.clone(), "duplicate type declaration");
            return;
        }
        self.type_order.push(info.name.clone());
        self.types.insert(info.name.clone(), info);
    }

    /// All types in declaration order.
    pub fn types(&self) -> impl Iterator<Item = &TypeInfo> {
        self.type_order.iter().map(|n| &self.types[n])
    }

    /// Looks up a type by name.
    pub fn type_info(&self, name: &str) -> Option<&TypeInfo> {
        self.types.get(name)
    }

    /// Free-standing methods.
    pub fn free_methods(&self) -> &[MethodInfo] {
        &self.free_methods
    }

    /// Whether `sub` is a subtype of `sup` (reflexive, transitive; every
    /// reference type is a subtype of `Object`). Pairs of declared types
    /// answer from the precomputed matrix; undeclared names (including the
    /// erroneous-program case of a dangling supertype) fall back to the
    /// recursive walk, which also defines the matrix.
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "Object" {
            return true;
        }
        if !self.subtypes.is_empty() {
            if let (Some(&a), Some(&b)) = (self.type_indices.get(sub), self.type_indices.get(sup)) {
                return self.subtypes[a as usize * self.type_order.len() + b as usize];
            }
        }
        self.is_subtype_walk(sub, sup)
    }

    /// The recursive subtype walk (used during `build`, before the matrix
    /// exists, and for names outside the table).
    fn is_subtype_walk(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "Object" {
            return true;
        }
        let Some(info) = self.types.get(sub) else {
            return false;
        };
        info.supertypes.iter().any(|s| self.is_subtype_walk(s, sup))
    }

    /// Matrix-backed subtype test over type indices — the hot-path form
    /// pattern guards and dispatch use.
    pub fn is_subtype_idx(&self, sub: u32, sup: u32) -> bool {
        sub == sup || self.subtypes[sub as usize * self.type_order.len() + sup as usize]
    }

    /// The frozen name interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Number of declared types (the dimension of dispatch tables).
    pub fn num_types(&self) -> usize {
        self.type_order.len()
    }

    /// The dense type index of a declared type.
    pub fn type_index(&self, name: &str) -> Option<u32> {
        self.type_indices.get(name).copied()
    }

    /// The runtime layout of a declared type, by name.
    pub fn layout(&self, name: &str) -> Option<&Arc<ClassLayout>> {
        self.type_indices
            .get(name)
            .map(|&i| &self.layouts[i as usize])
    }

    /// The runtime layout of a declared type, by type index.
    pub fn layout_at(&self, index: u32) -> &Arc<ClassLayout> {
        &self.layouts[index as usize]
    }

    /// The type index of an object layout *in this table*: one pointer
    /// compare when the layout is this table's own (the common case),
    /// falling back to a name lookup for layouts from another program so
    /// foreign indices are never trusted.
    pub fn index_of_layout(&self, layout: &Arc<ClassLayout>) -> Option<u32> {
        let i = layout.type_index() as usize;
        match self.layouts.get(i) {
            Some(own) if Arc::ptr_eq(own, layout) => Some(layout.type_index()),
            _ => self.type_index(layout.name()),
        }
    }

    /// All *concrete* classes that are subtypes of `name` (including itself
    /// if it is a concrete class).
    pub fn concrete_subtypes(&self, name: &str) -> Vec<&TypeInfo> {
        self.types()
            .filter(|t| !t.is_interface && !t.is_abstract && self.is_subtype(&t.name, name))
            .collect()
    }

    /// Whether two types can have a common instance. Two class types are
    /// compatible only along a subtype chain; an interface is compatible with
    /// anything not provably disjoint.
    pub fn types_may_overlap(&self, a: &str, b: &str) -> bool {
        if a == b || a == "Object" || b == "Object" {
            return true;
        }
        let (Some(ta), Some(tb)) = (self.types.get(a), self.types.get(b)) else {
            return true;
        };
        if !ta.is_interface && !tb.is_interface {
            return self.is_subtype(a, b) || self.is_subtype(b, a);
        }
        // At least one interface: overlap iff some concrete class implements
        // both (or could — if either has no known implementations, assume
        // overlap to stay conservative).
        let impls_a = self.concrete_subtypes(a);
        let impls_b = self.concrete_subtypes(b);
        if impls_a.is_empty() || impls_b.is_empty() {
            return true;
        }
        impls_a.iter().any(|t| self.is_subtype(&t.name, b))
    }

    /// Looks up a method by name on a type, searching supertypes. Named
    /// constructors and ordinary methods share a namespace here.
    pub fn lookup_method(&self, ty: &str, name: &str) -> Option<&MethodInfo> {
        if let Some(info) = self.types.get(ty) {
            if let Some(m) = info.methods.iter().find(|m| m.decl.name == name) {
                return Some(m);
            }
            for sup in &info.supertypes {
                if let Some(m) = self.lookup_method(sup, name) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Looks up the class constructor of a class (the method named like the
    /// class).
    pub fn lookup_class_constructor(&self, class: &str) -> Option<&MethodInfo> {
        self.types.get(class).and_then(|info| {
            info.methods
                .iter()
                .find(|m| m.decl.kind == MethodKind::ClassConstructor)
        })
    }

    /// Looks up a free-standing method.
    pub fn lookup_free_method(&self, name: &str) -> Option<&MethodInfo> {
        self.free_methods.iter().find(|m| m.decl.name == name)
    }

    /// All invariants visible on a type *and its supertypes* at the given
    /// visibility level. `include_private` is true when verifying the type's
    /// own implementation.
    pub fn visible_invariants(&self, ty: &str, include_private: bool) -> Vec<&InvariantDecl> {
        let mut out = Vec::new();
        self.collect_invariants(ty, include_private, ty, &mut out);
        out
    }

    fn collect_invariants<'a>(
        &'a self,
        ty: &str,
        include_private: bool,
        origin: &str,
        out: &mut Vec<&'a InvariantDecl>,
    ) {
        if let Some(info) = self.types.get(ty) {
            for inv in &info.invariants {
                let visible = match inv.visibility {
                    Visibility::Private => include_private && ty == origin,
                    _ => true,
                };
                if visible {
                    out.push(inv);
                }
            }
            for sup in &info.supertypes {
                self.collect_invariants(sup, include_private, origin, out);
            }
        }
    }

    /// The declared type of a field on `ty` (searching supertypes).
    pub fn field_type(&self, ty: &str, field: &str) -> Option<Type> {
        let info = self.types.get(ty)?;
        if let Some(f) = info.fields.iter().find(|f| f.name == field) {
            return Some(f.ty.clone());
        }
        for sup in &info.supertypes {
            if let Some(t) = self.field_type(sup, field) {
                return Some(t);
            }
        }
        None
    }
}

/// Resolves the declared modes of a method into [`Mode`]s, always prepending
/// the implicit forward mode.
fn resolve_modes(decl: &MethodDecl) -> Vec<Mode> {
    let mut modes = Vec::new();
    // Forward mode: all params known. `result` is unknown unless the method
    // returns void; for boolean methods the forward mode doubles as the
    // predicate mode but still "produces" the boolean result.
    let forward_result_unknown = !matches!(decl.return_type, Some(Type::Void));
    modes.push(Mode {
        iterative: false,
        unknown_params: Vec::new(),
        result_unknown: forward_result_unknown,
    });
    for m in &decl.modes {
        let unknown_params: Vec<String> = m
            .outputs
            .iter()
            .filter(|o| decl.params.iter().any(|p| &p.name == *o))
            .cloned()
            .collect();
        let result_listed = m.outputs.iter().any(|o| o == "result");
        modes.push(Mode {
            iterative: m.iterative,
            unknown_params,
            // In a declared backward mode the result (the value being
            // matched) is a known unless explicitly listed as an output.
            result_unknown: result_listed,
        });
    }
    // Named constructors always support being used as predicates on a known
    // receiver (the mode `returns()`), even when the declaration omits it —
    // the paper's List interface relies on this for `nil()` patterns.
    if decl.kind == MethodKind::NamedConstructor {
        let predicate_mode = Mode {
            iterative: false,
            unknown_params: Vec::new(),
            result_unknown: false,
        };
        if !modes.iter().skip(1).any(|m| *m == predicate_mode) {
            modes.push(predicate_mode);
        }
    }
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_syntax::parse_program;

    fn table_for(src: &str) -> (Arc<ClassTable>, Diagnostics) {
        let program = parse_program(src).unwrap();
        let mut diags = Diagnostics::new();
        let table = ClassTable::build(&program, &mut diags);
        (table, diags)
    }

    const NAT_SRC: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
            constructor equals(Nat n);
        }
        class ZNat implements Nat {
            int val;
            private invariant(val >= 0);
            private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
            constructor zero() returns() ( val = 0 )
            constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
            constructor equals(Nat n) ( zero() && n.zero() | succ(Nat y) && n.succ(y) )
        }
        class PZero implements Nat {
            constructor zero() returns() ( true )
            constructor succ(Nat n) returns(n) ( false )
            constructor equals(Nat n) ( n.zero() )
        }
        class PSucc implements Nat {
            Nat pred;
            constructor zero() returns() ( false )
            constructor succ(Nat n) returns(n) ( pred = n )
            constructor equals(Nat n) ( n.succ(pred) )
        }
    "#;

    #[test]
    fn builds_nat_hierarchy() {
        let (table, diags) = table_for(NAT_SRC);
        assert!(diags.errors.is_empty(), "{:?}", diags.errors);
        assert!(table.type_info("Nat").unwrap().is_interface);
        assert!(table.is_subtype("ZNat", "Nat"));
        assert!(table.is_subtype("PSucc", "Nat"));
        assert!(!table.is_subtype("Nat", "ZNat"));
        assert!(table.is_subtype("ZNat", "Object"));
        let concrete: Vec<_> = table
            .concrete_subtypes("Nat")
            .iter()
            .map(|t| t.name.clone())
            .collect();
        assert_eq!(concrete, vec!["ZNat", "PZero", "PSucc"]);
    }

    #[test]
    fn method_lookup_searches_supertypes() {
        let (table, _) = table_for(NAT_SRC);
        // zero is declared on ZNat directly.
        let m = table.lookup_method("ZNat", "zero").unwrap();
        assert_eq!(m.owner, "ZNat");
        // Looking it up on the interface finds the interface signature.
        let mi = table.lookup_method("Nat", "succ").unwrap();
        assert_eq!(mi.owner, "Nat");
        assert!(mi.is_named_constructor());
        assert_eq!(mi.result_type(), Type::Named("Nat".into()));
        // Class constructors are found separately.
        let ctor = table.lookup_class_constructor("ZNat").unwrap();
        assert_eq!(ctor.decl.kind, MethodKind::ClassConstructor);
    }

    #[test]
    fn modes_include_forward_and_declared() {
        let (table, _) = table_for(NAT_SRC);
        let succ = table.lookup_method("Nat", "succ").unwrap();
        // Forward, declared returns(n), and the implicit predicate mode.
        assert_eq!(succ.modes.len(), 3);
        // Forward: construct from n.
        assert!(succ.modes[0].unknown_params.is_empty());
        assert!(succ.modes[0].result_unknown);
        // Backward: given the object, solve for n.
        assert_eq!(succ.modes[1].unknown_params, vec!["n".to_string()]);
        assert!(!succ.modes[1].result_unknown);
        assert!(!succ.modes[1].iterative);
        // find_mode locates the pattern-matching mode.
        assert_eq!(succ.find_mode(&["n".into()], false), Some(1));
        assert_eq!(succ.find_mode(&[], true), Some(0));
    }

    #[test]
    fn invariant_visibility() {
        let (table, _) = table_for(NAT_SRC);
        // From the outside, ZNat exposes only the Nat interface invariant.
        let public_view = table.visible_invariants("ZNat", false);
        assert_eq!(public_view.len(), 1);
        // When verifying ZNat itself, the private invariant joins in.
        let private_view = table.visible_invariants("ZNat", true);
        assert_eq!(private_view.len(), 2);
    }

    #[test]
    fn field_types_resolve() {
        let (table, _) = table_for(NAT_SRC);
        assert_eq!(table.field_type("ZNat", "val"), Some(Type::Int));
        assert_eq!(
            table.field_type("PSucc", "pred"),
            Some(Type::Named("Nat".into()))
        );
        assert_eq!(table.field_type("PZero", "whatever"), None);
    }

    #[test]
    fn overlap_analysis() {
        let (table, _) = table_for(NAT_SRC);
        // Unrelated concrete classes never overlap.
        assert!(!table.types_may_overlap("ZNat", "PZero"));
        // A class overlaps its interface.
        assert!(table.types_may_overlap("ZNat", "Nat"));
        assert!(table.types_may_overlap("Nat", "PSucc"));
        // Everything overlaps Object.
        assert!(table.types_may_overlap("ZNat", "Object"));
    }

    #[test]
    fn duplicate_types_are_reported() {
        let (_, diags) = table_for("class A { } class A { }");
        assert_eq!(diags.errors.len(), 1);
    }

    #[test]
    fn unknown_supertype_is_reported() {
        let (_, diags) = table_for("class A implements Missing { }");
        assert_eq!(diags.errors.len(), 1);
        assert!(diags.errors[0].message.contains("Missing"));
    }

    #[test]
    fn build_reusing_shares_unchanged_layouts() {
        let program = parse_program(NAT_SRC).unwrap();
        let first = ClassTable::build(&program, &mut Diagnostics::new());
        let second = ClassTable::build_reusing(&program, &mut Diagnostics::new(), &first);
        for ty in first.types() {
            assert!(
                Arc::ptr_eq(
                    first.layout(&ty.name).unwrap(),
                    second.layout(&ty.name).unwrap()
                ),
                "{}: identical layouts must share allocations",
                ty.name
            );
        }
        // After a field rename, only the edited class gets a fresh layout.
        let edited = parse_program(&NAT_SRC.replace("Nat pred;", "Nat prev;")).unwrap();
        let third = ClassTable::build_reusing(&edited, &mut Diagnostics::new(), &first);
        assert!(!Arc::ptr_eq(
            first.layout("PSucc").unwrap(),
            third.layout("PSucc").unwrap()
        ));
        assert!(Arc::ptr_eq(
            first.layout("ZNat").unwrap(),
            third.layout("ZNat").unwrap()
        ));
    }

    #[test]
    fn iterative_modes_are_flagged() {
        let (table, diags) =
            table_for("interface Collection { boolean contains(Object x) iterates(x); }");
        assert!(diags.errors.is_empty());
        let m = table.lookup_method("Collection", "contains").unwrap();
        assert_eq!(m.modes.len(), 2);
        assert!(m.modes[1].iterative);
        assert_eq!(m.modes[1].unknown_params, vec!["x".to_string()]);
    }
}
