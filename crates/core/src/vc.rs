//! Verification-condition generation: the `F` intermediate language and the
//! translation of JMatch formulas and patterns into SMT terms (§5, Fig. 9–10).
//!
//! ## The `F` language
//!
//! [`F`] mirrors the paper's intermediate representation: quantifier-free
//! formulas extended with the right-associative *assume* operator `F₁ ▷ F₂`.
//! `F₁` records environment knowledge — bindings of solved unknowns, facts
//! from `ensures` clauses — and survives negation:
//! `negate(F₁ ▷ F₂) = F₁ ▷ negate(F₂)`.
//!
//! ## Abstraction of method calls
//!
//! A call (or constructor pattern) `m(p̄)` in mode `M` contributes two
//! uninterpreted predicates, the paper's "interpreted theory predicates"
//! (§6.2):
//!
//! * `ok$Owner$m$<mode>(knowns…)` — "the match/call succeeds". Asserted
//!   positively at the use site; the lazy expander asserts
//!   `¬ok ⇒ ¬ExtractM(matches)` when the solver sets it false.
//! * `ens$Owner$m(this?, result, args…)` — carries the `ensures` clause.
//!   Asserted behind `▷`; the expander asserts `ens ⇒ ⟦ensures⟧` when the
//!   solver sets it true.
//!
//! Type membership uses `is$T(x)` predicates whose positive expansion is the
//! conjunction of `T`'s visible invariants (plus supertype membership and
//! disjointness from unrelated concrete classes).

use crate::diag::CompileError;
use crate::table::{ClassTable, MethodInfo, Mode, ModeIndex};
use jmatch_smt::{Sort, TermId, TermStore};
use jmatch_syntax::ast::{BinOp, CmpOp, Expr, Formula, Type};
use std::collections::HashMap;
use std::sync::Arc;

/// The single uninterpreted sort used for every JMatch reference type.
/// Type membership is tracked by `is$T` predicates instead of SMT sorts so
/// that values of different static types can be compared for equality.
pub const OBJECT_SORT_NAME: &str = "JObject";

/// The paper's intermediate language `F` (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum F {
    /// Trivially true.
    True,
    /// Trivially false.
    False,
    /// An SMT-level fact.
    Smt(TermId),
    /// Conjunction.
    And(Vec<F>),
    /// Disjunction.
    Or(Vec<F>),
    /// Negation (introduced only by [`F::negate`]).
    Not(Box<F>),
    /// The assume operator `F₁ ▷ F₂`: `F₁` is environment knowledge and is
    /// never negated.
    Assume(Box<F>, Box<F>),
}

impl F {
    /// Conjunction smart constructor.
    pub fn and(items: Vec<F>) -> F {
        let mut flat = Vec::new();
        for i in items {
            match i {
                F::True => {}
                F::False => return F::False,
                F::And(xs) => flat.extend(xs),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => F::True,
            1 => flat.into_iter().next().unwrap(),
            _ => F::And(flat),
        }
    }

    /// Disjunction smart constructor.
    pub fn or(items: Vec<F>) -> F {
        let mut flat = Vec::new();
        for i in items {
            match i {
                F::False => {}
                F::True => return F::True,
                F::Or(xs) => flat.extend(xs),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => F::False,
            1 => flat.into_iter().next().unwrap(),
            _ => F::Or(flat),
        }
    }

    /// The paper's `negate`: pushes negation through the structure while
    /// leaving assume prefixes intact.
    pub fn negate(&self) -> F {
        match self {
            F::True => F::False,
            F::False => F::True,
            F::Smt(t) => F::Not(Box::new(F::Smt(*t))),
            F::And(xs) => F::or(xs.iter().map(|x| x.negate()).collect()),
            F::Or(xs) => F::and(xs.iter().map(|x| x.negate()).collect()),
            F::Not(inner) => (**inner).clone(),
            F::Assume(env, body) => F::Assume(env.clone(), Box::new(body.negate())),
        }
    }

    /// Lowers to a single SMT term (the assume operator becomes conjunction).
    pub fn lower(&self, store: &mut TermStore) -> TermId {
        match self {
            F::True => store.tt(),
            F::False => store.ff(),
            F::Smt(t) => *t,
            F::And(xs) => {
                let ts: Vec<TermId> = xs.iter().map(|x| x.lower(store)).collect();
                store.and(ts)
            }
            F::Or(xs) => {
                let ts: Vec<TermId> = xs.iter().map(|x| x.lower(store)).collect();
                store.or(ts)
            }
            F::Not(inner) => {
                let t = inner.lower(store);
                store.not(t)
            }
            F::Assume(env, body) => {
                let e = env.lower(store);
                let b = body.lower(store);
                store.and2(e, b)
            }
        }
    }
}

/// One step of a translation: either a fact subject to negation or an
/// environment fact.
#[derive(Debug, Clone)]
enum Item {
    Check(F),
    Assume(F),
}

/// An ordered sequence of translation steps, closed into an [`F`] around a
/// continuation. This realizes the paper's continuation-passing definitions
/// of `VF`/`VM`/`VP` without building closures.
#[derive(Debug, Clone, Default)]
pub struct Seq {
    items: Vec<Item>,
}

impl Seq {
    /// An empty sequence.
    pub fn new() -> Self {
        Seq::default()
    }

    fn check(&mut self, f: F) {
        self.items.push(Item::Check(f));
    }

    fn assume(&mut self, f: F) {
        self.items.push(Item::Assume(f));
    }

    /// Closes the sequence around a continuation.
    pub fn close(self, cont: F) -> F {
        let mut acc = cont;
        for item in self.items.into_iter().rev() {
            acc = match item {
                Item::Check(c) => F::and(vec![c, acc]),
                Item::Assume(a) => F::Assume(Box::new(a), Box::new(acc)),
            };
        }
        acc
    }
}

/// Variable environment for one translation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, (TermId, Type)>,
    /// Names that are unknowns of the current mode: equations on them are
    /// *bindings* (assumes) rather than tests, so `negate` never blames them.
    unknowns: std::collections::HashSet<String>,
    /// The enclosing class, for resolving bare field references and
    /// receiver-less calls.
    pub self_class: Option<String>,
    /// The SMT term standing for `this`, if in scope.
    pub this_term: Option<TermId>,
    /// The SMT term standing for `result`, if in scope.
    pub result_term: Option<TermId>,
    /// Declared type of `result`, if known.
    pub result_type: Option<Type>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds a JMatch variable to an SMT term with its declared type.
    pub fn bind(&mut self, name: impl Into<String>, term: TermId, ty: Type) {
        self.vars.insert(name.into(), (term, ty));
    }

    /// Looks up a variable.
    pub fn lookup(&self, name: &str) -> Option<&(TermId, Type)> {
        self.vars.get(name)
    }

    /// Marks a name as an unknown of the current mode.
    pub fn mark_unknown(&mut self, name: impl Into<String>) {
        self.unknowns.insert(name.into());
    }

    /// Whether a name is an unknown of the current mode.
    pub fn is_unknown(&self, name: &str) -> bool {
        self.unknowns.contains(name)
    }

    /// All bound variable names.
    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.vars.keys()
    }
}

/// The verification-condition generator.
#[derive(Debug, Clone)]
pub struct VcGen {
    /// The resolved program.
    pub table: Arc<ClassTable>,
}

/// Result alias for translation functions.
pub type VcResult<T> = Result<T, CompileError>;

impl VcGen {
    /// Creates a generator over a class table.
    pub fn new(table: Arc<ClassTable>) -> Self {
        VcGen { table }
    }

    /// The SMT sort of a JMatch type.
    pub fn sort_of(&self, store: &mut TermStore, ty: &Type) -> Sort {
        match ty {
            Type::Int => Sort::Int,
            Type::Boolean => Sort::Bool,
            Type::Void => Sort::Bool,
            _ => Sort::Obj(store.symbol(OBJECT_SORT_NAME)),
        }
    }

    /// Creates a fresh SMT variable for a JMatch variable of the given type
    /// and binds it in the environment, together with its type-membership
    /// assumption when it is a reference type.
    pub fn declare_var(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        name: &str,
        ty: &Type,
    ) -> TermId {
        let sort = self.sort_of(store, ty);
        let term = store.fresh_var(name, sort);
        env.bind(name, term, ty.clone());
        if let Some(f) = self.type_membership(store, term, ty) {
            seq.assume(f);
        }
        term
    }

    /// The `is$T(x)` membership predicate, when `ty` is a reference type that
    /// exists in the table.
    pub fn type_membership(&self, store: &mut TermStore, term: TermId, ty: &Type) -> Option<F> {
        match ty {
            Type::Named(name) if self.table.type_info(name).is_some() => {
                let pred = store.app(&format!("is${name}"), vec![term], Sort::Bool);
                Some(F::Smt(pred))
            }
            _ => None,
        }
    }

    /// Pre-declares every variable declared inside a formula (`T x` patterns)
    /// so that bindings and uses may be translated in any order.
    pub fn declare_formula_vars(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        f: &Formula,
    ) {
        for (ty, name) in f.declared_vars() {
            if name != "_" && env.lookup(&name).is_none() {
                self.declare_var(store, env, seq, &name, &ty);
                env.mark_unknown(&name);
            }
        }
    }

    // ------------------------------------------------------------------
    // Formula translation (VF)
    // ------------------------------------------------------------------

    /// Translates a formula; facts are appended to `seq`.
    pub fn vf(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        f: &Formula,
    ) -> VcResult<()> {
        match f {
            Formula::Bool(true) => Ok(()),
            Formula::Bool(false) => {
                seq.check(F::False);
                Ok(())
            }
            Formula::And(a, b) => {
                self.vf(store, env, seq, a)?;
                self.vf(store, env, seq, b)
            }
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                let fa = self.vf_closed(store, env, a)?;
                let fb = self.vf_closed(store, env, b)?;
                seq.check(F::or(vec![fa, fb]));
                Ok(())
            }
            Formula::Not(inner) => {
                let fi = self.vf_closed(store, env, inner)?;
                seq.check(fi.negate());
                Ok(())
            }
            Formula::Cmp(op, lhs, rhs) => self.vf_cmp(store, env, seq, *op, lhs, rhs),
            Formula::Atom(e) => self.vf_atom(store, env, seq, e),
        }
    }

    /// Translates a formula into a self-contained `F` (its own sequence,
    /// closed with `true`). Used for disjunction branches and negation.
    pub fn vf_closed(&self, store: &mut TermStore, env: &mut Env, f: &Formula) -> VcResult<F> {
        let mut sub = Seq::new();
        let mut env2 = env.clone();
        self.declare_formula_vars(store, &mut env2, &mut sub, f);
        self.vf(store, &mut env2, &mut sub, f)?;
        // Bindings made in the branch remain visible to later formulas that
        // use the same names only through the shared pre-declared variables
        // of the caller; locally declared ones stay branch-local.
        Ok(sub.close(F::True))
    }

    fn vf_cmp(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        op: CmpOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> VcResult<()> {
        // Tuple equations decompose componentwise.
        if op == CmpOp::Eq {
            if let (Expr::Tuple(ls), Expr::Tuple(rs)) = (lhs, rhs) {
                if ls.len() == rs.len() {
                    for (l, r) in ls.iter().zip(rs.iter()) {
                        self.vf_cmp(store, env, seq, CmpOp::Eq, l, r)?;
                    }
                    return Ok(());
                }
            }
            // Distribute over pattern disjunction on either side.
            if let Expr::DisjointOr(a, b) | Expr::OrPat(a, b) = rhs {
                let fa = self.eq_closed(store, env, lhs, a)?;
                let fb = self.eq_closed(store, env, lhs, b)?;
                seq.check(F::or(vec![fa, fb]));
                return Ok(());
            }
            if let Expr::DisjointOr(a, b) | Expr::OrPat(a, b) = lhs {
                let fa = self.eq_closed(store, env, a, rhs)?;
                let fb = self.eq_closed(store, env, b, rhs)?;
                seq.check(F::or(vec![fa, fb]));
                return Ok(());
            }
        }
        match op {
            CmpOp::Eq => self.unify(store, env, seq, lhs, rhs),
            CmpOp::Ne => {
                let (l, _) = self.tr_value(store, env, seq, lhs)?;
                let (r, _) = self.tr_value(store, env, seq, rhs)?;
                let eq = self.safe_eq(store, l, r);
                let ne = store.not(eq);
                seq.check(F::Smt(ne));
                Ok(())
            }
            CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt => {
                let (l, _) = self.tr_value(store, env, seq, lhs)?;
                let (r, _) = self.tr_value(store, env, seq, rhs)?;
                // Ordering only exists on integers; if static typing could not
                // pin both sides down to Int, fall back to an uninterpreted
                // comparison atom instead of a malformed term.
                let atom = if store.sort(l).is_int() && store.sort(r).is_int() {
                    match op {
                        CmpOp::Le => store.le(l, r),
                        CmpOp::Lt => store.lt(l, r),
                        CmpOp::Ge => store.ge(l, r),
                        CmpOp::Gt => store.gt(l, r),
                        _ => unreachable!(),
                    }
                } else {
                    store.app(&format!("cmp${op:?}"), vec![l, r], Sort::Bool)
                };
                seq.check(F::Smt(atom));
                Ok(())
            }
        }
    }

    fn eq_closed(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        lhs: &Expr,
        rhs: &Expr,
    ) -> VcResult<F> {
        let mut sub = Seq::new();
        let mut env2 = env.clone();
        self.vf_cmp(store, &mut env2, &mut sub, CmpOp::Eq, lhs, rhs)?;
        Ok(sub.close(F::True))
    }

    /// Solves `lhs = rhs`. When one side is a binder (declaration pattern,
    /// `result`, or an unknown variable) it is bound to the other side's
    /// value via an assume; otherwise both sides are evaluated and equated.
    fn unify(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        lhs: &Expr,
        rhs: &Expr,
    ) -> VcResult<()> {
        // Prefer treating a constructor-like pattern as the *matcher* and the
        // other side as the value.
        let lhs_binder = self.is_binder(env, lhs);
        let rhs_binder = self.is_binder(env, rhs);
        match (lhs_binder, rhs_binder) {
            (true, false) => {
                let (v, ty) = self.tr_value(store, env, seq, rhs)?;
                self.tr_match(store, env, seq, lhs, v, &ty)
            }
            (false, true) => {
                let (v, ty) = self.tr_value(store, env, seq, lhs)?;
                self.tr_match(store, env, seq, rhs, v, &ty)
            }
            _ => {
                // Either both sides are fully known, or both bind: evaluate
                // both (binders become fresh values) and equate.
                if matches!(lhs, Expr::Call { .. }) && !matches!(rhs, Expr::Call { .. }) {
                    let (v, ty) = self.tr_value(store, env, seq, rhs)?;
                    return self.tr_match(store, env, seq, lhs, v, &ty);
                }
                if matches!(rhs, Expr::Call { .. }) && !matches!(lhs, Expr::Call { .. }) {
                    let (v, ty) = self.tr_value(store, env, seq, lhs)?;
                    return self.tr_match(store, env, seq, rhs, v, &ty);
                }
                let (l, _) = self.tr_value(store, env, seq, lhs)?;
                let (r, _) = self.tr_value(store, env, seq, rhs)?;
                let eq = self.safe_eq(store, l, r);
                seq.check(F::Smt(eq));
                Ok(())
            }
        }
    }

    /// Whether an expression is a pure binder (its match always succeeds by
    /// binding): a declaration pattern, wildcard, or `result` when `result`
    /// is an unknown of the current mode.
    fn is_binder(&self, env: &Env, e: &Expr) -> bool {
        match e {
            Expr::Decl(..) | Expr::Wildcard => true,
            Expr::Result => env.result_term.is_none(),
            Expr::Var(name) => {
                if env.is_unknown(name) {
                    return true;
                }
                if env.lookup(name).is_some() {
                    return false;
                }
                // A bare field of the enclosing class is a known value, not a
                // binder.
                if let Some(class) = &env.self_class {
                    if self.table.field_type(class, name).is_some() {
                        return false;
                    }
                }
                true
            }
            Expr::Tuple(xs) => xs.iter().any(|x| self.is_binder(env, x)),
            _ => false,
        }
    }

    fn vf_atom(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        e: &Expr,
    ) -> VcResult<()> {
        match e {
            // The opaque `notall` predicate: sound to treat as true (§4.5).
            Expr::Call {
                receiver: None,
                name,
                ..
            } if name == "notall" => Ok(()),
            Expr::Call { .. } => {
                let (value, _) = self.tr_value(store, env, seq, e)?;
                // A predicate-position call must produce `true`.
                if store.sort(value).is_bool() {
                    seq.check(F::Smt(value));
                }
                Ok(())
            }
            Expr::BoolLit(b) => {
                if !*b {
                    seq.check(F::False);
                }
                Ok(())
            }
            Expr::Decl(..) => {
                // An uninitialized declaration (`Nat n;`): the variable was
                // already pre-declared; nothing to check.
                Ok(())
            }
            other => {
                let (value, ty) = self.tr_value(store, env, seq, other)?;
                if matches!(ty, Type::Boolean) {
                    seq.check(F::Smt(value));
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Value translation (VP) and match translation (VM)
    // ------------------------------------------------------------------

    /// Translates an expression in value position, returning its SMT term and
    /// static type. Calls use their forward (construction) mode.
    pub fn tr_value(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        e: &Expr,
    ) -> VcResult<(TermId, Type)> {
        match e {
            Expr::IntLit(n) => Ok((store.int(*n), Type::Int)),
            Expr::BoolLit(b) => Ok((if *b { store.tt() } else { store.ff() }, Type::Boolean)),
            Expr::Null => {
                let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                Ok((store.var("null", sort), Type::Object))
            }
            Expr::StrLit(s) => {
                let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                Ok((store.var(&format!("str${s}"), sort), Type::Object))
            }
            Expr::This => match (env.this_term, env.self_class.clone()) {
                (Some(t), Some(c)) => Ok((t, Type::Named(c))),
                _ => Err(self.err(env, "`this` is not in scope")),
            },
            Expr::Result => match env.result_term {
                Some(t) => Ok((t, env.result_type.clone().unwrap_or(Type::Object))),
                None => {
                    // `result` used as an unknown: pre-declare it.
                    let ty = env.result_type.clone().unwrap_or(Type::Object);
                    let sort = self.sort_of(store, &ty);
                    let t = store.fresh_var("result", sort);
                    env.result_term = Some(t);
                    if let Some(f) = self.type_membership(store, t, &ty) {
                        seq.assume(f);
                    }
                    Ok((t, ty))
                }
            },
            Expr::Wildcard => {
                let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                Ok((store.fresh_var("wild", sort), Type::Object))
            }
            Expr::Var(name) => self.resolve_var(store, env, seq, name),
            Expr::Decl(ty, name) => {
                if name == "_" {
                    let sort = self.sort_of(store, ty);
                    let t = store.fresh_var("wild", sort);
                    if let Some(f) = self.type_membership(store, t, ty) {
                        seq.assume(f);
                    }
                    return Ok((t, ty.clone()));
                }
                match env.lookup(name) {
                    Some((t, tty)) => Ok((*t, tty.clone())),
                    None => {
                        let t = self.declare_var(store, env, seq, name, ty);
                        Ok((t, ty.clone()))
                    }
                }
            }
            Expr::Field(base, field) => {
                let (b, bty) = self.tr_value(store, env, seq, base)?;
                self.field_term(store, seq, b, &bty, field)
            }
            Expr::Binary(op, a, b) => {
                let (ta, _) = self.tr_value(store, env, seq, a)?;
                let (tb, _) = self.tr_value(store, env, seq, b)?;
                let t = self.arith(store, *op, ta, tb);
                Ok((t, Type::Int))
            }
            Expr::Neg(a) => {
                let (ta, _) = self.tr_value(store, env, seq, a)?;
                let t = if store.sort(ta).is_int() {
                    store.neg(ta)
                } else {
                    store.app("arith$Neg", vec![ta], Sort::Int)
                };
                Ok((t, Type::Int))
            }
            Expr::Index(base, idx) => {
                let (b, _) = self.tr_value(store, env, seq, base)?;
                let (i, _) = self.tr_value(store, env, seq, idx)?;
                // Arrays are abstracted as an uninterpreted select function.
                let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                Ok((store.app("select", vec![b, i], sort), Type::Object))
            }
            Expr::NewArray(ty, len) => {
                let (l, _) = self.tr_value(store, env, seq, len)?;
                let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                let arr = store.app("newarray", vec![l], sort);
                Ok((arr, Type::Array(Box::new(ty.clone()))))
            }
            Expr::Tuple(xs) => {
                // Tuples are not first-class; in value position they become an
                // uninterpreted tuple constructor (only compared componentwise
                // before reaching here).
                let mut parts = Vec::new();
                for x in xs {
                    parts.push(self.tr_value(store, env, seq, x)?.0);
                }
                let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                Ok((store.app("tuple", parts, sort), Type::Object))
            }
            Expr::As(a, b) => {
                let (va, ty) = self.tr_value(store, env, seq, a)?;
                self.tr_match(store, env, seq, b, va, &ty)?;
                Ok((va, ty))
            }
            Expr::OrPat(a, _) | Expr::DisjointOr(a, _) => {
                // In pure value position, over-approximate with the first arm
                // (the disjunction is handled where it matters: matching and
                // comparisons).
                self.tr_value(store, env, seq, a)
            }
            Expr::Where(p, f) => {
                let (v, ty) = self.tr_value(store, env, seq, p)?;
                self.vf(store, env, seq, f)?;
                Ok((v, ty))
            }
            Expr::Call { .. } => self.tr_call(store, env, seq, e, None),
        }
    }

    /// Matches a pattern against a known value (`VM`).
    pub fn tr_match(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        pattern: &Expr,
        value: TermId,
        value_ty: &Type,
    ) -> VcResult<()> {
        match pattern {
            Expr::Wildcard => Ok(()),
            Expr::Decl(ty, name) => {
                if name == "_" {
                    if let Some(f) = self.type_membership(store, value, ty) {
                        seq.check(f);
                    }
                    return Ok(());
                }
                let existing = env.lookup(name).cloned();
                match existing {
                    Some((t, _)) => {
                        let eq = self.safe_eq(store, t, value);
                        seq.assume(F::Smt(eq));
                    }
                    None => {
                        env.bind(name, value, ty.clone());
                    }
                }
                if let Some(f) = self.type_membership(store, value, ty) {
                    // A declaration pattern with a narrower type acts as a
                    // type test (instanceof) on the matched value.
                    if ty.name() != value_ty.name() {
                        seq.check(f);
                    } else {
                        seq.assume(f);
                    }
                }
                Ok(())
            }
            Expr::Var(name) => match env.lookup(name).cloned() {
                Some((t, _)) => {
                    let eq = self.safe_eq(store, t, value);
                    if env.is_unknown(name) {
                        seq.assume(F::Smt(eq));
                    } else {
                        seq.check(F::Smt(eq));
                    }
                    Ok(())
                }
                None => {
                    env.bind(name, value, value_ty.clone());
                    Ok(())
                }
            },
            Expr::Result => match env.result_term {
                Some(t) => {
                    let eq = self.safe_eq(store, t, value);
                    seq.check(F::Smt(eq));
                    Ok(())
                }
                None => {
                    env.result_term = Some(value);
                    Ok(())
                }
            },
            Expr::As(a, b) => {
                self.tr_match(store, env, seq, a, value, value_ty)?;
                self.tr_match(store, env, seq, b, value, value_ty)
            }
            Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                let fa = self.match_closed(store, env, a, value, value_ty)?;
                let fb = self.match_closed(store, env, b, value, value_ty)?;
                seq.check(F::or(vec![fa, fb]));
                Ok(())
            }
            Expr::Where(p, f) => {
                self.tr_match(store, env, seq, p, value, value_ty)?;
                self.vf(store, env, seq, f)
            }
            Expr::Tuple(xs) => {
                // Matching a tuple against a single value: abstract the value
                // as an uninterpreted tuple and match componentwise.
                for (i, x) in xs.iter().enumerate() {
                    let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
                    let proj = store.app(&format!("proj{i}"), vec![value], sort);
                    self.tr_match(store, env, seq, x, proj, &Type::Object)?;
                }
                Ok(())
            }
            Expr::Call { .. } => {
                self.tr_call(store, env, seq, pattern, Some((value, value_ty.clone())))?;
                Ok(())
            }
            // Any other expression form: evaluate and compare.
            other => {
                let (v, _) = self.tr_value(store, env, seq, other)?;
                let eq = self.safe_eq(store, v, value);
                seq.check(F::Smt(eq));
                Ok(())
            }
        }
    }

    fn match_closed(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        pattern: &Expr,
        value: TermId,
        value_ty: &Type,
    ) -> VcResult<F> {
        let mut sub = Seq::new();
        let mut env2 = env.clone();
        self.tr_match(store, &mut env2, &mut sub, pattern, value, value_ty)?;
        Ok(sub.close(F::True))
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    /// Translates a call. `match_target` is `Some((value, type))` when the
    /// call is a pattern matched against a known value (backward mode);
    /// `None` when it constructs / computes a value (forward mode).
    ///
    /// Returns the term standing for the call's result.
    fn tr_call(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        call: &Expr,
        match_target: Option<(TermId, Type)>,
    ) -> VcResult<(TermId, Type)> {
        let Expr::Call {
            receiver,
            name,
            args,
        } = call
        else {
            return Err(self.err(env, "internal: tr_call on a non-call"));
        };

        // `freshVar` and other unresolvable helpers become uninterpreted.
        let resolved = self.resolve_call(env, receiver.as_deref(), name, &match_target);
        let Some((owner, minfo)) = resolved else {
            // Unknown method: model the result as an uninterpreted function of
            // the arguments (sound over-approximation).
            let mut arg_terms = Vec::new();
            if let Some(r) = receiver {
                arg_terms.push(self.tr_value(store, env, seq, r)?.0);
            }
            for a in args {
                arg_terms.push(self.tr_value(store, env, seq, a)?.0);
            }
            let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
            let t = store.app(&format!("fun${name}"), arg_terms, sort);
            return Ok((t, Type::Object));
        };

        let result_ty = minfo.result_type();

        // Work out which argument positions are outputs (contain binders) and
        // find a matching mode.
        let arg_is_output: Vec<bool> = args.iter().map(|a| self.is_output_arg(env, a)).collect();
        let unknown_params: Vec<String> = minfo
            .decl
            .params
            .iter()
            .zip(arg_is_output.iter())
            .filter(|(_, out)| **out)
            .map(|(p, _)| p.name.clone())
            .collect();
        let result_unknown = match_target.is_none();
        let mode_idx = minfo
            .find_mode(&unknown_params, result_unknown)
            .or_else(|| minfo.find_mode(&unknown_params, !result_unknown))
            .unwrap_or(0);
        let mode = minfo.modes[mode_idx].clone();

        // Receiver value. For named constructors the receiver *is* the value
        // being matched (or the constructed result).
        let receiver_term: Option<TermId> = match receiver.as_deref() {
            Some(Expr::Var(v)) if self.table.type_info(v).is_some() => None, // static call
            Some(r) => Some(self.tr_value(store, env, seq, r)?.0),
            None => None,
        };

        // The result / matched value.
        let (result_term, is_fresh_result) = match &match_target {
            Some((v, _)) => (*v, false),
            None => {
                let sort = self.sort_of(store, &result_ty);
                (store.fresh_var(&format!("{name}$res"), sort), true)
            }
        };
        if is_fresh_result {
            if let Some(f) = self.type_membership(store, result_term, &result_ty) {
                seq.assume(f);
            }
        } else if let Some(f) = self.type_membership(store, result_term, &result_ty) {
            // Matching against a value: membership in the constructor's owner
            // type is a requirement.
            seq.check(f);
        }

        // Named constructors invoked on an explicit object receiver act as
        // predicates on that receiver: the receiver is the matched value.
        let subject = if minfo.is_named_constructor() {
            match (receiver_term, &match_target) {
                (Some(r), None) => r,
                _ => match (&match_target, env.this_term) {
                    (Some((v, _)), _) => *v,
                    (None, _) => result_term,
                },
            }
        } else {
            result_term
        };
        // Receiverless named-constructor *predicates* (e.g. `zero()` inside an
        // invariant) default their subject to `this`.
        let subject = if minfo.is_named_constructor()
            && receiver_term.is_none()
            && match_target.is_none()
            && !self.call_constructs(receiver.as_deref())
        {
            env.this_term.unwrap_or(subject)
        } else {
            subject
        };

        // Translate arguments: known args are values; output args are matched
        // against fresh output variables afterwards.
        let mut known_args: Vec<(usize, TermId)> = Vec::new();
        let mut output_terms: Vec<(usize, TermId)> = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let param_ty = minfo
                .decl
                .params
                .get(i)
                .map(|p| p.ty.clone())
                .unwrap_or(Type::Object);
            if arg_is_output.get(i).copied().unwrap_or(false)
                && mode.unknown_params.contains(
                    &minfo
                        .decl
                        .params
                        .get(i)
                        .map(|p| p.name.clone())
                        .unwrap_or_default(),
                )
            {
                let sort = self.sort_of(store, &param_ty);
                let out = store.fresh_var(&format!("{name}$out{i}"), sort);
                if let Some(f) = self.type_membership(store, out, &param_ty) {
                    seq.assume(f);
                }
                output_terms.push((i, out));
            } else {
                let (t, _) = self.tr_value(store, env, seq, a)?;
                known_args.push((i, t));
            }
        }

        // ok$ predicate over the knowns of this mode.
        let ok_args = {
            let mut v = Vec::new();
            if !mode.result_unknown || match_target.is_some() {
                v.push(subject);
            }
            for (_, t) in &known_args {
                v.push(*t);
            }
            v
        };
        let ok_name = format!("ok${owner}${name}$m{mode_idx}");
        let ok_atom = store.app(&ok_name, ok_args, Sort::Bool);
        seq.check(F::Smt(ok_atom));

        // ens$ predicate over everything (result + all argument terms).
        let mut ens_args = vec![subject];
        for (i, _) in minfo.decl.params.iter().enumerate() {
            if let Some((_, t)) = known_args.iter().find(|(k, _)| *k == i) {
                ens_args.push(*t);
            } else if let Some((_, t)) = output_terms.iter().find(|(k, _)| *k == i) {
                ens_args.push(*t);
            }
        }
        let ens_name = format!("ens${owner}${name}");
        let ens_atom = store.app(&ens_name, ens_args, Sort::Bool);
        seq.assume(F::Smt(ens_atom));

        // Bind the output argument patterns against the fresh output values.
        for (i, out) in &output_terms {
            let param_ty = minfo
                .decl
                .params
                .get(*i)
                .map(|p| p.ty.clone())
                .unwrap_or(Type::Object);
            self.tr_match(store, env, seq, &args[*i], *out, &param_ty)?;
        }

        Ok((result_term, result_ty))
    }

    /// Whether a receiverless named-constructor call is a construction
    /// (`Class.name(...)` style is handled by the receiver being a type name
    /// and is always a construction).
    fn call_constructs(&self, receiver: Option<&Expr>) -> bool {
        matches!(receiver, Some(Expr::Var(v)) if self.table.type_info(v).is_some())
    }

    /// Whether an argument expression contains binders (so that the
    /// corresponding parameter is an output of the call).
    fn is_output_arg(&self, env: &Env, e: &Expr) -> bool {
        match e {
            Expr::Decl(..) => true,
            Expr::Wildcard => true,
            Expr::Var(name) => env.lookup(name).is_none() || env.is_unknown(name),
            Expr::Result => env.result_term.is_none(),
            Expr::Tuple(xs) => xs.iter().any(|x| self.is_output_arg(env, x)),
            Expr::As(a, b) => self.is_output_arg(env, a) || self.is_output_arg(env, b),
            Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                self.is_output_arg(env, a) && self.is_output_arg(env, b)
            }
            Expr::Where(p, _) => self.is_output_arg(env, p),
            Expr::Call { args, .. } => args.iter().any(|a| self.is_output_arg(env, a)),
            _ => false,
        }
    }

    /// Resolves a call to its owner type and method info.
    fn resolve_call(
        &self,
        env: &Env,
        receiver: Option<&Expr>,
        name: &str,
        match_target: &Option<(TermId, Type)>,
    ) -> Option<(String, MethodInfo)> {
        // Static receiver: `Class.name(...)`.
        if let Some(Expr::Var(class)) = receiver {
            if self.table.type_info(class).is_some() {
                if let Some(m) = self.table.lookup_method(class, name) {
                    return Some((class.clone(), m.clone()));
                }
            }
        }
        // Instance receiver: resolve through its static type.
        if let Some(r) = receiver {
            if let Some(ty_name) = self.static_type_name(env, r) {
                if let Some(m) = self.table.lookup_method(&ty_name, name) {
                    return Some((ty_name, m.clone()));
                }
            }
        }
        // Matching a value: resolve through the value's static type.
        if let Some((_, Type::Named(ty_name))) = match_target {
            if let Some(m) = self.table.lookup_method(ty_name, name) {
                return Some((ty_name.clone(), m.clone()));
            }
        }
        // Class constructor: `ZNat(...)`.
        if self.table.type_info(name).is_some() {
            if let Some(m) = self.table.lookup_class_constructor(name) {
                return Some((name.to_owned(), m.clone()));
            }
        }
        // Enclosing class.
        if let Some(c) = &env.self_class {
            if let Some(m) = self.table.lookup_method(c, name) {
                return Some((m.owner.clone(), m.clone()));
            }
        }
        // Free-standing methods.
        if let Some(m) = self.table.lookup_free_method(name) {
            return Some(("<toplevel>".into(), m.clone()));
        }
        // Any type declaring it (last resort, keeps modularity of naming by
        // using the declaring owner).
        for t in self.table.types() {
            if let Some(m) = t.methods.iter().find(|m| m.decl.name == name) {
                return Some((m.owner.clone(), m.clone()));
            }
        }
        None
    }

    /// Static type of an expression when cheaply derivable (variables,
    /// `this`, fields).
    fn static_type_name(&self, env: &Env, e: &Expr) -> Option<String> {
        match e {
            Expr::This => env.self_class.clone(),
            Expr::Result => env.result_type.as_ref().and_then(|t| match t {
                Type::Named(n) => Some(n.clone()),
                _ => None,
            }),
            Expr::Var(name) | Expr::Decl(_, name) => match env.lookup(name) {
                Some((_, Type::Named(n))) => Some(n.clone()),
                _ => None,
            },
            Expr::Field(base, field) => {
                let base_ty = self.static_type_name(env, base)?;
                match self.table.field_type(&base_ty, field) {
                    Some(Type::Named(n)) => Some(n),
                    _ => None,
                }
            }
            Expr::Call { receiver, name, .. } => {
                let owner = if let Some(Expr::Var(class)) = receiver.as_deref() {
                    if self.table.type_info(class).is_some() {
                        Some(class.clone())
                    } else {
                        None
                    }
                } else {
                    receiver
                        .as_deref()
                        .and_then(|r| self.static_type_name(env, r))
                };
                let owner = owner.or_else(|| env.self_class.clone())?;
                match self.table.lookup_method(&owner, name)?.result_type() {
                    Type::Named(n) => Some(n),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn resolve_var(
        &self,
        store: &mut TermStore,
        env: &mut Env,
        seq: &mut Seq,
        name: &str,
    ) -> VcResult<(TermId, Type)> {
        if let Some((t, ty)) = env.lookup(name) {
            return Ok((*t, ty.clone()));
        }
        // A bare field reference inside the enclosing class.
        if let (Some(class), Some(this)) = (env.self_class.clone(), env.this_term) {
            if self.table.field_type(&class, name).is_some() {
                return self.field_term(store, seq, this, &Type::Named(class), name);
            }
        }
        // A class name used as a value (e.g. in `Class.method()` the receiver
        // is handled elsewhere; reaching here means it is used oddly).
        if self.table.type_info(name).is_some() {
            let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
            return Ok((store.var(&format!("class${name}"), sort), Type::Object));
        }
        // Unknown variable: introduce it as an unconstrained value so that
        // verification can proceed (the runtime would reject this program).
        let sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
        let t = store.fresh_var(name, sort);
        env.bind(name, t, Type::Object);
        Ok((t, Type::Object))
    }

    /// A field access as an uninterpreted function of the object.
    fn field_term(
        &self,
        store: &mut TermStore,
        seq: &mut Seq,
        base: TermId,
        base_ty: &Type,
        field: &str,
    ) -> VcResult<(TermId, Type)> {
        let owner = base_ty.name();
        let fty = self.table.field_type(&owner, field).unwrap_or(Type::Object);
        let sort = self.sort_of(store, &fty);
        let t = store.app(&format!("field${owner}${field}"), vec![base], sort);
        if let Some(f) = self.type_membership(store, t, &fty) {
            seq.assume(f);
        }
        Ok((t, fty))
    }

    /// Equality that tolerates sort mismatches (which can arise when static
    /// types cannot be tracked precisely): mismatched sorts become an
    /// uninterpreted equality atom instead of panicking.
    fn safe_eq(&self, store: &mut TermStore, a: TermId, b: TermId) -> TermId {
        if store.sort(a) == store.sort(b) {
            store.eq(a, b)
        } else {
            store.app("eq$mixed", vec![a, b], Sort::Bool)
        }
    }

    fn arith(&self, store: &mut TermStore, op: BinOp, a: TermId, b: TermId) -> TermId {
        use jmatch_smt::TermData;
        if !store.sort(a).is_int() || !store.sort(b).is_int() {
            // Arithmetic over something static typing could not resolve to an
            // integer: abstract it as an uninterpreted function.
            return store.app(&format!("arith${op:?}"), vec![a, b], Sort::Int);
        }
        match op {
            BinOp::Add => store.add(a, b),
            BinOp::Sub => store.sub(a, b),
            BinOp::Mul => {
                // Only multiplication by a constant stays linear.
                if let TermData::IntConst(c) = *store.data(a) {
                    store.mul_const(c, b)
                } else if let TermData::IntConst(c) = *store.data(b) {
                    store.mul_const(c, a)
                } else {
                    store.app("mul", vec![a, b], Sort::Int)
                }
            }
            BinOp::Div => store.app("div", vec![a, b], Sort::Int),
            BinOp::Rem => store.app("rem", vec![a, b], Sort::Int),
        }
    }

    fn err(&self, env: &Env, message: impl Into<String>) -> CompileError {
        CompileError {
            message: message.into(),
            context: env
                .self_class
                .clone()
                .unwrap_or_else(|| "<toplevel>".into()),
        }
    }

    // ------------------------------------------------------------------
    // Spec lookup helpers shared with the expander
    // ------------------------------------------------------------------

    /// The `matches` clause of a method, falling back to the declaration in a
    /// supertype (specification inheritance).
    pub fn matches_clause(&self, owner: &str, minfo: &MethodInfo) -> Option<Formula> {
        if minfo.decl.matches.is_some() {
            return minfo.decl.matches.clone();
        }
        self.inherited_spec(owner, &minfo.decl.name, |m| m.decl.matches.clone())
    }

    /// The `ensures` clause of a method, falling back to a supertype.
    pub fn ensures_clause(&self, owner: &str, minfo: &MethodInfo) -> Option<Formula> {
        if minfo.decl.ensures.is_some() {
            return minfo.decl.ensures.clone();
        }
        self.inherited_spec(owner, &minfo.decl.name, |m| m.decl.ensures.clone())
    }

    fn inherited_spec(
        &self,
        owner: &str,
        name: &str,
        get: impl Fn(&MethodInfo) -> Option<Formula> + Copy,
    ) -> Option<Formula> {
        let info = self.table.type_info(owner)?;
        for sup in &info.supertypes {
            if let Some(m) = self.table.lookup_method(sup, name) {
                if let Some(f) = get(m) {
                    return Some(f);
                }
            }
            if let Some(f) = self.inherited_spec(sup, name, get) {
                return Some(f);
            }
        }
        None
    }

    /// The knowns (names) of a mode, in the canonical order used by the `ok$`
    /// predicate arguments: the subject (`result`) first when known, then the
    /// known parameters in declaration order.
    pub fn mode_knowns(&self, minfo: &MethodInfo, mode: &Mode, mode_idx: ModeIndex) -> Vec<String> {
        let _ = mode_idx;
        let mut out = Vec::new();
        if !mode.result_unknown {
            out.push("result".to_owned());
        }
        for p in &minfo.decl.params {
            if mode.param_is_known(&p.name) {
                out.push(p.name.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use jmatch_syntax::{parse_formula, parse_program};

    fn setup(src: &str) -> (VcGen, TermStore) {
        let program = parse_program(src).unwrap();
        let mut d = Diagnostics::new();
        let table = ClassTable::build(&program, &mut d);
        assert!(d.errors.is_empty(), "{:?}", d.errors);
        (VcGen::new(table), TermStore::new())
    }

    const NAT_SRC: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
        }
    "#;

    #[test]
    fn negate_keeps_assumes() {
        let mut store = TermStore::new();
        let x = store.var("x", Sort::Int);
        let zero = store.int(0);
        let bind = F::Smt(store.eq(x, zero));
        let check = F::Smt(store.le(zero, x));
        let f = F::Assume(Box::new(bind.clone()), Box::new(check.clone()));
        let neg = f.negate();
        match neg {
            F::Assume(env, body) => {
                assert_eq!(*env, bind);
                assert_eq!(*body, F::Not(Box::new(check)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn lower_conjunction_structure() {
        let mut store = TermStore::new();
        let p = store.var("p", Sort::Bool);
        let q = store.var("q", Sort::Bool);
        let f = F::and(vec![
            F::Smt(p),
            F::Assume(Box::new(F::Smt(q)), Box::new(F::True)),
        ]);
        let lowered = f.lower(&mut store);
        let expected = store.and2(p, q);
        assert_eq!(lowered, expected);
    }

    #[test]
    fn translating_nat_case_produces_ok_predicate() {
        let (gen, mut store) = setup(NAT_SRC);
        let mut env = Env::new();
        let mut seq = Seq::new();
        let n = gen.declare_var(
            &mut store,
            &mut env,
            &mut seq,
            "n",
            &Type::Named("Nat".into()),
        );
        // n = succ(Nat k)
        let f = parse_formula("n = succ(Nat k)").unwrap();
        gen.declare_formula_vars(&mut store, &mut env, &mut seq, &f);
        gen.vf(&mut store, &mut env, &mut seq, &f).unwrap();
        let lowered = seq.close(F::True).lower(&mut store);
        let text = store.display(lowered);
        assert!(text.contains("ok$Nat$succ$m1"), "{text}");
        assert!(text.contains("ens$Nat$succ"), "{text}");
        assert!(text.contains("is$Nat"), "{text}");
        let _ = n;
    }

    #[test]
    fn invariant_translation_is_disjunction_of_constructors() {
        let (gen, mut store) = setup(NAT_SRC);
        let nat = gen.table.type_info("Nat").unwrap();
        let inv = &nat.invariants[0].formula;
        let mut env = Env::new();
        let mut seq = Seq::new();
        let this_sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
        let this = store.var("self", this_sort);
        env.this_term = Some(this);
        env.self_class = Some("Nat".into());
        gen.vf(&mut store, &mut env, &mut seq, inv).unwrap();
        let lowered = seq.close(F::True).lower(&mut store);
        let text = store.display(lowered);
        assert!(text.contains("ok$Nat$zero"), "{text}");
        assert!(text.contains("ok$Nat$succ"), "{text}");
        assert!(text.contains("||"), "{text}");
    }

    #[test]
    fn comparisons_become_arithmetic_atoms() {
        let (gen, mut store) = setup("class C { int val; }");
        let mut env = Env::new();
        let mut seq = Seq::new();
        env.self_class = Some("C".into());
        let this_sort = Sort::Obj(store.symbol(OBJECT_SORT_NAME));
        let this = store.var("self", this_sort);
        env.this_term = Some(this);
        let f = parse_formula("val >= 1 && val - 1 <= 10").unwrap();
        gen.vf(&mut store, &mut env, &mut seq, &f).unwrap();
        let lowered = seq.close(F::True).lower(&mut store);
        let text = store.display(lowered);
        assert!(text.contains("field$C$val"), "{text}");
        assert!(text.contains("<="), "{text}");
    }

    #[test]
    fn binder_side_is_assumed_not_checked() {
        let (gen, mut store) = setup("");
        let mut env = Env::new();
        let mut seq = Seq::new();
        // y is known; `int x = y - 1` binds x.
        let y = store.var("y", Sort::Int);
        env.bind("y", y, Type::Int);
        let f = parse_formula("int x = y - 1 && x > 0").unwrap();
        gen.declare_formula_vars(&mut store, &mut env, &mut seq, &f);
        gen.vf(&mut store, &mut env, &mut seq, &f).unwrap();
        let closed = seq.close(F::True);
        // Negating the whole thing should leave the binding intact (the
        // binding is environment knowledge); only the test `x > 0` flips.
        let neg = closed.negate().lower(&mut store);
        let text = store.display(neg);
        assert!(text.contains("="), "{text}");
        assert!(text.contains('!'), "the check must be negated: {text}");
    }

    #[test]
    fn or_pattern_translates_to_disjunction() {
        let (gen, mut store) = setup("");
        let mut env = Env::new();
        let mut seq = Seq::new();
        let x = store.var("x", Sort::Int);
        env.bind("x", x, Type::Int);
        let f = parse_formula("x = 1 | 2").unwrap();
        gen.vf(&mut store, &mut env, &mut seq, &f).unwrap();
        let lowered = seq.close(F::True).lower(&mut store);
        let text = store.display(lowered);
        assert!(text.contains("||"), "{text}");
        assert!(
            text.contains("(x = 1)") || text.contains("(1 = x)"),
            "{text}"
        );
    }

    #[test]
    fn unknown_function_becomes_uninterpreted() {
        let (gen, mut store) = setup("");
        let mut env = Env::new();
        let mut seq = Seq::new();
        let f = parse_formula("Var k = freshVar(e)").unwrap();
        gen.declare_formula_vars(&mut store, &mut env, &mut seq, &f);
        gen.vf(&mut store, &mut env, &mut seq, &f).unwrap();
        let lowered = seq.close(F::True).lower(&mut store);
        let text = store.display(lowered);
        assert!(text.contains("fun$freshVar"), "{text}");
    }
}
