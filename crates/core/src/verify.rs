//! The verification driver: exhaustiveness, redundancy, totality,
//! disjointness and multiplicity checking (§5).
//!
//! For every method the verifier performs the checks of the paper:
//!
//! * `switch` / `cond` / `if` statements are checked arm by arm for
//!   redundancy and, when no `default`/`else` is present, for exhaustiveness
//!   (§5.1);
//! * `let` statements (including variable declarations) are checked for
//!   totality (§5.1);
//! * declarative method bodies are checked against their `matches` clause
//!   (assertion (2)) and `ensures` clause (assertion (3)) in every mode
//!   (§5.2); interface and abstract methods are checked for
//!   `ExtractM(matches) ⇒ ExtractM(ensures)`;
//! * `|` (disjoint disjunction) arms are checked pairwise disjoint and
//!   non-iterative modes are checked for multiplicity (§5.3).
//!
//! All checks reduce to (un)satisfiability queries against [`jmatch_smt`]
//! with the lazy [`crate::expand::JMatchExpander`] plugin, exactly as the
//! paper discharges them with Z3.
//!
//! ## One solver session per compilation
//!
//! The paper keeps a single Z3 process alive across all queries (§6.2); this
//! verifier does the same with [`jmatch_smt::Solver`]'s assertion scopes. A
//! [`Session`] — one shared [`TermStore`], one solver, one
//! [`JMatchExpander`] — is threaded through every per-method check, each VC
//! query being delimited by `push`/`pop` so that learned clauses, Tseitin
//! encodings, and expanded invariant/`matches`/`ensures` lemmas carry over
//! from query to query. On top of that, query results are memoized in a
//! per-compilation cache keyed on the canonicalized (sorted, deduplicated)
//! fact set — hash-consing in the shared store makes structurally equal
//! formulas share a [`TermId`], so the key is canonical by construction.

use crate::diag::{Diagnostics, WarningKind};
use crate::expand::JMatchExpander;
use crate::extract;
use crate::table::{ClassTable, MethodInfo, TypeInfo};
use crate::vc::{Env, Seq, VcGen, F};
use jmatch_smt::{SatResult, Solver, SolverConfig, TermId, TermStore};
use jmatch_syntax::ast::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Options controlling verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Maximum lazy-expansion depth (iterative deepening bound, §6.2).
    pub max_expansion_depth: u32,
    /// Whether to emit [`WarningKind::Unknown`] warnings when the solver gives
    /// up rather than staying silent.
    pub report_unknown: bool,
    /// Whether VC queries share one incremental solver session (the default,
    /// mirroring the paper's single Z3 process). Turning this off rebuilds a
    /// solver and expander for every individual query — the pre-incremental
    /// architecture — and exists as the baseline for the
    /// `incremental_vs_fresh` bench.
    pub session_reuse: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            max_expansion_depth: 3,
            report_unknown: false,
            session_reuse: true,
        }
    }
}

/// The verifier.
#[derive(Debug, Clone)]
pub struct Verifier {
    gen: VcGen,
    options: VerifyOptions,
}

/// The shared solver session threaded through a whole verification run: one
/// term store, one incremental solver, one lazy expander, and a cache of VC
/// query results keyed on canonicalized fact sets.
#[derive(Debug)]
pub struct Session {
    store: TermStore,
    solver: Solver,
    expander: JMatchExpander,
    cache: HashMap<Vec<TermId>, SatResult>,
    stats: SessionStats,
}

/// Counters describing how a [`Session`] discharged its VC queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// VC queries answered by actually running the solver.
    pub solver_queries: u64,
    /// VC queries answered from the canonical-formula cache.
    pub cache_hits: u64,
    /// Candidate boolean models examined across all queries.
    pub rounds: u64,
    /// Theory conflicts (blocking clauses) across all queries.
    pub theory_conflicts: u64,
    /// Lazy-expansion lemmas asserted across all queries.
    pub lemmas: u64,
    /// CDCL conflicts across the whole session.
    pub sat_conflicts: u64,
    /// CDCL decisions across the whole session.
    pub sat_decisions: u64,
    /// CDCL unit propagations across the whole session.
    pub sat_propagations: u64,
}

impl SessionStats {
    /// Adds the counters of another session (used when aggregating over
    /// several sessions, e.g. one per method).
    pub fn absorb(&mut self, other: SessionStats) {
        self.solver_queries += other.solver_queries;
        self.cache_hits += other.cache_hits;
        self.rounds += other.rounds;
        self.theory_conflicts += other.theory_conflicts;
        self.lemmas += other.lemmas;
        self.sat_conflicts += other.sat_conflicts;
        self.sat_decisions += other.sat_decisions;
        self.sat_propagations += other.sat_propagations;
    }
}

impl Session {
    /// Repoints the session's lazy expander at a (new) verifier without
    /// discarding the term store, the solver's learned clauses, or the VC
    /// result cache.
    ///
    /// This is the session-reuse half of incremental recompilation: a method
    /// whose *verification environment* is unchanged by an edit (same
    /// signature, same spec closure, same type hierarchy — see
    /// [`crate::incremental`]) keeps its session across rebuilds, and only the
    /// expander — whose [`VcGen`] captures the class table of the new
    /// generation — must be swapped. Because the expander only ever unrolls
    /// *specs* (`is$T` invariants, `matches`/`ensures` clauses), never bodies,
    /// an unchanged environment means every cached VC verdict and learned
    /// clause is still sound for the new generation; the persistent
    /// [`TermStore`] keeps the hash-consed [`TermId`] cache keys valid.
    pub fn retarget(&mut self, verifier: &Verifier) {
        self.expander = JMatchExpander::new(verifier.gen.clone());
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats;
        // The shared solver's CDCL counters are cumulative; per-query
        // throwaway solvers (`session_reuse: false`) were already folded in.
        let (c, d, p) = self.solver.sat_counters();
        stats.sat_conflicts += c;
        stats.sat_decisions += d;
        stats.sat_propagations += p;
        stats
    }
}

/// Verification context threaded through statement checking: accumulated
/// facts (invariants, path conditions, earlier bindings) plus the variable
/// environment.
struct Ctx {
    facts: Vec<TermId>,
    env: Env,
}

impl Verifier {
    /// Creates a verifier for a resolved program.
    pub fn new(table: Arc<ClassTable>, options: VerifyOptions) -> Self {
        Verifier {
            gen: VcGen::new(table),
            options,
        }
    }

    /// Creates the shared solver session used for one verification run.
    pub fn new_session(&self) -> Session {
        Session {
            store: TermStore::new(),
            solver: Solver::with_config(SolverConfig {
                max_expansion_depth: self.options.max_expansion_depth,
                ..SolverConfig::default()
            }),
            expander: JMatchExpander::new(self.gen.clone()),
            cache: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Runs every check over the whole program.
    pub fn verify_program(&self) -> Diagnostics {
        self.verify_program_with_stats().0
    }

    /// Runs every check over the whole program, also returning the session's
    /// query/cache counters.
    pub fn verify_program_with_stats(&self) -> (Diagnostics, SessionStats) {
        let mut diags = Diagnostics::new();
        let mut sess = self.new_session();
        let types: Vec<TypeInfo> = self.gen.table.types().cloned().collect();
        for ty in &types {
            for m in &ty.methods {
                self.verify_method_in(&mut sess, Some(ty), m, &mut diags);
            }
        }
        for m in self.gen.table.free_methods() {
            self.verify_method_in(&mut sess, None, m, &mut diags);
        }
        (diags, sess.stats())
    }

    /// Verifies a single method (all applicable checks) in a fresh session.
    pub fn verify_method(
        &self,
        owner: Option<&TypeInfo>,
        minfo: &MethodInfo,
        diags: &mut Diagnostics,
    ) {
        let mut sess = self.new_session();
        self.verify_method_in(&mut sess, owner, minfo, diags);
    }

    /// Verifies a single method inside a shared session.
    pub fn verify_method_in(
        &self,
        sess: &mut Session,
        owner: Option<&TypeInfo>,
        minfo: &MethodInfo,
        diags: &mut Diagnostics,
    ) {
        let context = minfo.qualified_name();
        match &minfo.decl.body {
            MethodBody::Absent => self.verify_abstract_specs(sess, minfo, &context, diags),
            MethodBody::Formula(body) => {
                self.verify_declarative(sess, owner, minfo, body, &context, diags);
                self.verify_disjointness_in_formula(sess, owner, minfo, body, &context, diags);
                self.verify_multiplicity(minfo, body, &context, diags);
            }
            MethodBody::Block(stmts) => {
                self.verify_block(sess, owner, minfo, stmts, &context, diags);
            }
        }
    }

    // ------------------------------------------------------------------
    // Solver plumbing
    // ------------------------------------------------------------------

    /// Discharges one VC query through the shared session: the fact set is
    /// canonicalized (hash-consed ids, sorted, deduplicated) and looked up in
    /// the cache; on a miss the facts are asserted inside a `push`/`pop`
    /// scope so learned clauses and expansion lemmas persist while the
    /// query-local assertions retire.
    fn check_sat(&self, sess: &mut Session, facts: &[TermId]) -> SatResult {
        let mut key: Vec<TermId> = facts.to_vec();
        key.sort_unstable();
        key.dedup();
        if !self.options.session_reuse {
            // Baseline architecture: a throwaway solver and expander per
            // query, and no session state beyond the term store — in
            // particular no VC result cache, so benchmarks against this mode
            // measure the full pre-incremental cost of every query.
            sess.stats.solver_queries += 1;
            let mut solver = Solver::with_config(SolverConfig {
                max_expansion_depth: self.options.max_expansion_depth,
                ..SolverConfig::default()
            });
            for &f in &key {
                solver.assert_formula(&sess.store, f);
            }
            let mut expander = JMatchExpander::new(self.gen.clone());
            let result = solver.check_with_expander(&mut sess.store, &mut expander);
            let qs = solver.stats();
            sess.stats.rounds += qs.rounds;
            sess.stats.theory_conflicts += qs.theory_conflicts;
            sess.stats.lemmas += qs.lemmas;
            let (c, d, p) = solver.sat_counters();
            sess.stats.sat_conflicts += c;
            sess.stats.sat_decisions += d;
            sess.stats.sat_propagations += p;
            return result;
        }
        if let Some(hit) = sess.cache.get(&key) {
            sess.stats.cache_hits += 1;
            return hit.clone();
        }
        sess.stats.solver_queries += 1;
        sess.solver.push();
        for &f in &key {
            sess.solver.assert_formula(&sess.store, f);
        }
        let result = sess
            .solver
            .check_with_expander(&mut sess.store, &mut sess.expander);
        sess.solver.pop();
        let qs = sess.solver.stats();
        sess.stats.rounds += qs.rounds;
        sess.stats.theory_conflicts += qs.theory_conflicts;
        sess.stats.lemmas += qs.lemmas;
        sess.cache.insert(key, result.clone());
        result
    }

    /// Sets up the environment for verifying a method of `owner`: `this`,
    /// parameters, and the invariants visible from inside the class.
    fn method_ctx(
        &self,
        store: &mut TermStore,
        owner: Option<&TypeInfo>,
        minfo: &MethodInfo,
    ) -> Ctx {
        let mut env = Env::new();
        let mut seq = Seq::new();
        if let Some(ty) = owner {
            env.self_class = Some(ty.name.clone());
            if !minfo.decl.is_static {
                let this = self.gen.declare_var(
                    store,
                    &mut env,
                    &mut seq,
                    "this",
                    &Type::Named(ty.name.clone()),
                );
                env.this_term = Some(this);
            }
        }
        for p in &minfo.decl.params {
            self.gen
                .declare_var(store, &mut env, &mut seq, &p.name, &p.ty);
        }
        env.result_type = Some(minfo.result_type());
        let mut facts = vec![seq.close(F::True).lower(store)];
        // Private invariants of the owner are available when verifying its own
        // methods (the public ones come through the is$T expansion).
        if let (Some(ty), Some(this)) = (owner, env.this_term) {
            facts.extend(self.private_invariant_facts(store, &ty.name, this));
        }
        Ctx { facts, env }
    }

    /// The owner's private invariants instantiated on a given object term.
    fn private_invariant_facts(
        &self,
        store: &mut TermStore,
        owner: &str,
        this: TermId,
    ) -> Vec<TermId> {
        let mut facts = Vec::new();
        for inv in self.gen.table.visible_invariants(owner, true) {
            if inv.visibility == Visibility::Private {
                let mut e2 = Env::new();
                e2.self_class = Some(owner.to_owned());
                e2.this_term = Some(this);
                let mut s2 = Seq::new();
                self.gen
                    .declare_formula_vars(store, &mut e2, &mut s2, &inv.formula);
                if self.gen.vf(store, &mut e2, &mut s2, &inv.formula).is_ok() {
                    facts.push(s2.close(F::True).lower(store));
                }
            }
        }
        facts
    }

    fn counterexample(&self, store: &TermStore, model: &jmatch_smt::Model, ctx: &Ctx) -> String {
        let mut terms: Vec<TermId> = Vec::new();
        for name in ctx.env.names() {
            if let Some((t, _)) = ctx.env.lookup(name) {
                terms.push(*t);
            }
        }
        terms.sort();
        terms.dedup();
        let rendered = model.display_for(store, &terms);
        if rendered.is_empty() {
            "(no concrete witness rendered)".to_owned()
        } else {
            rendered
        }
    }

    // ------------------------------------------------------------------
    // §5.2: declarative bodies against matches / ensures
    // ------------------------------------------------------------------

    fn verify_declarative(
        &self,
        sess: &mut Session,
        owner: Option<&TypeInfo>,
        minfo: &MethodInfo,
        body: &Formula,
        context: &str,
        diags: &mut Diagnostics,
    ) {
        let owner_name = owner.map(|t| t.name.clone()).unwrap_or_default();
        let matches_clause = self.gen.matches_clause(&owner_name, minfo);
        let ensures_clause = self.gen.ensures_clause(&owner_name, minfo);
        if matches_clause.is_none() && ensures_clause.is_none() {
            return;
        }
        for (mode_idx, mode) in minfo.modes.iter().enumerate() {
            let mut ctx = self.method_ctx(&mut sess.store, owner, minfo);

            // In this mode the unknown parameters are unknowns to be solved by
            // the body; the known parameters keep the terms from the context.
            let env = ctx.env.clone();
            let unknown_names: HashSet<String> = mode.unknown_params.iter().cloned().collect();
            let mut env_for_body = Env::new();
            env_for_body.self_class = env.self_class.clone();
            env_for_body.this_term = env.this_term;
            env_for_body.result_type = env.result_type.clone();
            let mut mode_seq = Seq::new();
            for p in &minfo.decl.params {
                if unknown_names.contains(&p.name) {
                    self.gen.declare_var(
                        &mut sess.store,
                        &mut env_for_body,
                        &mut mode_seq,
                        &p.name,
                        &p.ty,
                    );
                    env_for_body.mark_unknown(&p.name);
                } else if let Some((t, ty)) = env.lookup(&p.name) {
                    env_for_body.bind(p.name.clone(), *t, ty.clone());
                }
            }
            let owner_name_opt = owner.map(|t| t.name.clone());
            if !mode.result_unknown {
                // The result (the matched object) is a known of this mode.
                let rty = minfo.result_type();
                let r = self.gen.declare_var(
                    &mut sess.store,
                    &mut env_for_body,
                    &mut mode_seq,
                    "$result",
                    &rty,
                );
                env_for_body.result_term = Some(r);
                if minfo.constructs_owner() {
                    env_for_body.this_term = Some(r);
                    if let Some(on) = &owner_name_opt {
                        ctx.facts
                            .extend(self.private_invariant_facts(&mut sess.store, on, r));
                    }
                }
            } else if minfo.constructs_owner() {
                // Construction mode: the fields of the object under
                // construction are unknowns to be solved for (§3.1).
                if let Some(ty) = owner {
                    for field in &ty.fields {
                        self.gen.declare_var(
                            &mut sess.store,
                            &mut env_for_body,
                            &mut mode_seq,
                            &field.name,
                            &field.ty,
                        );
                        env_for_body.mark_unknown(&field.name);
                    }
                }
            }
            ctx.facts
                .push(mode_seq.close(F::True).lower(&mut sess.store));

            // Assertion (2): ExtractM(matches) ∧ ¬VF(body) is unsatisfiable.
            if let Some(mclause) = &matches_clause {
                let knowns = self.gen.mode_knowns(minfo, mode, mode_idx);
                let unknowns: Vec<String> = {
                    let mut u = mode.unknown_params.clone();
                    if mode.result_unknown {
                        u.push("result".into());
                    }
                    u
                };
                let extracted = extract::extract(&self.gen.table, mclause, &knowns, &unknowns);
                let mut e_env = env_for_body.clone();
                let mut e_seq = Seq::new();
                self.gen.declare_formula_vars(
                    &mut sess.store,
                    &mut e_env,
                    &mut e_seq,
                    &extracted.formula,
                );
                if self
                    .gen
                    .vf(&mut sess.store, &mut e_env, &mut e_seq, &extracted.formula)
                    .is_err()
                {
                    continue;
                }
                let extract_term = e_seq.close(F::True).lower(&mut sess.store);

                let mut b_env = env_for_body.clone();
                let mut b_seq = Seq::new();
                self.gen
                    .declare_formula_vars(&mut sess.store, &mut b_env, &mut b_seq, body);
                if self
                    .gen
                    .vf(&mut sess.store, &mut b_env, &mut b_seq, body)
                    .is_err()
                {
                    continue;
                }
                let body_neg = b_seq.close(F::True).negate().lower(&mut sess.store);

                let mut facts = ctx.facts.clone();
                facts.push(extract_term);
                facts.push(body_neg);
                match self.check_sat(sess, &facts) {
                    SatResult::Sat(model) => {
                        let ce = self.counterexample(&sess.store, &model, &ctx);
                        diags.warn_with_counterexample(
                            WarningKind::TotalityViolation,
                            context,
                            format!(
                                "mode {mode_idx}: body may fail although the matching precondition holds"
                            ),
                            ce,
                        );
                    }
                    SatResult::Unknown if self.options.report_unknown => {
                        diags.warn(
                            WarningKind::Unknown,
                            context,
                            format!("mode {mode_idx}: could not verify totality"),
                        );
                    }
                    _ => {}
                }
            }

            // Assertion (3): VF(body) ∧ ¬VF(ensures) is unsatisfiable.
            if let Some(eclause) = &ensures_clause {
                let mut b_env = env_for_body.clone();
                let mut b_seq = Seq::new();
                self.gen
                    .declare_formula_vars(&mut sess.store, &mut b_env, &mut b_seq, body);
                if self
                    .gen
                    .vf(&mut sess.store, &mut b_env, &mut b_seq, body)
                    .is_err()
                {
                    continue;
                }
                let body_term = b_seq.close(F::True).lower(&mut sess.store);
                // The ensures clause is evaluated in the environment *after*
                // the body bound its unknowns.
                let mut e_seq = Seq::new();
                self.gen
                    .declare_formula_vars(&mut sess.store, &mut b_env, &mut e_seq, eclause);
                if self
                    .gen
                    .vf(&mut sess.store, &mut b_env, &mut e_seq, eclause)
                    .is_err()
                {
                    continue;
                }
                let ens_neg = e_seq.close(F::True).negate().lower(&mut sess.store);
                let mut facts = ctx.facts.clone();
                facts.push(body_term);
                facts.push(ens_neg);
                match self.check_sat(sess, &facts) {
                    SatResult::Sat(model) => {
                        let ce = self.counterexample(&sess.store, &model, &ctx);
                        diags.warn_with_counterexample(
                            WarningKind::PostconditionViolation,
                            context,
                            format!("mode {mode_idx}: body may succeed without establishing the ensures clause"),
                            ce,
                        );
                    }
                    SatResult::Unknown if self.options.report_unknown => {
                        diags.warn(
                            WarningKind::Unknown,
                            context,
                            format!("mode {mode_idx}: could not verify the ensures clause"),
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    /// Interface / abstract methods: `ExtractM(matches) ⇒ ExtractM(ensures)`.
    fn verify_abstract_specs(
        &self,
        sess: &mut Session,
        minfo: &MethodInfo,
        context: &str,
        diags: &mut Diagnostics,
    ) {
        let (Some(mclause), Some(eclause)) = (&minfo.decl.matches, &minfo.decl.ensures) else {
            return;
        };
        if mclause == eclause {
            return; // `matches ensures(f)` shorthand is trivially consistent.
        }
        for (mode_idx, mode) in minfo.modes.iter().enumerate() {
            let mut ctx = self.method_ctx(&mut sess.store, None, minfo);
            ctx.env.self_class = Some(minfo.owner.clone());
            let knowns = self.gen.mode_knowns(minfo, mode, mode_idx);
            let unknowns: Vec<String> = {
                let mut u = mode.unknown_params.clone();
                if mode.result_unknown {
                    u.push("result".into());
                }
                u
            };
            let em = extract::extract(&self.gen.table, mclause, &knowns, &unknowns);
            let ee = extract::extract(&self.gen.table, eclause, &knowns, &unknowns);
            let mut env = ctx.env.clone();
            if !mode.result_unknown {
                let rty = minfo.result_type();
                let mut seq = Seq::new();
                let r = self
                    .gen
                    .declare_var(&mut sess.store, &mut env, &mut seq, "$result", &rty);
                env.result_term = Some(r);
                if minfo.is_named_constructor() {
                    env.this_term = Some(r);
                }
                ctx.facts.push(seq.close(F::True).lower(&mut sess.store));
            }
            let mut s1 = Seq::new();
            let mut env1 = env.clone();
            self.gen
                .declare_formula_vars(&mut sess.store, &mut env1, &mut s1, &em.formula);
            if self
                .gen
                .vf(&mut sess.store, &mut env1, &mut s1, &em.formula)
                .is_err()
            {
                continue;
            }
            let m_term = s1.close(F::True).lower(&mut sess.store);
            let mut s2 = Seq::new();
            let mut env2 = env.clone();
            self.gen
                .declare_formula_vars(&mut sess.store, &mut env2, &mut s2, &ee.formula);
            if self
                .gen
                .vf(&mut sess.store, &mut env2, &mut s2, &ee.formula)
                .is_err()
            {
                continue;
            }
            let e_neg = s2.close(F::True).negate().lower(&mut sess.store);
            let mut facts = ctx.facts.clone();
            facts.push(m_term);
            facts.push(e_neg);
            if let SatResult::Sat(model) = self.check_sat(sess, &facts) {
                let ce = self.counterexample(&sess.store, &model, &ctx);
                diags.warn_with_counterexample(
                    WarningKind::SpecificationMismatch,
                    context,
                    format!(
                        "mode {mode_idx}: matches clause does not guarantee the ensures clause"
                    ),
                    ce,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // §5.3: disjointness and multiplicity
    // ------------------------------------------------------------------

    fn verify_disjointness_in_formula(
        &self,
        sess: &mut Session,
        owner: Option<&TypeInfo>,
        minfo: &MethodInfo,
        body: &Formula,
        context: &str,
        diags: &mut Diagnostics,
    ) {
        let mut pairs: Vec<(Formula, Formula)> = Vec::new();
        collect_disjoint_pairs(body, &mut pairs);
        for inv in owner.iter().flat_map(|t| t.invariants.iter()) {
            collect_disjoint_pairs(&inv.formula, &mut pairs);
        }
        for (a, b) in pairs {
            let ctx = self.method_ctx(&mut sess.store, owner, minfo);
            let mut env_a = ctx.env.clone();
            let mut seq_a = Seq::new();
            self.gen
                .declare_formula_vars(&mut sess.store, &mut env_a, &mut seq_a, &a);
            let mut env_b = ctx.env.clone();
            let mut seq_b = Seq::new();
            self.gen
                .declare_formula_vars(&mut sess.store, &mut env_b, &mut seq_b, &b);
            if self
                .gen
                .vf(&mut sess.store, &mut env_a, &mut seq_a, &a)
                .is_err()
                || self
                    .gen
                    .vf(&mut sess.store, &mut env_b, &mut seq_b, &b)
                    .is_err()
            {
                continue;
            }
            let ta = seq_a.close(F::True).lower(&mut sess.store);
            let tb = seq_b.close(F::True).lower(&mut sess.store);
            let mut facts = ctx.facts.clone();
            facts.push(ta);
            facts.push(tb);
            if let SatResult::Sat(model) = self.check_sat(sess, &facts) {
                let ce = self.counterexample(&sess.store, &model, &ctx);
                diags.warn_with_counterexample(
                    WarningKind::NotDisjoint,
                    context,
                    "the arms of `|` may match the same value",
                    ce,
                );
            }
        }
    }

    fn verify_multiplicity(
        &self,
        minfo: &MethodInfo,
        body: &Formula,
        context: &str,
        diags: &mut Diagnostics,
    ) {
        for (mode_idx, mode) in minfo.modes.iter().enumerate() {
            if mode.iterative || mode.unknown_params.is_empty() {
                continue;
            }
            if formula_or_mentions(body, &mode.unknown_params) {
                diags.warn(
                    WarningKind::Multiplicity,
                    context,
                    format!(
                        "mode {mode_idx} is not iterative but `||`/`#` may produce several solutions for {:?}",
                        mode.unknown_params
                    ),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // §5.1: statements
    // ------------------------------------------------------------------

    fn verify_block(
        &self,
        sess: &mut Session,
        owner: Option<&TypeInfo>,
        minfo: &MethodInfo,
        stmts: &[Stmt],
        context: &str,
        diags: &mut Diagnostics,
    ) {
        let mut ctx = self.method_ctx(&mut sess.store, owner, minfo);
        self.verify_stmts(sess, &mut ctx, stmts, context, diags);
    }

    fn verify_stmts(
        &self,
        sess: &mut Session,
        ctx: &mut Ctx,
        stmts: &[Stmt],
        context: &str,
        diags: &mut Diagnostics,
    ) {
        for stmt in stmts {
            self.verify_stmt(sess, ctx, stmt, context, diags);
        }
    }

    fn verify_stmt(
        &self,
        sess: &mut Session,
        ctx: &mut Ctx,
        stmt: &Stmt,
        context: &str,
        diags: &mut Diagnostics,
    ) {
        match stmt {
            Stmt::Let(f) => {
                // Totality of the binding (§5.1): negate(VF⟦f⟧) must be unsat.
                let mut env = ctx.env.clone();
                let mut seq = Seq::new();
                self.gen
                    .declare_formula_vars(&mut sess.store, &mut env, &mut seq, f);
                if self.gen.vf(&mut sess.store, &mut env, &mut seq, f).is_err() {
                    return;
                }
                let closed = seq.close(F::True);
                let neg = closed.clone().negate().lower(&mut sess.store);
                let mut facts = ctx.facts.clone();
                facts.push(neg);
                match self.check_sat(sess, &facts) {
                    SatResult::Sat(model) => {
                        let ce = self.counterexample(&sess.store, &model, ctx);
                        diags.warn_with_counterexample(
                            WarningKind::LetMayFail,
                            context,
                            "`let` (or variable initializer) may fail to match",
                            ce,
                        );
                    }
                    SatResult::Unknown if self.options.report_unknown => {
                        diags.warn(
                            WarningKind::Unknown,
                            context,
                            "could not verify `let` totality",
                        );
                    }
                    _ => {}
                }
                // The bindings and facts remain available afterwards.
                ctx.facts.push(closed.lower(&mut sess.store));
                ctx.env = env;
            }
            Stmt::Switch {
                scrutinees,
                cases,
                default,
            } => {
                // Desugar to cond (§5.1): y_i = v_i, arms are pattern matches.
                let mut scrutinee_terms = Vec::new();
                for s in scrutinees {
                    let mut seq = Seq::new();
                    match self
                        .gen
                        .tr_value(&mut sess.store, &mut ctx.env, &mut seq, s)
                    {
                        Ok((t, ty)) => {
                            ctx.facts.push(seq.close(F::True).lower(&mut sess.store));
                            scrutinee_terms.push((t, ty));
                        }
                        Err(_) => return,
                    }
                }
                let arms: Vec<F> = cases
                    .iter()
                    .filter_map(|case| {
                        let mut env = ctx.env.clone();
                        let mut seq = Seq::new();
                        for p in &case.patterns {
                            for (ty, name) in p.declared_vars() {
                                if name != "_" && env.lookup(&name).is_none() {
                                    self.gen.declare_var(
                                        &mut sess.store,
                                        &mut env,
                                        &mut seq,
                                        &name,
                                        &ty,
                                    );
                                }
                            }
                        }
                        for (i, p) in case.patterns.iter().enumerate() {
                            let (t, ty) = scrutinee_terms.get(i)?.clone();
                            self.gen
                                .tr_match(&mut sess.store, &mut env, &mut seq, p, t, &ty)
                                .ok()?;
                        }
                        Some(seq.close(F::True))
                    })
                    .collect();
                if arms.len() == cases.len() {
                    self.check_cond_arms(sess, ctx, &arms, default.is_some(), context, diags);
                }
                for case in cases {
                    self.verify_stmts(sess, ctx, &case.body, context, diags);
                }
                if let Some(d) = default {
                    self.verify_stmts(sess, ctx, d, context, diags);
                }
            }
            Stmt::Cond { arms, else_arm } => {
                let mut translated = Vec::new();
                for (f, _) in arms {
                    let mut env = ctx.env.clone();
                    let mut seq = Seq::new();
                    self.gen
                        .declare_formula_vars(&mut sess.store, &mut env, &mut seq, f);
                    if self.gen.vf(&mut sess.store, &mut env, &mut seq, f).is_err() {
                        return;
                    }
                    translated.push(seq.close(F::True));
                }
                self.check_cond_arms(sess, ctx, &translated, else_arm.is_some(), context, diags);
                for ((f, body), closed) in arms.iter().zip(translated.iter()) {
                    let mut inner = Ctx {
                        facts: ctx.facts.clone(),
                        env: ctx.env.clone(),
                    };
                    // Refine the context with the arm's formula (§5.1).
                    inner.facts.push(closed.clone().lower(&mut sess.store));
                    let _ = f;
                    self.verify_stmts(sess, &mut inner, body, context, diags);
                }
                if let Some(body) = else_arm {
                    self.verify_stmts(sess, ctx, body, context, diags);
                }
            }
            Stmt::If { cond, then, els } => {
                let mut env = ctx.env.clone();
                let mut seq = Seq::new();
                self.gen
                    .declare_formula_vars(&mut sess.store, &mut env, &mut seq, cond);
                if self
                    .gen
                    .vf(&mut sess.store, &mut env, &mut seq, cond)
                    .is_ok()
                {
                    let closed = seq.close(F::True);
                    let mut inner = Ctx {
                        facts: ctx.facts.clone(),
                        env,
                    };
                    inner.facts.push(closed.clone().lower(&mut sess.store));
                    self.verify_stmts(sess, &mut inner, then, context, diags);
                    if let Some(e) = els {
                        let mut inner_else = Ctx {
                            facts: ctx.facts.clone(),
                            env: ctx.env.clone(),
                        };
                        inner_else
                            .facts
                            .push(closed.negate().lower(&mut sess.store));
                        self.verify_stmts(sess, &mut inner_else, e, context, diags);
                    }
                }
            }
            Stmt::Foreach { formula, body }
            | Stmt::While {
                cond: formula,
                body,
            } => {
                let mut env = ctx.env.clone();
                let mut seq = Seq::new();
                self.gen
                    .declare_formula_vars(&mut sess.store, &mut env, &mut seq, formula);
                if self
                    .gen
                    .vf(&mut sess.store, &mut env, &mut seq, formula)
                    .is_ok()
                {
                    let mut inner = Ctx {
                        facts: ctx.facts.clone(),
                        env,
                    };
                    inner.facts.push(seq.close(F::True).lower(&mut sess.store));
                    self.verify_stmts(sess, &mut inner, body, context, diags);
                }
            }
            Stmt::Block(stmts) => self.verify_stmts(sess, ctx, stmts, context, diags),
            Stmt::Return(_) | Stmt::Assign(..) | Stmt::ExprStmt(_) => {}
        }
    }

    /// The cond-verification algorithm of §5.1 over already-translated arms.
    fn check_cond_arms(
        &self,
        sess: &mut Session,
        ctx: &Ctx,
        arms: &[F],
        has_default: bool,
        context: &str,
        diags: &mut Diagnostics,
    ) {
        let mut invariant = ctx.facts.clone();
        for (idx, arm) in arms.iter().enumerate() {
            // Redundancy: I_i ∧ VF⟦f_i⟧ must be satisfiable.
            let arm_term = arm.clone().lower(&mut sess.store);
            let mut facts = invariant.clone();
            facts.push(arm_term);
            match self.check_sat(sess, &facts) {
                SatResult::Unsat => {
                    diags.warn(
                        WarningKind::RedundantArm,
                        context,
                        format!("arm {} can never match", idx + 1),
                    );
                }
                SatResult::Sat(_) | SatResult::Unknown => {}
            }
            // I_{i+1} = I_i ∧ negate(VF⟦f_i⟧).
            invariant.push(arm.negate().lower(&mut sess.store));
        }
        if has_default {
            return;
        }
        match self.check_sat(sess, &invariant) {
            SatResult::Sat(model) => {
                let ce = self.counterexample(&sess.store, &model, ctx);
                diags.warn_with_counterexample(
                    WarningKind::NonExhaustive,
                    context,
                    "the cases do not cover all values",
                    ce,
                );
            }
            SatResult::Unknown => {
                diags.warn(
                    WarningKind::Unknown,
                    context,
                    "could not prove exhaustiveness (no counterexample found within the depth budget)",
                );
            }
            SatResult::Unsat => {}
        }
    }
}

/// Collects the arm pairs of every `|` in a formula (both the formula-level
/// and pattern-level disjoint disjunctions).
fn collect_disjoint_pairs(f: &Formula, out: &mut Vec<(Formula, Formula)>) {
    match f {
        Formula::DisjointOr(a, b) => {
            out.push(((**a).clone(), (**b).clone()));
            collect_disjoint_pairs(a, out);
            collect_disjoint_pairs(b, out);
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_disjoint_pairs(a, out);
            collect_disjoint_pairs(b, out);
        }
        Formula::Not(a) => collect_disjoint_pairs(a, out),
        Formula::Cmp(_, l, r) => {
            collect_expr_disjoint_pairs(l, r, out);
        }
        Formula::Atom(_) | Formula::Bool(_) => {}
    }
}

fn collect_expr_disjoint_pairs(l: &Expr, r: &Expr, out: &mut Vec<(Formula, Formula)>) {
    // Pattern-level `p1 | p2` on the right of `lhs = ...`: the disjointness
    // obligation is that `lhs = p1` and `lhs = p2` cannot both hold.
    if let Expr::DisjointOr(a, b) = r {
        out.push((
            Formula::Cmp(CmpOp::Eq, l.clone(), (**a).clone()),
            Formula::Cmp(CmpOp::Eq, l.clone(), (**b).clone()),
        ));
    }
    if let Expr::DisjointOr(a, b) = l {
        out.push((
            Formula::Cmp(CmpOp::Eq, r.clone(), (**a).clone()),
            Formula::Cmp(CmpOp::Eq, r.clone(), (**b).clone()),
        ));
    }
}

/// Whether the formula contains a `||` / `#` whose branches mention any of the
/// given unknown parameters (a conservative multiplicity trigger).
fn formula_or_mentions(f: &Formula, unknowns: &[String]) -> bool {
    match f {
        Formula::Or(a, b) => {
            let mut vars = Vec::new();
            collect_formula_var_names(a, &mut vars);
            collect_formula_var_names(b, &mut vars);
            vars.iter().any(|v| unknowns.contains(v))
                || formula_or_mentions(a, unknowns)
                || formula_or_mentions(b, unknowns)
        }
        Formula::And(a, b) | Formula::DisjointOr(a, b) => {
            formula_or_mentions(a, unknowns) || formula_or_mentions(b, unknowns)
        }
        Formula::Not(a) => formula_or_mentions(a, unknowns),
        Formula::Cmp(..) | Formula::Atom(_) | Formula::Bool(_) => false,
    }
}

fn collect_formula_var_names(f: &Formula, out: &mut Vec<String>) {
    match f {
        Formula::Cmp(_, a, b) => {
            out.extend(extract::collect_vars(a));
            out.extend(extract::collect_vars(b));
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
            collect_formula_var_names(a, out);
            collect_formula_var_names(b, out);
        }
        Formula::Not(a) => collect_formula_var_names(a, out),
        Formula::Atom(e) => out.extend(extract::collect_vars(e)),
        Formula::Bool(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_syntax::parse_program;

    fn verify(src: &str) -> Diagnostics {
        let program = parse_program(src).unwrap();
        let mut diags = Diagnostics::new();
        let table = ClassTable::build(&program, &mut diags);
        let verifier = Verifier::new(table, VerifyOptions::default());
        let mut d = verifier.verify_program();
        diags.extend(d.clone());
        d.errors.extend(diags.errors);
        d
    }

    const NAT_INTERFACE: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
        }
    "#;

    #[test]
    fn exhaustive_nat_switch_is_clean() {
        let src = format!(
            "{NAT_INTERFACE}
             static Nat plus(Nat m, Nat n) {{
                 switch (m) {{
                     case zero(): return n;
                     case succ(Nat k): return k;
                 }}
             }}"
        );
        let d = verify(&src);
        assert!(
            !d.has_warning(WarningKind::NonExhaustive),
            "{:?}",
            d.warnings
        );
        assert!(
            !d.has_warning(WarningKind::RedundantArm),
            "{:?}",
            d.warnings
        );
    }

    #[test]
    fn missing_case_is_reported() {
        let src = format!(
            "{NAT_INTERFACE}
             static Nat pred(Nat m) {{
                 switch (m) {{
                     case succ(Nat k): return k;
                 }}
             }}"
        );
        let d = verify(&src);
        assert!(
            d.has_warning(WarningKind::NonExhaustive) || d.has_warning(WarningKind::Unknown),
            "expected a nonexhaustiveness warning: {:?}",
            d.warnings
        );
    }

    #[test]
    fn figure6_redundant_nested_succ() {
        let src = format!(
            "{NAT_INTERFACE}
             static int classify(Nat n) {{
                 switch (n) {{
                     case succ(Nat p): return 1;
                     case succ(succ(Nat pp)): return 2;
                     case zero(): return 0;
                 }}
             }}"
        );
        let d = verify(&src);
        assert!(
            d.has_warning(WarningKind::RedundantArm),
            "expected the nested succ arm to be redundant: {:?}",
            d.warnings
        );
        // The zero() arm must NOT be flagged (the paper stresses this).
        let redundant = d.warnings_of(WarningKind::RedundantArm);
        assert_eq!(redundant.len(), 1, "{redundant:?}");
        assert!(redundant[0].message.contains("arm 2"), "{redundant:?}");
        assert!(
            !d.has_warning(WarningKind::NonExhaustive),
            "{:?}",
            d.warnings
        );
    }

    #[test]
    fn znat_totality_uses_private_invariant() {
        let src = r#"
            interface Nat {
                invariant(this = zero() | succ(_));
                constructor zero() returns();
                constructor succ(Nat n) returns(n);
            }
            class ZNat implements Nat {
                int val;
                private invariant(val >= 0);
                private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
                constructor zero() returns() ( val = 0 )
            }
        "#;
        let d = verify(src);
        assert!(
            !d.has_warning(WarningKind::TotalityViolation),
            "ZNat should verify: {:?}",
            d.warnings
        );
    }

    #[test]
    fn znat_without_invariant_fails_totality() {
        // Removing the private invariant makes the backward mode unverifiable
        // (the paper explains the invariant is what makes it total).
        let src = r#"
            class ZNat {
                int val;
                private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
            }
        "#;
        let d = verify(src);
        assert!(
            d.has_warning(WarningKind::TotalityViolation),
            "expected a totality warning without the invariant: {:?}",
            d.warnings
        );
    }

    #[test]
    fn let_with_guaranteed_match_is_clean_and_failing_let_warns() {
        let src = r#"
            class C {
                int good(int y) {
                    int x = y + 1;
                    return x;
                }
            }
        "#;
        let d = verify(src);
        assert!(!d.has_warning(WarningKind::LetMayFail), "{:?}", d.warnings);
    }

    #[test]
    fn disjoint_constant_patterns_verify() {
        let src = r#"
            class C {
                int pick(int x) matches(true) returns() ( x = 1 | 2 )
            }
        "#;
        let d = verify(src);
        assert!(!d.has_warning(WarningKind::NotDisjoint), "{:?}", d.warnings);
    }

    #[test]
    fn overlapping_disjoint_patterns_warn() {
        let src = r#"
            class C {
                int pick(int x, int y) matches(true) returns() ( x = y | y + 0 )
            }
        "#;
        let d = verify(src);
        assert!(
            d.has_warning(WarningKind::NotDisjoint),
            "expected a disjointness warning: {:?}",
            d.warnings
        );
    }

    #[test]
    fn multiplicity_warning_for_noniterative_disjunction() {
        let src = r#"
            class C {
                boolean greater(int x) returns(x)
                    ( x = 1 || x = 2 )
            }
        "#;
        let d = verify(src);
        assert!(
            d.has_warning(WarningKind::Multiplicity),
            "expected a multiplicity warning: {:?}",
            d.warnings
        );
    }

    #[test]
    fn iterative_mode_allows_disjunction() {
        let src = r#"
            class C {
                boolean greater(int x) iterates(x)
                    ( x = 1 || x = 2 )
            }
        "#;
        let d = verify(src);
        assert!(
            !d.has_warning(WarningKind::Multiplicity),
            "{:?}",
            d.warnings
        );
    }

    #[test]
    fn default_case_suppresses_exhaustiveness_check() {
        let src = format!(
            "{NAT_INTERFACE}
             static int f(Nat n) {{
                 switch (n) {{
                     case zero(): return 0;
                     default: return 1;
                 }}
             }}"
        );
        let d = verify(&src);
        assert!(
            !d.has_warning(WarningKind::NonExhaustive),
            "{:?}",
            d.warnings
        );
    }
}
