//! Java counterparts of the corpus rows, used for the Table 1 token-count
//! comparison (§7.2).
//!
//! These are ordinary Java implementations of the same abstractions, written
//! the way a Java programmer would without modal abstraction: separate
//! observers, constructors, `instanceof` tests and explicit iterators replace
//! the single multimodal methods of the JMatch versions. They are lexed (not
//! compiled) — only their token counts matter.

/// Java version of the `Nat` interface.
pub const NAT_INTERFACE: &str = r#"
interface Nat {
    boolean isZero();
    Nat pred();
    Nat succ();
    boolean natEquals(Nat other);
}
"#;

/// Java version of `PZero`.
pub const PZERO: &str = r#"
class PZero implements Nat {
    public boolean isZero() { return true; }
    public Nat pred() { throw new IllegalStateException("zero has no predecessor"); }
    public Nat succ() { return new PSucc(this); }
    public boolean natEquals(Nat other) {
        return other != null && other.isZero();
    }
    public Nat plus(Nat other) { return other; }
    public int hashCode() { return 0; }
    public boolean equals(Object o) {
        return o instanceof Nat && ((Nat) o).isZero();
    }
    public String toString() { return "0"; }
}
"#;

/// Java version of `PSucc`.
pub const PSUCC: &str = r#"
class PSucc implements Nat {
    private final Nat pred;
    public PSucc(Nat pred) {
        if (pred == null) throw new IllegalArgumentException("null predecessor");
        this.pred = pred;
    }
    public boolean isZero() { return false; }
    public Nat pred() { return pred; }
    public Nat succ() { return new PSucc(this); }
    public boolean natEquals(Nat other) {
        if (other == null || other.isZero()) return false;
        return pred.natEquals(other.pred());
    }
    public Nat plus(Nat other) { return new PSucc(pred.plus(other)); }
    public int hashCode() { return 1 + pred.hashCode(); }
    public boolean equals(Object o) {
        if (!(o instanceof Nat)) return false;
        Nat n = (Nat) o;
        return !n.isZero() && pred.natEquals(n.pred());
    }
    public String toString() { return "S(" + pred.toString() + ")"; }
}
"#;

/// Java version of `ZNat`.
pub const ZNAT: &str = r#"
class ZNat implements Nat {
    private final int val;
    private ZNat(int n) {
        if (n < 0) throw new IllegalArgumentException("negative natural");
        this.val = n;
    }
    public static ZNat zero() { return new ZNat(0); }
    public static ZNat succOf(Nat n) {
        return new ZNat(toInt(n) + 1);
    }
    private static int toInt(Nat n) {
        if (n instanceof ZNat) return ((ZNat) n).val;
        int count = 0;
        while (!n.isZero()) { n = n.pred(); count++; }
        return count;
    }
    public boolean isZero() { return val == 0; }
    public Nat pred() {
        if (val == 0) throw new IllegalStateException("zero has no predecessor");
        return new ZNat(val - 1);
    }
    public Nat succ() { return new ZNat(val + 1); }
    public boolean natEquals(Nat other) { return toInt(other) == val; }
    public int toInt() { return val; }
    public boolean greaterThan(Nat x) { return val > toInt(x); }
    public java.util.Iterator<Nat> allSmaller() {
        final int limit = val;
        return new java.util.Iterator<Nat>() {
            int next = 0;
            public boolean hasNext() { return next < limit; }
            public Nat next() { return new ZNat(next++); }
        };
    }
    public static Nat plus(Nat m, Nat n) {
        if (m.isZero()) return n;
        if (n.isZero()) return m;
        return plus(m.pred(), n.succ());
    }
    public int hashCode() { return val; }
    public boolean equals(Object o) {
        return o instanceof Nat && natEquals((Nat) o);
    }
}
"#;

/// Java version of the `List` interface.
pub const LIST_INTERFACE: &str = r#"
interface List {
    boolean isNil();
    Object head();
    List tail();
    List front();
    Object last();
    List reversed();
    boolean contains(Object elem);
    java.util.Iterator<Object> elements();
    int size();
    boolean listEquals(List other);
}
"#;

/// Java version of `EmptyList`.
pub const EMPTY_LIST: &str = r#"
class EmptyList implements List {
    public static final EmptyList NIL = new EmptyList();
    private EmptyList() {}
    public boolean isNil() { return true; }
    public Object head() { throw new java.util.NoSuchElementException("empty list"); }
    public List tail() { throw new java.util.NoSuchElementException("empty list"); }
    public List front() { throw new java.util.NoSuchElementException("empty list"); }
    public Object last() { throw new java.util.NoSuchElementException("empty list"); }
    public List reversed() { return this; }
    public boolean contains(Object elem) { return false; }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            public boolean hasNext() { return false; }
            public Object next() { throw new java.util.NoSuchElementException(); }
        };
    }
    public int size() { return 0; }
    public boolean listEquals(List other) { return other != null && other.isNil(); }
    public int hashCode() { return 1; }
    public boolean equals(Object o) { return o instanceof List && ((List) o).isNil(); }
    public String toString() { return "[]"; }
}
"#;

/// Java version of `ConsList`.
pub const CONS_LIST: &str = r#"
class ConsList implements List {
    private final Object head;
    private final List tail;
    public ConsList(Object head, List tail) {
        if (tail == null) throw new IllegalArgumentException("null tail");
        this.head = head;
        this.tail = tail;
    }
    public static List cons(Object head, List tail) { return new ConsList(head, tail); }
    public static List snoc(List front, Object last) {
        if (front.isNil()) return new ConsList(last, front);
        return new ConsList(front.head(), snoc(front.tail(), last));
    }
    public boolean isNil() { return false; }
    public Object head() { return head; }
    public List tail() { return tail; }
    public List front() {
        if (tail.isNil()) return EmptyList.NIL;
        return new ConsList(head, tail.front());
    }
    public Object last() {
        if (tail.isNil()) return head;
        return tail.last();
    }
    public List reversed() {
        List out = EmptyList.NIL;
        List cur = this;
        while (!cur.isNil()) {
            out = new ConsList(cur.head(), out);
            cur = cur.tail();
        }
        return out;
    }
    public boolean contains(Object elem) {
        List cur = this;
        while (!cur.isNil()) {
            Object h = cur.head();
            if (h == null ? elem == null : h.equals(elem)) return true;
            cur = cur.tail();
        }
        return false;
    }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            List cur = ConsList.this;
            public boolean hasNext() { return !cur.isNil(); }
            public Object next() {
                Object h = cur.head();
                cur = cur.tail();
                return h;
            }
        };
    }
    public int size() { return 1 + tail.size(); }
    public boolean listEquals(List other) {
        if (other == null || other.isNil()) return false;
        Object oh = other.head();
        boolean heads = head == null ? oh == null : head.equals(oh);
        return heads && tail.listEquals(other.tail());
    }
    public static int length(List l) {
        int n = 0;
        while (!l.isNil()) { n++; l = l.tail(); }
        return n;
    }
    public int hashCode() { return 31 * tail.hashCode() + (head == null ? 0 : head.hashCode()); }
    public boolean equals(Object o) { return o instanceof List && listEquals((List) o); }
    public String toString() { return head + " :: " + tail; }
}
"#;

/// Java version of `SnocList`.
pub const SNOC_LIST: &str = r#"
class SnocList implements List {
    private final List front;
    private final Object last;
    public SnocList(List front, Object last) {
        if (front == null) throw new IllegalArgumentException("null front");
        this.front = front;
        this.last = last;
    }
    public static List snoc(List front, Object last) { return new SnocList(front, last); }
    public static List cons(Object head, List tail) {
        if (tail.isNil()) return new SnocList(tail, head);
        return new SnocList(cons(head, tail.front()), tail.last());
    }
    public boolean isNil() { return false; }
    public Object head() {
        if (front.isNil()) return last;
        return front.head();
    }
    public List tail() {
        if (front.isNil()) return front;
        return new SnocList(front.tail(), last);
    }
    public List front() { return front; }
    public Object last() { return last; }
    public List reversed() {
        List out = EmptyList.NIL;
        java.util.Iterator<Object> it = elements();
        while (it.hasNext()) { out = new SnocList(out, it.next()); }
        List reversedOut = EmptyList.NIL;
        it = elements();
        java.util.Deque<Object> stack = new java.util.ArrayDeque<Object>();
        while (it.hasNext()) stack.push(it.next());
        while (!stack.isEmpty()) reversedOut = new SnocList(reversedOut, stack.pop());
        return reversedOut;
    }
    public boolean contains(Object elem) {
        if (last == null ? elem == null : last.equals(elem)) return true;
        return front.contains(elem);
    }
    public java.util.Iterator<Object> elements() {
        final java.util.List<Object> buffer = new java.util.ArrayList<Object>();
        List cur = this;
        while (!cur.isNil()) { buffer.add(0, cur.last()); cur = cur.front(); }
        return buffer.iterator();
    }
    public int size() { return 1 + front.size(); }
    public boolean listEquals(List other) {
        if (other == null || other.isNil()) return false;
        Object ol = other.last();
        boolean lasts = last == null ? ol == null : last.equals(ol);
        return lasts && front.listEquals(other.front());
    }
    public int hashCode() { return 31 * front.hashCode() + (last == null ? 0 : last.hashCode()); }
    public boolean equals(Object o) { return o instanceof List && listEquals((List) o); }
    public String toString() { return front + " ++ [" + last + "]"; }
}
"#;

/// Java version of `ArrList`.
pub const ARR_LIST: &str = r#"
class ArrList implements List {
    private final Object[] elems;
    private final int count;
    private ArrList(Object[] elems, int count) {
        this.elems = elems;
        this.count = count;
    }
    public static ArrList nil() { return new ArrList(new Object[4], 0); }
    public static ArrList push(ArrList base, Object x) {
        Object[] store = base.elems;
        if (base.count == store.length) {
            Object[] grown = new Object[store.length * 2];
            System.arraycopy(store, 0, grown, 0, store.length);
            store = grown;
        }
        store[base.count] = x;
        return new ArrList(store, base.count + 1);
    }
    public boolean isNil() { return count == 0; }
    public Object head() {
        if (count == 0) throw new java.util.NoSuchElementException("empty list");
        return elems[count - 1];
    }
    public List tail() {
        if (count == 0) throw new java.util.NoSuchElementException("empty list");
        return new ArrList(elems, count - 1);
    }
    public List front() {
        if (count == 0) throw new java.util.NoSuchElementException("empty list");
        Object[] copy = new Object[count - 1];
        System.arraycopy(elems, 1, copy, 0, count - 1);
        return new ArrList(copy, count - 1);
    }
    public Object last() {
        if (count == 0) throw new java.util.NoSuchElementException("empty list");
        return elems[0];
    }
    public List reversed() {
        ArrList out = nil();
        for (int i = count - 1; i >= 0; i--) out = push(out, elems[i]);
        return out;
    }
    public boolean contains(Object elem) {
        for (int i = 0; i < count; i++) {
            Object e = elems[i];
            if (e == null ? elem == null : e.equals(elem)) return true;
        }
        return false;
    }
    public java.util.Iterator<Object> elements() {
        return new java.util.Iterator<Object>() {
            int i = count - 1;
            public boolean hasNext() { return i >= 0; }
            public Object next() { return elems[i--]; }
        };
    }
    public int size() { return count; }
    public boolean listEquals(List other) {
        if (other == null || other.size() != count) return false;
        List cur = other;
        for (int i = count - 1; i >= 0; i--) {
            Object mine = elems[i];
            Object theirs = cur.head();
            if (mine == null ? theirs != null : !mine.equals(theirs)) return false;
            cur = cur.tail();
        }
        return true;
    }
    public int hashCode() {
        int h = 1;
        for (int i = 0; i < count; i++) h = 31 * h + (elems[i] == null ? 0 : elems[i].hashCode());
        return h;
    }
    public boolean equals(Object o) { return o instanceof List && listEquals((List) o); }
}
"#;

/// Java version of the `Expr` interface.
pub const EXPR_INTERFACE: &str = r#"
interface Expr {
    boolean isVar();
    boolean isLambda();
    boolean isApply();
    Object varName();
    Expr lambdaParam();
    Expr lambdaBody();
    Expr applyFn();
    Expr applyArg();
    int size();
}
"#;

/// Java version of `Variable`.
pub const VARIABLE: &str = r#"
class Variable implements Expr {
    private final Object name;
    public Variable(Object name) { this.name = name; }
    public boolean isVar() { return true; }
    public boolean isLambda() { return false; }
    public boolean isApply() { return false; }
    public Object varName() { return name; }
    public Expr lambdaParam() { throw new UnsupportedOperationException("not a lambda"); }
    public Expr lambdaBody() { throw new UnsupportedOperationException("not a lambda"); }
    public Expr applyFn() { throw new UnsupportedOperationException("not an application"); }
    public Expr applyArg() { throw new UnsupportedOperationException("not an application"); }
    public int size() { return 1; }
    public boolean occursIn(Expr e) {
        if (e.isVar()) return e.varName().equals(name);
        if (e.isLambda()) return occursIn(e.lambdaBody());
        return occursIn(e.applyFn()) || occursIn(e.applyArg());
    }
    public int hashCode() { return name.hashCode(); }
    public boolean equals(Object o) {
        return o instanceof Expr && ((Expr) o).isVar() && ((Expr) o).varName().equals(name);
    }
    public String toString() { return String.valueOf(name); }
}
"#;

/// Java version of `Lambda`.
pub const LAMBDA: &str = r#"
class LambdaExpr implements Expr {
    private final Expr param;
    private final Expr body;
    public LambdaExpr(Expr param, Expr body) {
        if (!param.isVar()) throw new IllegalArgumentException("lambda parameter must be a variable");
        this.param = param;
        this.body = body;
    }
    public boolean isVar() { return false; }
    public boolean isLambda() { return true; }
    public boolean isApply() { return false; }
    public Object varName() { throw new UnsupportedOperationException("not a variable"); }
    public Expr lambdaParam() { return param; }
    public Expr lambdaBody() { return body; }
    public Expr applyFn() { throw new UnsupportedOperationException("not an application"); }
    public Expr applyArg() { throw new UnsupportedOperationException("not an application"); }
    public int size() { return param.size() + body.size() + 1; }
    public boolean binds(Expr v) { return param.equals(v); }
    public int hashCode() { return 31 * param.hashCode() + body.hashCode(); }
    public boolean equals(Object o) {
        if (!(o instanceof Expr)) return false;
        Expr e = (Expr) o;
        return e.isLambda() && e.lambdaParam().equals(param) && e.lambdaBody().equals(body);
    }
    public String toString() { return "\\" + param + "." + body; }
}
"#;

/// Java version of `Apply`.
pub const APPLY: &str = r#"
class ApplyExpr implements Expr {
    private final Expr fn;
    private final Expr arg;
    public ApplyExpr(Expr fn, Expr arg) {
        this.fn = fn;
        this.arg = arg;
    }
    public boolean isVar() { return false; }
    public boolean isLambda() { return false; }
    public boolean isApply() { return true; }
    public Object varName() { throw new UnsupportedOperationException("not a variable"); }
    public Expr lambdaParam() { throw new UnsupportedOperationException("not a lambda"); }
    public Expr lambdaBody() { throw new UnsupportedOperationException("not a lambda"); }
    public Expr applyFn() { return fn; }
    public Expr applyArg() { return arg; }
    public int size() { return fn.size() + arg.size() + 1; }
    public Expr callee() { return fn; }
    public int hashCode() { return 31 * fn.hashCode() + arg.hashCode(); }
    public boolean equals(Object o) {
        if (!(o instanceof Expr)) return false;
        Expr e = (Expr) o;
        return e.isApply() && e.applyFn().equals(fn) && e.applyArg().equals(arg);
    }
    public String toString() { return "(" + fn + " " + arg + ")"; }
}
"#;

/// Java version of the CPS converter: two separate, manually-inverted
/// traversals (the JMatch version is one invertible method).
pub const CPS: &str = r#"
class CpsConverter {
    private int freshCounter = 0;
    private Variable freshVar(String base) { return new Variable(base + (freshCounter++)); }

    public Expr toCps(Expr e) {
        Variable k = freshVar("k");
        if (e.isVar()) {
            return new LambdaExpr(k, new ApplyExpr(k, e));
        }
        if (e.isLambda()) {
            Expr vl = e.lambdaParam();
            Expr body = e.lambdaBody();
            Variable k2 = freshVar("k");
            return new LambdaExpr(k,
                new ApplyExpr(k, new LambdaExpr(vl,
                    new LambdaExpr(k2, new ApplyExpr(toCps(body), k2)))));
        }
        Expr fn = e.applyFn();
        Expr arg = e.applyArg();
        Variable f = freshVar("f");
        Variable v = freshVar("v");
        return new LambdaExpr(k, new ApplyExpr(toCps(fn),
            new LambdaExpr(f, new ApplyExpr(toCps(arg),
                new LambdaExpr(v, new ApplyExpr(new ApplyExpr(f, v), k))))));
    }

    public Expr fromCps(Expr target) {
        if (!target.isLambda()) throw new IllegalArgumentException("not CPS form");
        Expr k = target.lambdaParam();
        Expr body = target.lambdaBody();
        if (!body.isApply()) throw new IllegalArgumentException("not CPS form");
        ApplyExpr app = (ApplyExpr) body;
        if (app.applyFn().equals(k)) {
            Expr payload = app.applyArg();
            if (payload.isVar()) return payload;
            if (payload.isLambda()) {
                Expr vl = payload.lambdaParam();
                Expr inner = payload.lambdaBody();
                Expr innerBody = inner.lambdaBody();
                ApplyExpr innerApp = (ApplyExpr) innerBody;
                return new LambdaExpr(vl, fromCps(innerApp.applyFn()));
            }
            throw new IllegalArgumentException("not CPS form");
        }
        Expr fnCps = app.applyFn();
        Expr cont = app.applyArg();
        Expr argCps = ((ApplyExpr) ((LambdaExpr) cont).lambdaBody()).applyFn();
        ApplyExpr call = (ApplyExpr) ((LambdaExpr) ((ApplyExpr) ((LambdaExpr) cont).lambdaBody()).applyArg()).lambdaBody();
        return new ApplyExpr(fromCps(fnCps), fromCps(argCps));
    }

    public static int sizeOfCps(Expr source) {
        if (source.isVar()) return 1;
        if (source.isLambda()) return sizeOfCps(source.lambdaBody()) + 1;
        return sizeOfCps(source.applyFn()) + sizeOfCps(source.applyArg()) + 1;
    }
}
"#;

/// Java version of the `Tree` interface.
pub const TREE_INTERFACE: &str = r#"
interface Tree {
    boolean isLeaf();
    Tree left();
    int value();
    Tree right();
    int height();
    boolean contains(int x);
}
"#;

/// Java version of `TreeLeaf`.
pub const TREE_LEAF: &str = r#"
class TreeLeaf implements Tree {
    public static final TreeLeaf LEAF = new TreeLeaf();
    private TreeLeaf() {}
    public boolean isLeaf() { return true; }
    public Tree left() { throw new UnsupportedOperationException("leaf has no children"); }
    public int value() { throw new UnsupportedOperationException("leaf has no value"); }
    public Tree right() { throw new UnsupportedOperationException("leaf has no children"); }
    public int height() { return 0; }
    public boolean contains(int x) { return false; }
    public int hashCode() { return 7; }
    public boolean equals(Object o) { return o instanceof Tree && ((Tree) o).isLeaf(); }
    public String toString() { return "."; }
}
"#;

/// Java version of `TreeBranch`.
pub const TREE_BRANCH: &str = r#"
class TreeBranch implements Tree {
    private final Tree left;
    private final int value;
    private final Tree right;
    private final int height;
    public TreeBranch(Tree left, int value, Tree right) {
        this.left = left;
        this.value = value;
        this.right = right;
        this.height = 1 + Math.max(left.height(), right.height());
    }
    public boolean isLeaf() { return false; }
    public Tree left() { return left; }
    public int value() { return value; }
    public Tree right() { return right; }
    public int height() { return height; }
    public boolean contains(int x) {
        return x == value || left.contains(x) || right.contains(x);
    }
    public int hashCode() {
        return 31 * (31 * left.hashCode() + value) + right.hashCode();
    }
    public boolean equals(Object o) {
        if (!(o instanceof Tree)) return false;
        Tree t = (Tree) o;
        return !t.isLeaf() && t.value() == value
            && t.left().equals(left) && t.right().equals(right);
    }
    public String toString() { return "(" + left + " " + value + " " + right + ")"; }
}
"#;

/// Java version of the AVL tree.
pub const AVL_TREE: &str = r#"
class AVLTree {
    private Tree root = TreeLeaf.LEAF;

    public static Tree rebalance(Tree l, int v, Tree r) {
        if (l.height() - r.height() > 1) {
            Tree ll = l.left();
            Tree lr = l.right();
            if (ll.height() >= lr.height()) {
                return new TreeBranch(new TreeBranch(ll.left(), ll.isLeaf() ? 0 : ll.value(), ll.isLeaf() ? ll : ll.right()),
                                      l.value(),
                                      new TreeBranch(lr, v, r));
            } else {
                return new TreeBranch(new TreeBranch(ll, l.value(), lr.left()),
                                      lr.value(),
                                      new TreeBranch(lr.right(), v, r));
            }
        }
        if (r.height() - l.height() > 1) {
            Tree rl = r.left();
            Tree rr = r.right();
            if (rl.height() > rr.height()) {
                return new TreeBranch(new TreeBranch(l, v, rl.left()),
                                      rl.value(),
                                      new TreeBranch(rl.right(), r.value(), rr));
            } else {
                return new TreeBranch(new TreeBranch(l, v, rl),
                                      r.value(),
                                      new TreeBranch(rr.left(), rr.isLeaf() ? 0 : rr.value(), rr.isLeaf() ? rr : rr.right()));
            }
        }
        return new TreeBranch(l, v, r);
    }

    public static Tree insert(Tree t, int x) {
        if (t.isLeaf()) return new TreeBranch(TreeLeaf.LEAF, x, TreeLeaf.LEAF);
        if (x < t.value()) return rebalance(insert(t.left(), x), t.value(), t.right());
        if (x > t.value()) return rebalance(t.left(), t.value(), insert(t.right(), x));
        return t;
    }

    public static boolean member(Tree t, int x) {
        if (t.isLeaf()) return false;
        if (x == t.value()) return true;
        if (x < t.value()) return member(t.left(), x);
        return member(t.right(), x);
    }

    public void add(int x) { root = insert(root, x); }
    public boolean has(int x) { return member(root, x); }
    public int height() { return root.height(); }
}
"#;
