//! JMatch 2.0 sources for the Table 1 corpus rows.
//!
//! These are this reproduction's versions of the paper's evaluation programs
//! (§7.1): natural numbers, immutable lists, a lambda-calculus AST with an
//! invertible CPS conversion, and binary trees with an AVL rebalance.

/// Figure 2: the `Nat` interface with named constructors and an invariant.
pub const NAT_INTERFACE: &str = r#"
interface Nat {
    invariant(this = zero() | succ(_));
    constructor zero() returns();
    constructor succ(Nat n) returns(n);
    constructor equals(Nat n);
}
"#;

/// Figure 3: the unary representation of zero.
pub const PZERO: &str = r#"
class PZero implements Nat {
    constructor zero() returns() ( true )
    constructor succ(Nat n) returns(n) ( false )
    constructor equals(Nat n) ( n.zero() )
    boolean isZero() returns() ( zero() )
    Nat plus(Nat other) matches(true) ( result = other )
}
"#;

/// Figure 3: the unary successor representation.
pub const PSUCC: &str = r#"
class PSucc implements Nat {
    Nat pred;
    constructor zero() returns() ( false )
    constructor succ(Nat n) returns(n) ( pred = n )
    constructor equals(Nat n) ( n.succ(pred) )
    boolean isZero() returns() ( false )
    Nat plus(Nat other) matches(true) ( result = PSucc.succ(pred.plus(other)) )
}
"#;

/// Figures 3 and 7: natural numbers represented by a nonnegative `int`.
pub const ZNAT: &str = r#"
class ZNat implements Nat {
    int val;
    private invariant(val >= 0);
    private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
    constructor zero() returns() ( val = 0 )
    constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
    constructor equals(Nat n) ( zero() && n.zero() | succ(Nat y) && n.succ(y) )
    boolean isZero() returns() ( val = 0 )
    int toInt() ensures(result >= 0) ( result = val )
    boolean greater(Nat x) iterates(x)
        ( this = succ(Nat y) && (y = x || y.greater(x)) )
}
static Nat plus(Nat m, Nat n) {
    switch (m, n) {
        case (zero(), Nat x):
        case (x, zero()):
            return x;
        case (succ(Nat k), _):
            return plus(k, ZNat.succ(n));
    }
}
"#;

/// Figure 12: the `List` interface for immutable lists.
pub const LIST_INTERFACE: &str = r#"
interface List {
    invariant(this = nil() | cons(_, _));
    constructor nil() matches(notall(result));
    constructor cons(Object hd, List tl)
        matches(notall(result)) returns(hd, tl);
    constructor snoc(List hd, Object tl)
        matches ensures(cons(_, _)) returns(hd, tl);
    constructor equals(List l);
    constructor reverse(List l) matches(true) returns(l);
    boolean contains(Object elem) iterates(elem);
    int size() ensures(result >= 0);
}
"#;

/// The empty-list implementation.
pub const EMPTY_LIST: &str = r#"
class EmptyList implements List {
    constructor nil() returns() ( true )
    constructor cons(Object hd, List tl) returns(hd, tl) ( false )
    constructor snoc(List hd, Object tl) returns(hd, tl) ( false )
    constructor equals(List l) ( l.nil() )
    constructor reverse(List l) matches(true) returns(l) ( l = this )
    boolean contains(Object elem) iterates(elem) ( false )
    int size() ensures(result >= 0) ( result = 0 )
}
"#;

/// Regular cons lists (Figure 12 shows the `snoc` constructor).
pub const CONS_LIST: &str = r#"
class ConsList implements List {
    Object head;
    List tail;
    constructor nil() returns() ( false )
    constructor cons(Object hd, List tl) returns(hd, tl)
        ( head = hd && tail = tl )
    constructor snoc(List h, Object t)
        matches ensures(cons(_, _)) returns(h, t) (
        h = EmptyList.nil() && cons(t, h)
        | h = cons(Object hh, List ht) && cons(hh, ConsList.snoc(ht, t))
    )
    constructor equals(List l)
        ( l.cons(head, tail) )
    constructor reverse(List l) matches(true) returns(l)
        ( l = rev(EmptyList.nil()) )
    List rev(List acc) matches(true) (
        (tail = nil() && result = ConsList.cons(head, acc))
        | (tail = cons(_, _) && result = tail.rev(ConsList.cons(head, acc)))
    )
    boolean contains(Object elem) iterates(elem)
        ( elem = head || tail.contains(elem) )
    int size() ensures(result >= 0) ( result = tail.size() + 1 )
}
static int length(List l) {
    switch (l) {
        case nil(): return 0;
        case snoc(List t, _): return length(t) + 1;
        case cons(_, List t): return length(t) + 1;
    }
}
"#;

/// Snoc lists: elements are appended at the end.
pub const SNOC_LIST: &str = r#"
class SnocList implements List {
    List front;
    Object last;
    constructor nil() returns() ( false )
    constructor snoc(List hd, Object tl) returns(hd, tl)
        ( front = hd && last = tl )
    constructor cons(Object hd, List tl)
        matches ensures(snoc(_, _)) returns(hd, tl) (
        (front = EmptyList.nil() && hd = last && tl = front)
        | (front = cons(Object fh, List ft) && hd = fh
           && tl = SnocList.snoc(ft, last))
    )
    constructor equals(List l)
        ( l.snoc(front, last) )
    constructor reverse(List l) matches(true) returns(l)
        ( this = snoc(List f, Object x) && l = ConsList.cons(x, SnocList.reverse(f)) )
    boolean contains(Object elem) iterates(elem)
        ( elem = last || front.contains(elem) )
    int size() ensures(result >= 0) ( result = front.size() + 1 )
}
"#;

/// Array-backed lists: a shared backing array plus a length index.
pub const ARR_LIST: &str = r#"
class ArrList implements List {
    Object[] elems;
    int count;
    private invariant(count >= 0);
    constructor nil() returns() ( count = 0 )
    constructor cons(Object hd, List tl)
        matches(notall(result)) returns(hd, tl)
        ( count >= 1 && hd = elems[count - 1] && tl = prefix(count - 1) )
    constructor snoc(List hd, Object tl)
        matches ensures(cons(_, _)) returns(hd, tl)
        ( count >= 1 && tl = elems[0] && hd = suffix(1) )
    constructor equals(List l) (
        count = 0 && l.nil()
        | count >= 1 && l.cons(elems[count - 1], prefix(count - 1))
    )
    constructor reverse(List l) matches(true) returns(l)
        ( l = toCons().reverse() )
    List prefix(int k) matches(k >= 0) ensures(true) {
        ArrList out;
        let out = ArrList.nil();
        int i = 0;
        while (i < k) {
            out = ArrList.push(out, elems[i]);
            i = i + 1;
        }
        return out;
    }
    List suffix(int k) matches(k >= 0) ensures(true) {
        ArrList out;
        let out = ArrList.nil();
        int i = k;
        while (i < count) {
            out = ArrList.push(out, elems[i]);
            i = i + 1;
        }
        return out;
    }
    List toCons() matches(true) {
        List out = EmptyList.nil();
        int i = 0;
        while (i < count) {
            out = ConsList.cons(elems[i], out);
            i = i + 1;
        }
        return out;
    }
    static ArrList push(ArrList base, Object x) {
        return base;
    }
    boolean contains(Object elem) iterates(elem)
        ( count >= 1 && (elem = elems[count - 1] || prefix(count - 1).contains(elem)) )
    int size() ensures(result >= 0) ( result = count )
}
"#;

/// The lambda-calculus AST interface used by the CPS example (Figure 5).
pub const EXPR_INTERFACE: &str = r#"
interface Expr {
    invariant(this = Var(_) | Lambda(_, _) | Apply(_, _));
    constructor Var(Object name) returns(name);
    constructor Lambda(Expr param, Expr body) returns(param, body);
    constructor Apply(Expr fn, Expr arg) returns(fn, arg);
    constructor equals(Expr e);
    int size() ensures(result >= 1);
}
"#;

/// Variables of the lambda-calculus AST.
pub const VARIABLE: &str = r#"
class Variable implements Expr {
    Object name;
    constructor Var(Object n) returns(n) ( name = n )
    constructor Lambda(Expr param, Expr body) returns(param, body) ( false )
    constructor Apply(Expr fn, Expr arg) returns(fn, arg) ( false )
    constructor equals(Expr e) ( e.Var(name) )
    int size() ensures(result >= 1) ( result = 1 )
    boolean occursIn(Expr e) iterates(e) (
        e.Var(name)
        || e.Lambda(Expr p, Expr b) && occursIn(b)
        || e.Apply(Expr f, Expr a) && (occursIn(f) || occursIn(a))
    )
}
"#;

/// Lambda abstractions of the lambda-calculus AST.
pub const LAMBDA: &str = r#"
class LambdaExpr implements Expr {
    Expr param;
    Expr body;
    constructor Var(Object n) returns(n) ( false )
    constructor Lambda(Expr p, Expr b) returns(p, b) ( param = p && body = b )
    constructor Apply(Expr fn, Expr arg) returns(fn, arg) ( false )
    constructor equals(Expr e) ( e.Lambda(param, body) )
    int size() ensures(result >= 1) ( result = param.size() + body.size() + 1 )
    boolean binds(Expr v) returns() ( v = param )
}
"#;

/// Applications of the lambda-calculus AST.
pub const APPLY: &str = r#"
class ApplyExpr implements Expr {
    Expr fn;
    Expr arg;
    constructor Var(Object n) returns(n) ( false )
    constructor Lambda(Expr p, Expr b) returns(p, b) ( false )
    constructor Apply(Expr f, Expr a) returns(f, a) ( fn = f && arg = a )
    constructor equals(Expr e) ( e.Apply(fn, arg) )
    int size() ensures(result >= 1) ( result = fn.size() + arg.size() + 1 )
    Expr callee() matches(true) ensures(true) ( result = fn )
}
"#;

/// Figure 5: invertible conversion to continuation-passing style. The three
/// disjoint cases are expressed with tuple patterns and `|`, so the same
/// declarative body runs forwards (CPS conversion) and backwards (un-CPS).
pub const CPS: &str = r#"
class CpsConverter {
    Expr k;
    public Expr CPS(Expr e) matches(true) returns(e) (
        (e, result) =
            (Variable.Var(Object v),
             LambdaExpr.Lambda(k, ApplyExpr.Apply(k, e)))
        | (LambdaExpr.Lambda(Expr vl, Expr body),
           LambdaExpr.Lambda(k,
               ApplyExpr.Apply(k, LambdaExpr.Lambda(vl,
                   LambdaExpr.Lambda(k, ApplyExpr.Apply(CPS(body), k))))))
        | (ApplyExpr.Apply(Expr fn, Expr arg),
           LambdaExpr.Lambda(k, ApplyExpr.Apply(CPS(fn),
               LambdaExpr.Lambda(Expr f, ApplyExpr.Apply(CPS(arg),
                   LambdaExpr.Lambda(Expr va,
                       ApplyExpr.Apply(ApplyExpr.Apply(f, va), k)))))))
    )
    static int sizeOfCps(Expr source) {
        switch (source) {
            case Var(_): return 1;
            case Lambda(_, Expr b): return sizeOfCps(b) + 1;
            case Apply(Expr f, Expr a): return sizeOfCps(f) + sizeOfCps(a) + 1;
        }
    }
}
"#;

/// Figure 13: the `Tree` interface with height specifications.
pub const TREE_INTERFACE: &str = r#"
interface Tree {
    invariant(leaf() | branch(_, _, _));
    constructor leaf() matches(height() = 0) ensures(height() = 0);
    constructor branch(Tree l, int v, Tree r)
        matches(height() > 0)
        ensures(height() > 0 &&
                (height() = l.height() + 1 && height() > r.height()
                 || height() > l.height() && height() = r.height() + 1))
        returns(l, v, r);
    constructor equals(Tree t);
    int height() ensures(result >= 0);
    boolean contains(int x) iterates(x);
}
"#;

/// Leaves of the binary tree.
pub const TREE_LEAF: &str = r#"
class TreeLeaf implements Tree {
    constructor leaf() matches(height() = 0) ensures(height() = 0) ( true )
    constructor branch(Tree l, int v, Tree r) returns(l, v, r) ( false )
    constructor equals(Tree t) ( t.leaf() )
    int height() ensures(result >= 0) ( result = 0 )
    boolean contains(int x) iterates(x) ( false )
}
"#;

/// Branches of the binary tree.
pub const TREE_BRANCH: &str = r#"
class TreeBranch implements Tree {
    Tree left;
    int value;
    Tree right;
    int h;
    private invariant(h >= 1);
    constructor leaf() returns() ( false )
    constructor branch(Tree l, int v, Tree r)
        matches(height() > 0) returns(l, v, r)
        ( left = l && value = v && right = r )
    constructor equals(Tree t) ( t.branch(left, value, right) )
    int height() ensures(result >= 0) ( result = h )
    boolean contains(int x) iterates(x)
        ( x = value || left.contains(x) || right.contains(x) )
}
"#;

/// Figure 13: the AVL `rebalance` method, whose `cond` is verified exhaustive
/// using the `Tree` invariant and the `ensures` clause of `branch`.
pub const AVL_TREE: &str = r#"
class AVLTree {
    Tree root;

    static Tree rebalance(Tree l, int v, Tree r) {
        if (l.height() - r.height() > 1 || r.height() - l.height() > 1)
            cond {
                (l.height() - r.height() > 1
                 && l = branch(Tree ll, int y, Tree c)
                 && ll = branch(Tree a, int x, Tree b)
                 && ll.height() >= c.height()
                 && int z = v && Tree d = r)
                { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                           TreeBranch.branch(c, z, d)); }
                (l.height() - r.height() > 1
                 && l = branch(Tree a, int x, Tree lr)
                 && lr = branch(Tree b, int y, Tree c)
                 && a.height() < lr.height()
                 && int z = v && Tree d = r)
                { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                           TreeBranch.branch(c, z, d)); }
                (r.height() - l.height() > 1
                 && Tree a = l && int x = v
                 && r = branch(Tree rl, int z, Tree d)
                 && rl = branch(Tree b, int y, Tree c)
                 && rl.height() > d.height())
                { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                           TreeBranch.branch(c, z, d)); }
                (r.height() - l.height() > 1
                 && Tree a = l && int x = v
                 && r = branch(Tree b, int y, Tree rr)
                 && rr = branch(Tree c, int z, Tree d)
                 && b.height() <= rr.height())
                { return TreeBranch.branch(TreeBranch.branch(a, x, b), y,
                                           TreeBranch.branch(c, z, d)); }
            }
        return TreeBranch.branch(l, v, r);
    }

    static Tree insert(Tree t, int x) {
        switch (t) {
            case leaf():
                return TreeBranch.branch(TreeLeaf.leaf(), x, TreeLeaf.leaf());
            case branch(Tree l, int v, Tree r):
                cond {
                    (x < v) { return rebalance(insert(l, x), v, r); }
                    (x > v) { return rebalance(l, v, insert(r, x)); }
                    else { return t; }
                }
        }
    }

    static boolean member(Tree t, int x) {
        switch (t) {
            case leaf(): return false;
            case branch(Tree l, int v, Tree r):
                cond {
                    (x = v) { return true; }
                    (x < v) { return member(l, x); }
                    else { return member(r, x); }
                }
        }
    }
}
"#;
