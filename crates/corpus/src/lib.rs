//! # jmatch-corpus
//!
//! The evaluation corpus of the paper (§7.1, Table 1): each entry pairs a
//! JMatch 2.0 implementation with a functionally equivalent Java
//! implementation, together with the token counts and verification times the
//! paper reports for its own sources. The benchmark harness (`jmatch-bench`)
//! uses these entries to regenerate the Table 1 token-count and
//! verification-time columns.
//!
//! The JMatch sources are written in this repository's dialect and are
//! compiled and verified by `jmatch-core`; the Java sources exist only for
//! token counting (the conciseness comparison of §7.2) and are equivalent
//! hand-written implementations, not the paper's original files — see
//! `EXPERIMENTS.md` for how this substitution is accounted for.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod java;
pub mod jmatch;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusEntry {
    /// Row name as it appears in Table 1.
    pub name: &'static str,
    /// The JMatch 2.0 source for this row.
    pub jmatch_source: &'static str,
    /// Sources this row depends on (compiled together, e.g. the interface).
    pub jmatch_deps: &'static [&'static str],
    /// The Java counterpart used for token counting.
    pub java_source: &'static str,
    /// Token count the paper reports for its JMatch 2.0 implementation.
    pub paper_jmatch_tokens: usize,
    /// Token count the paper reports for its Java implementation.
    pub paper_java_tokens: usize,
    /// Compilation time (seconds) without verification, as reported.
    pub paper_time_without: f64,
    /// Compilation time (seconds) with verification, as reported.
    pub paper_time_with: f64,
}

impl CorpusEntry {
    /// The full JMatch program for this entry (dependencies + the entry).
    pub fn combined_jmatch(&self) -> String {
        let mut out = String::new();
        for dep in self.jmatch_deps {
            out.push_str(dep);
            out.push('\n');
        }
        out.push_str(self.jmatch_source);
        out
    }
}

/// All corpus entries, in Table 1 order.
pub fn entries() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "Nat",
            jmatch_source: jmatch::NAT_INTERFACE,
            jmatch_deps: &[],
            java_source: java::NAT_INTERFACE,
            paper_jmatch_tokens: 41,
            paper_java_tokens: 29,
            paper_time_without: 0.100,
            paper_time_with: 0.104,
        },
        CorpusEntry {
            name: "PZero",
            jmatch_source: jmatch::PZERO,
            jmatch_deps: &[jmatch::NAT_INTERFACE],
            java_source: java::PZERO,
            paper_jmatch_tokens: 85,
            paper_java_tokens: 189,
            paper_time_without: 0.258,
            paper_time_with: 0.331,
        },
        CorpusEntry {
            name: "PSucc",
            jmatch_source: jmatch::PSUCC,
            jmatch_deps: &[jmatch::NAT_INTERFACE],
            java_source: java::PSUCC,
            paper_jmatch_tokens: 98,
            paper_java_tokens: 226,
            paper_time_without: 0.280,
            paper_time_with: 0.435,
        },
        CorpusEntry {
            name: "ZNat",
            jmatch_source: jmatch::ZNAT,
            jmatch_deps: &[jmatch::NAT_INTERFACE],
            java_source: java::ZNAT,
            paper_jmatch_tokens: 161,
            paper_java_tokens: 319,
            paper_time_without: 0.377,
            paper_time_with: 0.459,
        },
        CorpusEntry {
            name: "List",
            jmatch_source: jmatch::LIST_INTERFACE,
            jmatch_deps: &[],
            java_source: java::LIST_INTERFACE,
            paper_jmatch_tokens: 114,
            paper_java_tokens: 91,
            paper_time_without: 0.129,
            paper_time_with: 0.123,
        },
        CorpusEntry {
            name: "EmptyList",
            jmatch_source: jmatch::EMPTY_LIST,
            jmatch_deps: &[jmatch::LIST_INTERFACE],
            java_source: java::EMPTY_LIST,
            paper_jmatch_tokens: 164,
            paper_java_tokens: 455,
            paper_time_without: 0.416,
            paper_time_with: 0.510,
        },
        CorpusEntry {
            name: "ConsList",
            jmatch_source: jmatch::CONS_LIST,
            jmatch_deps: &[jmatch::LIST_INTERFACE, jmatch::EMPTY_LIST],
            java_source: java::CONS_LIST,
            paper_jmatch_tokens: 309,
            paper_java_tokens: 1007,
            paper_time_without: 0.807,
            paper_time_with: 2.47,
        },
        CorpusEntry {
            name: "SnocList",
            jmatch_source: jmatch::SNOC_LIST,
            jmatch_deps: &[
                jmatch::LIST_INTERFACE,
                jmatch::EMPTY_LIST,
                jmatch::CONS_LIST,
            ],
            java_source: java::SNOC_LIST,
            paper_jmatch_tokens: 311,
            paper_java_tokens: 1006,
            paper_time_without: 1.05,
            paper_time_with: 3.36,
        },
        CorpusEntry {
            name: "ArrList",
            jmatch_source: jmatch::ARR_LIST,
            jmatch_deps: &[
                jmatch::LIST_INTERFACE,
                jmatch::EMPTY_LIST,
                jmatch::CONS_LIST,
            ],
            java_source: java::ARR_LIST,
            paper_jmatch_tokens: 473,
            paper_java_tokens: 1208,
            paper_time_without: 0.864,
            paper_time_with: 1.90,
        },
        CorpusEntry {
            name: "Expr",
            jmatch_source: jmatch::EXPR_INTERFACE,
            jmatch_deps: &[],
            java_source: java::EXPR_INTERFACE,
            paper_jmatch_tokens: 96,
            paper_java_tokens: 80,
            paper_time_without: 0.710,
            paper_time_with: 0.846,
        },
        CorpusEntry {
            name: "Variable",
            jmatch_source: jmatch::VARIABLE,
            jmatch_deps: &[jmatch::EXPR_INTERFACE],
            java_source: java::VARIABLE,
            paper_jmatch_tokens: 192,
            paper_java_tokens: 434,
            paper_time_without: 0.689,
            paper_time_with: 0.852,
        },
        CorpusEntry {
            name: "Lambda",
            jmatch_source: jmatch::LAMBDA,
            jmatch_deps: &[jmatch::EXPR_INTERFACE],
            java_source: java::LAMBDA,
            paper_jmatch_tokens: 239,
            paper_java_tokens: 500,
            paper_time_without: 1.20,
            paper_time_with: 1.52,
        },
        CorpusEntry {
            name: "Apply",
            jmatch_source: jmatch::APPLY,
            jmatch_deps: &[jmatch::EXPR_INTERFACE],
            java_source: java::APPLY,
            paper_jmatch_tokens: 232,
            paper_java_tokens: 506,
            paper_time_without: 1.15,
            paper_time_with: 2.31,
        },
        CorpusEntry {
            name: "CPS",
            jmatch_source: jmatch::CPS,
            jmatch_deps: &[
                jmatch::EXPR_INTERFACE,
                jmatch::VARIABLE,
                jmatch::LAMBDA,
                jmatch::APPLY,
            ],
            java_source: java::CPS,
            paper_jmatch_tokens: 325,
            paper_java_tokens: 1279,
            paper_time_without: 7.88,
            paper_time_with: 8.37,
        },
        CorpusEntry {
            name: "Tree",
            jmatch_source: jmatch::TREE_INTERFACE,
            jmatch_deps: &[],
            java_source: java::TREE_INTERFACE,
            paper_jmatch_tokens: 114,
            paper_java_tokens: 69,
            paper_time_without: 0.165,
            paper_time_with: 0.170,
        },
        CorpusEntry {
            name: "TreeLeaf",
            jmatch_source: jmatch::TREE_LEAF,
            jmatch_deps: &[jmatch::TREE_INTERFACE],
            java_source: java::TREE_LEAF,
            paper_jmatch_tokens: 124,
            paper_java_tokens: 351,
            paper_time_without: 0.420,
            paper_time_with: 0.510,
        },
        CorpusEntry {
            name: "TreeBranch",
            jmatch_source: jmatch::TREE_BRANCH,
            jmatch_deps: &[jmatch::TREE_INTERFACE],
            java_source: java::TREE_BRANCH,
            paper_jmatch_tokens: 202,
            paper_java_tokens: 553,
            paper_time_without: 0.529,
            paper_time_with: 0.682,
        },
        CorpusEntry {
            name: "AVLTree",
            jmatch_source: jmatch::AVL_TREE,
            jmatch_deps: &[
                jmatch::TREE_INTERFACE,
                jmatch::TREE_LEAF,
                jmatch::TREE_BRANCH,
            ],
            java_source: java::AVL_TREE,
            paper_jmatch_tokens: 535,
            paper_java_tokens: 720,
            paper_time_without: 2.17,
            paper_time_with: 18.7,
        },
    ]
}

/// Looks up an entry by its Table 1 row name.
pub fn entry(name: &str) -> Option<CorpusEntry> {
    entries().into_iter().find(|e| e.name == name)
}

/// The Table 1 rows the paper evaluates that are *not* reproduced by this
/// corpus (the typed lambda calculus / type inference classes and the Java
/// collections-framework conversions). They are listed here so the benchmark
/// harness and `EXPERIMENTS.md` can report the gap explicitly instead of
/// padding the corpus with stubs.
pub const UNREPRODUCED_ROWS: &[&str] = &[
    "TypedLambda",
    "Type",
    "BaseType",
    "ArrowType",
    "UnknownType",
    "Environment",
    "ArrayList",
    "LinkedList",
    "HashMap",
    "TreeMap",
];

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_core::{compile, CompileOptions};
    use jmatch_syntax::count_tokens;

    #[test]
    fn every_entry_parses_and_resolves() {
        for e in entries() {
            let src = e.combined_jmatch();
            let compiled = compile(
                &src,
                &CompileOptions {
                    verify: false,
                    ..CompileOptions::default()
                },
            )
            .unwrap_or_else(|err| panic!("{} fails to parse: {err}", e.name));
            assert!(
                compiled.diagnostics.errors.is_empty(),
                "{} has resolution errors: {:?}",
                e.name,
                compiled.diagnostics.errors
            );
        }
    }

    #[test]
    fn every_entry_verifies_without_hard_errors() {
        for e in entries() {
            let src = e.combined_jmatch();
            let compiled = compile(
                &src,
                &CompileOptions {
                    verify: true,
                    max_expansion_depth: 2,
                },
            )
            .unwrap_or_else(|err| panic!("{} fails to parse: {err}", e.name));
            assert!(
                compiled.diagnostics.errors.is_empty(),
                "{} has errors under verification: {:?}",
                e.name,
                compiled.diagnostics.errors
            );
        }
    }

    #[test]
    fn every_java_counterpart_tokenizes() {
        for e in entries() {
            let n = count_tokens(e.java_source)
                .unwrap_or_else(|err| panic!("{} Java source fails to lex: {err}", e.name));
            assert!(n > 0, "{} Java counterpart is empty", e.name);
        }
    }

    #[test]
    fn jmatch_is_more_concise_than_java_for_implementations() {
        // The paper's headline (§7.2): implementations (not the interfaces,
        // which carry the extra specification tokens) are considerably shorter
        // in JMatch than in Java.
        let mut shorter = 0;
        let mut total = 0;
        for e in entries() {
            if e.jmatch_deps.is_empty() {
                continue;
            }
            let jm = count_tokens(e.jmatch_source).unwrap();
            let java = count_tokens(e.java_source).unwrap();
            total += 1;
            if jm < java {
                shorter += 1;
            }
        }
        assert!(total >= 10);
        assert!(
            shorter * 10 >= total * 8,
            "expected at least 80% of implementations to be shorter in JMatch ({shorter}/{total})"
        );
    }

    #[test]
    fn paper_numbers_are_recorded_for_every_row() {
        for e in entries() {
            assert!(e.paper_jmatch_tokens > 0 && e.paper_java_tokens > 0);
            assert!(e.paper_time_with >= e.paper_time_without * 0.9);
        }
        assert_eq!(entries().len() + UNREPRODUCED_ROWS.len(), 28);
    }

    #[test]
    fn nat_switch_has_no_redundant_arms() {
        use jmatch_core::WarningKind;
        let e = entry("ZNat").unwrap();
        let compiled = compile(&e.combined_jmatch(), &CompileOptions::default()).unwrap();
        assert!(
            !compiled.diagnostics.has_warning(WarningKind::RedundantArm),
            "{:?}",
            compiled.diagnostics.warnings
        );
    }

    #[test]
    fn entry_lookup_by_name() {
        assert!(entry("CPS").is_some());
        assert!(entry("Nope").is_none());
    }
}
