//! A minimal, API-compatible stand-in for the [`criterion`] benchmark
//! harness, vendored so the workspace builds without network access.
//!
//! It implements exactly the subset the `jmatch-bench` benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//! Two execution modes are supported, selected by the CLI arguments that
//! `cargo bench` forwards to the harness binary:
//!
//! * default: each benchmark is warmed up and timed, and a mean
//!   per-iteration time is printed;
//! * `--test` (the CI bench-smoke mode): each benchmark body runs exactly
//!   once so the bench code is type-checked *and* executed, without paying
//!   for measurement.
//!
//! A positional argument acts as a substring filter on benchmark names, like
//! the real harness. Unknown flags are ignored.
//!
//! [`criterion`]: https://docs.rs/criterion

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point of a benchmark harness; mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long each benchmark is warmed up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies the CLI arguments `cargo bench` forwards to the harness:
    /// `--test` switches to run-once smoke mode, a positional argument is a
    /// name filter, and everything else is ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags with a value that the real harness accepts.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--color"
                | "--sample-size" | "--warm-up-time" | "--measurement-time" | "--output-format" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => {
                    if self.filter.is_none() {
                        self.filter = Some(s.to_owned());
                    }
                }
            }
        }
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name.as_ref(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_owned(),
        }
    }
}

/// A named group of benchmarks; mirrors `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up time for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs a benchmark inside the group (name-spaced by the group name).
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(self.criterion, &full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark bodies; mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of the routine (one run in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    if !c.selected(name) {
        return;
    }
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {name} ... ok");
        return;
    }
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed speed to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < c.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
    let budget_per_sample = c.measurement_time / c.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = if total_iters == 0 {
        Duration::ZERO
    } else {
        total / total_iters as u32
    };
    println!("{name:<50} time: {}", format_duration(mean));
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into a
/// single callable group, optionally with an explicit configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`: generates `fn main` running groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/identity", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("grouped", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        sample_bench(&mut c);
    }

    #[test]
    fn measurement_mode_times_benchmarks() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        sample_bench(&mut c);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut c = Criterion {
            filter: Some("nope".into()),
            test_mode: true,
            ..Criterion::default()
        };
        c.bench_function("unmatched", |_| panic!("must be filtered out"));
    }

    #[test]
    fn durations_format_across_magnitudes() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(10)), "10.000 µs");
        assert_eq!(format_duration(Duration::from_millis(10)), "10.000 ms");
        assert_eq!(format_duration(Duration::from_secs(10)), "10.000 s");
    }
}
