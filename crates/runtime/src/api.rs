//! The embedding API: compile once, query many, pull solutions lazily.
//!
//! This is the host-language surface of the paper's Java_yield story
//! (§2.3, §5): a JMatch program is compiled **once** into a [`Program`]
//! (class table + lowered query plans), handles resolve method lookups
//! **once** into [`MethodRef`] / [`CtorRef`], and every enumeration —
//! deconstruction, iterative-mode calls, raw formula solving — is a
//! [`Query`] whose [`Solutions`] is a genuine pull-based
//! [`Iterator`]: `query.solutions().take(1)` does the work of the first
//! solution, not of the whole enumeration.
//!
//! ```text
//! Compiler ──compile──▶ Program ──method/ctor──▶ MethodRef / CtorRef
//!                          │                          │
//!                          └──deconstruct/solve──▶ Query ──solutions──▶ Solutions
//! ```
//!
//! [`Program`] is cheap to clone and `Send + Sync`, so one compilation can
//! serve any number of threads; the per-query state lives in the
//! [`Solutions`] iterator. With [`Engine::Plan`] (the default) iteration is
//! driven by the resumable stack machine of [`crate::machine`]; with
//! [`Engine::TreeWalk`] the legacy callback engine runs on a worker thread
//! behind a bounded (rendezvous) channel, so it can never race more than
//! one solution ahead of the consumer.

use crate::eval::{Budget, Ev, Frame, MAX_DEPTH};
use crate::machine::{Machine, MachineCode};
use crate::par::{self, ParJob, ParMode};
use crate::tree::TreeWalker;
use crate::{Bindings, Engine, RtError, RtResult, Value};
use jmatch_core::diag::Diagnostics;
use jmatch_core::lower::{BodyPlan, FrameLayout, PlanId, ProgramPlan, SlotId, SolvedForm};
use jmatch_core::table::ClassTable;
use jmatch_core::{CompileOptions, Warning};
use jmatch_syntax::ast::{Formula, MethodBody, Param, Type};
use jmatch_syntax::ParseError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Limits
// ---------------------------------------------------------------------------

/// Work ceilings honored **identically by both engines** on every query and
/// call.
///
/// `max_depth` bounds solver nesting (goal recursion and constructor-match
/// activation frames); `max_steps` bounds total solver steps. Either limit
/// being hit ends the enumeration with an
/// [`RtErrorKind::LimitExceeded`](crate::RtErrorKind::LimitExceeded) error.
///
/// This replaces the pre-redesign interpreter's per-call `depth`
/// parameter, which the tree-walker honored and the plan engine silently
/// ignored.
///
/// The default `max_depth` is 1,000 on *both* engines, metered across
/// constructor matches. That is stricter than the legacy tree-walker's
/// fixed 10,000 budget (which reset at every constructor match, so it
/// never bounded structural recursion at all); raise it with
/// [`Program::with_limits`] / [`Query::limits`] for deeply recursive
/// enumerations — the plan engine's machine keeps its activation frames on
/// the heap, so large ceilings are safe there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Ceiling on solver nesting depth.
    pub max_depth: usize,
    /// Ceiling on total solver steps per query / call.
    pub max_steps: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_depth: MAX_DEPTH,
            max_steps: u64::MAX,
        }
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// One-shot builder, superseded by [`Workspace`](crate::Workspace).
///
/// `Compiler` compiles one source string and forgets everything, so every
/// edit pays a whole-program rebuild. [`Workspace`](crate::Workspace) has
/// the same fluent setters and defaults but keeps fingerprints, plans and
/// solver sessions across edits, rebuilding only what changed — this type
/// is now a thin shim over it (one-shot build == a workspace with a single
/// generation) and will be removed in a future release.
///
/// Migration is mechanical:
///
/// ```
/// use jmatch_runtime::{args, Value, Workspace};
///
/// let mut ws = Workspace::new().verify(false);
/// let program = ws.compile(
///     "class Box {
///          int v;
///          constructor of(int n) returns(n) ( v = n )
///      }
///      static int unbox(Box b) {
///          switch (b) { case of(int n): return n; }
///      }",
/// )?;
/// let of = program.ctor("Box", "of")?;
/// let unbox = program.free_method("unbox")?;
/// let boxed = of.construct(args![7])?;
/// assert_eq!(unbox.call(None, args![boxed])?, Value::Int(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Workspace` (same setters; `Workspace::new().compile(src)` one-shot, \
            `load`/`update_source`/`update_method` incremental) — see the README migration table"
)]
#[derive(Debug, Clone)]
pub struct Compiler {
    verify: bool,
    engine: Engine,
    bytecode: bool,
    analysis: bool,
    max_expansion_depth: u32,
    limits: Limits,
}

#[allow(deprecated)]
impl Compiler {
    /// A compiler with verification on, the plan engine, and default
    /// limits.
    pub fn new() -> Self {
        Compiler {
            verify: true,
            engine: Engine::Plan,
            bytecode: true,
            analysis: true,
            max_expansion_depth: CompileOptions::default().max_expansion_depth,
            limits: Limits::default(),
        }
    }

    /// Whether to run the static verification passes (exhaustiveness,
    /// redundancy, totality, disjointness, multiplicity).
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Which execution engine queries and calls run on.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Whether lowering's fourth materialization pass compiles each solved
    /// form to flat register bytecode (on by default). With it off, the
    /// plan engines walk the goal trees and statement plans directly —
    /// same solutions, same order, same errors; `tests/differential.rs`
    /// holds either way.
    pub fn bytecode(mut self, on: bool) -> Self {
        self.bytecode = on;
        self
    }

    /// Whether lowering runs the plan-analysis pass
    /// ([`jmatch_core::analysis`], on by default): determinism inference
    /// (so the engines commit instead of keeping choice points),
    /// dead-alternative pruning, and the IR lints behind
    /// [`Program::lints`]. With it off the unanalyzed plan runs as the
    /// differential oracle — same solutions, same order, same errors.
    pub fn analysis(mut self, on: bool) -> Self {
        self.analysis = on;
        self
    }

    /// Iterative-deepening bound for the verifier's lazy expansion (§6.2).
    pub fn max_expansion_depth(mut self, depth: u32) -> Self {
        self.max_expansion_depth = depth;
        self
    }

    /// Default work ceilings for every query and call of the program.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Parses, resolves, (optionally) verifies, and lowers `source` into a
    /// [`Program`] — now literally a single-generation
    /// [`Workspace`](crate::Workspace) build.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the source is not syntactically valid;
    /// semantic problems are reported through [`Program::diagnostics`].
    pub fn compile(&self, source: &str) -> Result<Program, ParseError> {
        crate::Workspace::new()
            .verify(self.verify)
            .engine(self.engine)
            .bytecode(self.bytecode)
            .analysis(self.analysis)
            .max_expansion_depth(self.max_expansion_depth)
            .limits(self.limits)
            .compile(source)
    }
}

#[allow(deprecated)]
impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/// A compiled JMatch program: the resolved class table plus the lowered
/// query plans, ready to be queried from any thread.
///
/// `Program` is cheap to clone (two `Arc`s and two small copies) and
/// `Send + Sync`: compile once, hand clones to every worker.
#[derive(Debug, Clone)]
pub struct Program {
    plan: Arc<ProgramPlan>,
    engine: Engine,
    limits: Limits,
    diagnostics: Arc<Diagnostics>,
}

impl Program {
    /// Assembles a program from already-compiled parts (the
    /// [`Workspace`](crate::Workspace) rebuild path).
    pub(crate) fn assemble(
        plan: Arc<ProgramPlan>,
        engine: Engine,
        limits: Limits,
        diagnostics: Arc<Diagnostics>,
    ) -> Self {
        Program {
            plan,
            engine,
            limits,
            diagnostics,
        }
    }

    /// Wraps an already-resolved class table (for callers that drive
    /// [`jmatch_core::compile`] themselves); lowering runs here, once.
    pub fn from_table(table: Arc<ClassTable>, engine: Engine) -> Self {
        Program {
            plan: ProgramPlan::compile(table),
            engine,
            limits: Limits::default(),
            diagnostics: Arc::new(Diagnostics::new()),
        }
    }

    /// The resolved class table.
    pub fn table(&self) -> &Arc<ClassTable> {
        self.plan.table()
    }

    /// The lowered program plan.
    pub fn plan(&self) -> &Arc<ProgramPlan> {
        &self.plan
    }

    /// The engine queries and calls run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The default work ceilings of this program's queries and calls.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Warnings and errors produced by resolution and verification.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// The verification warnings (empty when compiled without `verify`).
    pub fn warnings(&self) -> &[Warning] {
        &self.diagnostics.warnings
    }

    /// The plan-analysis lints ([`jmatch_core::analysis`]): unused
    /// bindings, always-failing invokes, dead modes, unbounded left
    /// recursion. Empty when compiled with
    /// [`Compiler::analysis`]`(false)`.
    pub fn lints(&self) -> &[Warning] {
        self.plan
            .analysis()
            .map(|a| a.lints.as_slice())
            .unwrap_or(&[])
    }

    /// The full plan-analysis report (facts, prunes, lints), or `None`
    /// when compiled with [`Compiler::analysis`]`(false)`.
    pub fn analysis(&self) -> Option<&jmatch_core::AnalysisReport> {
        self.plan.analysis()
    }

    /// The same program on a different engine (cheap).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The same program with different default limits (cheap).
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    // -- handle resolution ---------------------------------------------------

    /// Resolves the implementation of instance method `name` reachable from
    /// `class` into a [`MethodRef`]: the class-table walk happens here,
    /// once, never per call.
    ///
    /// The handle is statically bound to the resolved implementation, like
    /// a function pointer; re-resolve for a different receiver class.
    ///
    /// # Errors
    ///
    /// [`RtErrorKind::MethodNotFound`](crate::RtErrorKind::MethodNotFound)
    /// when no implementation is reachable.
    pub fn method(&self, class: &str, name: &str) -> RtResult<MethodRef> {
        let pid = self
            .plan
            .lookup_impl(class, name)
            .ok_or_else(|| RtError::method_not_found(class, name))?;
        Ok(MethodRef {
            program: self.clone(),
            pid,
            iterate_cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Resolves a free-standing (top-level) method into a [`MethodRef`].
    ///
    /// # Errors
    ///
    /// [`RtErrorKind::MethodNotFound`](crate::RtErrorKind::MethodNotFound)
    /// when no such method exists.
    pub fn free_method(&self, name: &str) -> RtResult<MethodRef> {
        let pid = self
            .plan
            .lookup_free(name)
            .ok_or_else(|| RtError::method_not_found("<toplevel>", name))?;
        Ok(MethodRef {
            program: self.clone(),
            pid,
            iterate_cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Disassembles the compiled bytecode of a method: one listing per
    /// mode-specialized solved form (`forward` / `matching` /
    /// `equals-bound`) of a declarative body, or the register block of an
    /// imperative one. Pass `class: None` for free-standing methods.
    ///
    /// The text is the stable [`std::fmt::Display`] form of
    /// [`jmatch_core::bytecode::BcBody`] / [`jmatch_core::bytecode::BcBlock`]
    /// and is empty when the program was compiled without bytecode.
    ///
    /// # Errors
    ///
    /// [`RtErrorKind::MethodNotFound`](crate::RtErrorKind::MethodNotFound)
    /// when the method does not resolve.
    pub fn disasm(&self, class: Option<&str>, name: &str) -> RtResult<String> {
        use std::fmt::Write as _;
        let pid = match class {
            Some(c) => self
                .plan
                .lookup_impl(c, name)
                .ok_or_else(|| RtError::method_not_found(c, name))?,
            None => self
                .plan
                .lookup_free(name)
                .ok_or_else(|| RtError::method_not_found("<toplevel>", name))?,
        };
        let mp = self.plan.method(pid);
        let qual = mp.info.qualified_name();
        let mut out = String::new();
        match &mp.body {
            BodyPlan::Formula {
                forward,
                matching,
                equals_bound,
            } => {
                let forms = [
                    ("forward", Some(forward)),
                    ("matching", Some(matching)),
                    ("equals-bound", equals_bound.as_ref()),
                ];
                for (label, form) in forms {
                    if let Some(bc) = form.and_then(|f| f.bc.as_ref()) {
                        let _ = writeln!(out, "; {qual} [{label}]");
                        let _ = write!(out, "{bc}");
                    }
                }
            }
            BodyPlan::Block(bp) => {
                if let Some(bc) = &bp.bc {
                    let _ = writeln!(out, "; {qual} [block]");
                    let _ = write!(out, "{bc}");
                }
            }
            BodyPlan::Absent => {}
        }
        Ok(out)
    }

    /// Resolves constructor `ctor` of `class` (named, class, or inherited)
    /// into a [`CtorRef`].
    ///
    /// # Errors
    ///
    /// [`RtErrorKind::MethodNotFound`](crate::RtErrorKind::MethodNotFound)
    /// when the constructor does not exist, and a generic error when only a
    /// bodiless interface declaration is reachable.
    pub fn ctor(&self, class: &str, ctor: &str) -> RtResult<CtorRef> {
        let declared = self
            .plan
            .lookup_declared(class, ctor)
            .or_else(|| self.plan.class_ctor(class))
            .ok_or_else(|| RtError::method_not_found(class, ctor))?;
        let construct_pid = if matches!(self.plan.method(declared).body, BodyPlan::Absent) {
            self.plan
                .lookup_impl(class, ctor)
                .ok_or_else(|| RtError::new(format!("`{class}.{ctor}` has no implementation")))?
        } else {
            declared
        };
        Ok(CtorRef {
            program: self.clone(),
            class: class.to_owned(),
            ctor: ctor.to_owned(),
            construct_pid,
            match_pid: self.plan.lookup_impl(class, ctor),
        })
    }

    // -- queries -------------------------------------------------------------

    /// A backward-mode query: enumerate the solutions of matching `value`
    /// against the named constructor `ctor`, dispatched on `value`'s
    /// runtime class. Each solution binds the constructor's parameters by
    /// name.
    ///
    /// # Errors
    ///
    /// Fails when `value` is not an object, the constructor cannot be
    /// resolved, or it has no declarative body to match against.
    pub fn deconstruct(&self, value: &Value, ctor: &str) -> RtResult<Query<'_>> {
        let class = value
            .class()
            .ok_or_else(|| RtError::new("can only deconstruct objects"))?
            .to_owned();
        let pid = self
            .plan
            .lookup_impl(&class, ctor)
            .ok_or_else(|| RtError::method_not_found(&class, ctor))?;
        let mp = self.plan.method(pid);
        if !matches!(mp.body, BodyPlan::Formula { .. }) {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "backward (pattern-matching)",
            ));
        }
        Ok(Query {
            program: self,
            limits: self.limits,
            interrupt: None,
            source: Source::Deconstruct {
                pid,
                ctor: ctor.to_owned(),
                value: value.clone(),
            },
        })
    }

    /// A raw formula query: enumerate the solutions of `f` under the entry
    /// bindings `env`, with `this` optionally in scope. The formula is
    /// lowered once, when the query is built.
    pub fn solve(&self, f: &Formula, env: &Bindings, this: Option<&Value>) -> Query<'_> {
        let form = Arc::new(self.lower_formula(f, env, this));
        Query {
            program: self,
            limits: self.limits,
            interrupt: None,
            source: Source::Formula {
                ast: f.clone(),
                form,
                env: env.clone(),
                this: this.cloned(),
            },
        }
    }

    fn lower_formula(&self, f: &Formula, env: &Bindings, this: Option<&Value>) -> SolvedForm {
        let bound: Vec<&str> = env.keys().map(String::as_str).collect();
        let this_class = this.map(|t| t.class().unwrap_or(""));
        jmatch_core::lower::lower_standalone(&self.plan, f, &bound, this_class)
    }

    /// Runs a batch of queries on one pool of `threads` worker threads
    /// (`0` = the `JMATCH_PAR_THREADS` default of
    /// [`jmatch_smt::pool::configured_threads`], like every other pool in
    /// the workspace) and collects every query's full
    /// solution set **in sequential enumeration order** — the shape a
    /// query server needs: one thread-pool setup amortized across the
    /// whole batch, with per-query results independent (a limit error in
    /// one query does not affect the others).
    ///
    /// Each query runs sequentially on one worker (query-level
    /// parallelism); use [`Query::par_solutions`] to parallelize *within*
    /// a single large enumeration instead.
    pub fn query_many(
        &self,
        queries: &[Query<'_>],
        threads: usize,
    ) -> Vec<RtResult<Vec<Bindings>>> {
        self.query_many_counted(queries, threads)
            .into_iter()
            .map(|(outcome, _steps)| outcome)
            .collect()
    }

    /// Like [`Program::query_many`], but each result slot also reports the
    /// solver steps the query spent (when the engine can count them — the
    /// plan engine's stack machine; `None` on the tree-walker).
    ///
    /// This is the accounting shape a multi-tenant server needs: run a
    /// coalesced batch on one pool, then settle each request's step grant
    /// against what the enumeration actually used.
    pub fn query_many_counted(
        &self,
        queries: &[Query<'_>],
        threads: usize,
    ) -> Vec<(RtResult<Vec<Bindings>>, Option<u64>)> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = if threads == 0 {
            jmatch_smt::configured_threads()
        } else {
            threads
        }
        .min(n);
        if threads <= 1 {
            return queries.iter().map(Query::try_collect_counted).collect();
        }
        type CountedOutcome = (RtResult<Vec<Bindings>>, Option<u64>);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CountedOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = queries[i].try_collect_counted();
                    *slots[i].lock().expect("query_many slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("query_many slot poisoned")
                    .expect("query_many worker skipped a slot")
            })
            .collect()
    }

    // -- whole-value operations ---------------------------------------------

    /// Creates a bare instance of `class` with every field `Null` —
    /// useful for driving instance methods of classes that declare no
    /// constructor (tests, benches, REPLs). Regular construction goes
    /// through [`Program::ctor`] / [`CtorRef::construct`].
    ///
    /// # Errors
    ///
    /// [`RtErrorKind::MethodNotFound`](crate::RtErrorKind::MethodNotFound)
    /// when `class` is not declared in the program.
    pub fn instance(&self, class: &str) -> RtResult<Value> {
        let layout = self
            .table()
            .layout(class)
            .ok_or_else(|| RtError::method_not_found(class, "<instance>"))?;
        Ok(Value::Obj(Arc::new(crate::Object::new(
            Arc::clone(layout),
            Vec::new(),
        ))))
    }

    /// Tests whether `value` matches the named constructor `ctor`
    /// (predicate use of a named constructor, e.g. `ZNat(0).zero()`).
    pub fn matches(&self, value: &Value, ctor: &str) -> RtResult<bool> {
        match self.engine {
            Engine::Plan => {
                let mut budget = self.budget();
                Ev::new(&self.plan, &mut budget).matches_constructor(value, ctor)
            }
            _ => self.walker().matches_constructor(value, ctor),
        }
    }

    /// Deep equality, using equality constructors (§3.2) across different
    /// implementations of the same abstraction.
    pub fn values_equal(&self, a: &Value, b: &Value) -> RtResult<bool> {
        match self.engine {
            Engine::Plan => {
                let mut budget = self.budget();
                Ev::new(&self.plan, &mut budget).values_equal(a, b)
            }
            _ => self.walker().values_equal(a, b),
        }
    }

    // -- internals -----------------------------------------------------------

    fn budget(&self) -> Budget {
        Budget::new(self.limits.max_depth, self.limits.max_steps)
    }

    fn walker(&self) -> TreeWalker {
        self.walker_with(self.limits)
    }

    fn walker_with(&self, limits: Limits) -> TreeWalker {
        TreeWalker::with_limits(
            Arc::clone(self.plan.table()),
            limits.max_depth,
            limits.max_steps,
        )
    }
}

// ---------------------------------------------------------------------------
// MethodRef / CtorRef
// ---------------------------------------------------------------------------

/// A resolved method handle: class-table lookup, dispatch-index resolution
/// and mode selection happen once, at [`Program::method`] /
/// [`Program::free_method`] time; [`MethodRef::call`] then runs the
/// precompiled plan with no per-call hash lookups.
///
/// ```
/// use jmatch_runtime::{args, Value, Workspace};
///
/// let program = Workspace::new().verify(false).compile(
///     "static int double(int x) { return x + x; }",
/// )?;
/// // Resolve once...
/// let double = program.free_method("double")?;
/// // ...call many times.
/// for i in 0..100 {
///     assert_eq!(double.call(None, args![i])?, Value::Int(2 * i));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MethodRef {
    program: Program,
    pid: PlanId,
    /// Iterative-mode solved forms, memoized per (bound-name set, `this`
    /// class) so hot loops calling [`MethodRef::iterate`] with the same
    /// binding shape never re-lower the body.
    iterate_cache: Arc<Mutex<IterateCache>>,
}

/// Memoized iterative-mode solved forms, keyed by the binding shape that
/// lowering depends on: the sorted bound names and the receiver's class
/// (`None` = no receiver at all).
type IterateCache = HashMap<(Vec<String>, Option<String>), Arc<SolvedForm>>;

impl MethodRef {
    /// The method's name.
    pub fn name(&self) -> &str {
        &self.program.plan.method(self.pid).info.decl.name
    }

    /// The `Owner.name` form of the method.
    pub fn qualified_name(&self) -> String {
        self.program.plan.method(self.pid).info.qualified_name()
    }

    /// The declared parameters.
    pub fn params(&self) -> &[Param] {
        &self.program.plan.method(self.pid).info.decl.params
    }

    /// Calls the method in the forward mode: all parameters known,
    /// `result` solved for. Instance methods take their receiver in
    /// `receiver`; free methods take `None`.
    pub fn call(&self, receiver: Option<&Value>, args: Vec<Value>) -> RtResult<Value> {
        self.call_with(receiver, args, self.program.limits)
    }

    /// Like [`MethodRef::call`] with explicit work ceilings.
    pub fn call_with(
        &self,
        receiver: Option<&Value>,
        args: Vec<Value>,
        limits: Limits,
    ) -> RtResult<Value> {
        match self.program.engine {
            Engine::Plan => {
                let mut budget = Budget::new(limits.max_depth, limits.max_steps);
                Ev::new(&self.program.plan, &mut budget).run_forward(
                    self.pid,
                    receiver.cloned(),
                    args,
                )
            }
            _ => self.program.walker_with(limits).run_forward(
                &self.program.plan.method(self.pid).info,
                receiver.cloned(),
                args,
            ),
        }
    }

    /// Like [`MethodRef::call_with`], but also reports the solver steps
    /// the call spent, when the engine can count them (the plan engine;
    /// `None` on the tree-walker) — the accounting shape a metered server
    /// needs to settle a step grant after a forward call.
    pub fn call_counted(
        &self,
        receiver: Option<&Value>,
        args: Vec<Value>,
        limits: Limits,
    ) -> (RtResult<Value>, Option<u64>) {
        self.call_counted_interruptible(receiver, args, limits, None)
    }

    /// Like [`MethodRef::call_counted`], with an optional external
    /// interrupt token: a fired token (cancellation, request deadline)
    /// stops the call at the next fuel-poll boundary with an
    /// [`RtErrorKind::Interrupted`](crate::RtErrorKind::Interrupted) error.
    pub fn call_counted_interruptible(
        &self,
        receiver: Option<&Value>,
        args: Vec<Value>,
        limits: Limits,
        interrupt: Option<Arc<AtomicBool>>,
    ) -> (RtResult<Value>, Option<u64>) {
        match self.program.engine {
            Engine::Plan => {
                let mut budget = Budget::new(limits.max_depth, limits.max_steps);
                budget.set_interrupt(interrupt);
                let outcome = Ev::new(&self.program.plan, &mut budget).run_forward(
                    self.pid,
                    receiver.cloned(),
                    args,
                );
                (outcome, Some(budget.steps))
            }
            _ => {
                let mut walker = self.program.walker_with(limits);
                walker.set_interrupt(interrupt);
                let outcome = walker.run_forward(
                    &self.program.plan.method(self.pid).info,
                    receiver.cloned(),
                    args,
                );
                (outcome, None)
            }
        }
    }

    /// An iterative-mode query: enumerate the solutions of the method's
    /// declarative body with the bindings of `known` as the inputs and
    /// every other relation variable solved for — the `foreach`-driving
    /// mode the paper compiles to Java_yield iterators.
    ///
    /// # Errors
    ///
    /// [`RtErrorKind::ModeMismatch`](crate::RtErrorKind::ModeMismatch) when
    /// the method has an imperative (or no) body.
    pub fn iterate(&self, receiver: Option<&Value>, known: &Bindings) -> RtResult<Query<'_>> {
        let mp = self.program.plan.method(self.pid);
        let MethodBody::Formula(f) = &mp.info.decl.body else {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "iterative",
            ));
        };
        // Lowering depends only on which names are bound and the receiver's
        // class, so the solved form is memoized per binding shape: repeated
        // iterate() calls in a hot loop do no per-call lowering.
        let mut key: (Vec<String>, Option<String>) = (
            known.keys().cloned().collect(),
            // Mirrors lower_formula: a non-object receiver still puts `this`
            // in scope (with an empty class), distinct from no receiver.
            receiver.map(|r| r.class().unwrap_or("").to_owned()),
        );
        key.0.sort_unstable();
        let form = {
            let mut cache = self.iterate_cache.lock().expect("iterate cache poisoned");
            Arc::clone(
                cache
                    .entry(key)
                    .or_insert_with(|| Arc::new(self.program.lower_formula(f, known, receiver))),
            )
        };
        Ok(Query {
            program: &self.program,
            limits: self.program.limits,
            interrupt: None,
            source: Source::Formula {
                ast: f.clone(),
                form,
                env: known.clone(),
                this: receiver.cloned(),
            },
        })
    }

    /// Runs a batch of iterative-mode calls — one `(receiver, known
    /// bindings)` pair per call — on one pool of `threads` worker threads
    /// (`0` = available parallelism), returning each call's full solution
    /// set in sequential enumeration order.
    ///
    /// Building every [`Query`] up front amortizes lowering through the
    /// per-binding-shape solved-form cache, and the batch shares one
    /// thread pool via [`Program::query_many`]; calls that fail to build
    /// (e.g. [`RtErrorKind::ModeMismatch`](crate::RtErrorKind::ModeMismatch))
    /// report their error in their result slot without disturbing the
    /// rest.
    pub fn iterate_many(
        &self,
        calls: &[(Option<Value>, Bindings)],
        threads: usize,
    ) -> Vec<RtResult<Vec<Bindings>>> {
        let mut slots: Vec<Option<RtResult<Vec<Bindings>>>> = Vec::with_capacity(calls.len());
        let mut queries: Vec<Query<'_>> = Vec::new();
        let mut query_slot: Vec<usize> = Vec::new();
        for (i, (receiver, known)) in calls.iter().enumerate() {
            match self.iterate(receiver.as_ref(), known) {
                Ok(q) => {
                    queries.push(q);
                    query_slot.push(i);
                    slots.push(None);
                }
                Err(e) => slots.push(Some(Err(e))),
            }
        }
        let outcomes = self.program.query_many(&queries, threads);
        for (i, outcome) in query_slot.into_iter().zip(outcomes) {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.expect("iterate_many left a slot unfilled"))
            .collect()
    }
}

/// A resolved constructor handle: construction and matching are bound to
/// their plan indices once, at [`Program::ctor`] time.
#[derive(Debug, Clone)]
pub struct CtorRef {
    program: Program,
    class: String,
    ctor: String,
    construct_pid: PlanId,
    match_pid: Option<PlanId>,
}

impl CtorRef {
    /// The class the handle constructs.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The constructor's name.
    pub fn name(&self) -> &str {
        &self.ctor
    }

    /// Invokes the constructor in the forward mode, producing an instance.
    pub fn construct(&self, args: Vec<Value>) -> RtResult<Value> {
        match self.program.engine {
            Engine::Plan => {
                let mut budget = self.program.budget();
                Ev::new(&self.program.plan, &mut budget).run_forward(self.construct_pid, None, args)
            }
            _ => self.program.walker().run_forward(
                &self.program.plan.method(self.construct_pid).info,
                None,
                args,
            ),
        }
    }

    /// A backward-mode query over this constructor (see
    /// [`Program::deconstruct`]). Values of other classes re-dispatch on
    /// their runtime class.
    pub fn deconstruct(&self, value: &Value) -> RtResult<Query<'_>> {
        if let (Some(pid), Some(class)) = (self.match_pid, value.class()) {
            if class == self.class {
                let mp = self.program.plan.method(pid);
                if matches!(mp.body, BodyPlan::Formula { .. }) {
                    return Ok(Query {
                        program: &self.program,
                        limits: self.program.limits,
                        interrupt: None,
                        source: Source::Deconstruct {
                            pid,
                            ctor: self.ctor.clone(),
                            value: value.clone(),
                        },
                    });
                }
            }
        }
        self.program.deconstruct(value, &self.ctor)
    }

    /// Whether `value` matches this constructor (predicate mode).
    pub fn matches(&self, value: &Value) -> RtResult<bool> {
        self.program.matches(value, &self.ctor)
    }
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

/// What a query enumerates.
enum Source {
    /// Backward mode of a constructor: solve the matching plan of `pid`
    /// against `value`.
    Deconstruct {
        pid: PlanId,
        ctor: String,
        value: Value,
    },
    /// A standalone formula (raw solving and iterative-mode calls): the
    /// lowered form drives the plan engine, the AST drives the tree-walker.
    Formula {
        ast: Formula,
        form: Arc<SolvedForm>,
        env: Bindings,
        this: Option<Value>,
    },
}

/// A prepared enumeration: the lowering / resolution work is done, and
/// [`Query::solutions`] can be called any number of times to re-enumerate.
///
/// The query owns its inputs (seed bindings, the matched value, the lowered
/// formula), so the [`Solutions`] iterator borrows the query rather than
/// the transient call arguments.
pub struct Query<'p> {
    program: &'p Program,
    limits: Limits,
    interrupt: Option<Arc<AtomicBool>>,
    source: Source,
}

impl Query<'_> {
    /// Overrides the work ceilings for this query.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches an external interrupt token: when another thread stores
    /// `true` into it (a cancellation request or a deadline watchdog), the
    /// enumeration stops at the next fuel-poll boundary (every 256 solver
    /// steps, on every engine) with an
    /// [`RtErrorKind::Interrupted`](crate::RtErrorKind::Interrupted) error.
    pub fn interrupt(mut self, token: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(token);
        self
    }

    /// The first solution, if any (errors read as "no solution"; use
    /// [`Query::try_first`] to observe them).
    pub fn first(&self) -> Option<Bindings> {
        self.try_first().unwrap_or(None)
    }

    /// The first solution, surfacing enumeration errors.
    ///
    /// # Errors
    ///
    /// Propagates the runtime error that ended the enumeration, if any.
    pub fn try_first(&self) -> RtResult<Option<Bindings>> {
        if !matches!(self.program.engine, Engine::Plan) {
            let mut first = None;
            self.tree_run_inline(&mut |b| {
                first = Some(b);
                false
            })?;
            return Ok(first);
        }
        let mut solutions = self.solutions();
        let first = solutions.next();
        match solutions.take_error() {
            Some(e) => Err(e),
            None => Ok(first),
        }
    }

    /// Collects every solution, surfacing enumeration errors.
    ///
    /// On the tree-walk engine this runs the callback engine directly on
    /// the caller's thread — eager collection has no laziness to preserve,
    /// so it skips the producer thread entirely.
    ///
    /// # Errors
    ///
    /// Propagates the runtime error that ended the enumeration, if any.
    pub fn try_collect(&self) -> RtResult<Vec<Bindings>> {
        if !matches!(self.program.engine, Engine::Plan) {
            let mut all = Vec::new();
            self.tree_run_inline(&mut |b| {
                all.push(b);
                true
            })?;
            return Ok(all);
        }
        let mut solutions = self.solutions();
        let all: Vec<Bindings> = solutions.by_ref().collect();
        match solutions.take_error() {
            Some(e) => Err(e),
            None => Ok(all),
        }
    }

    /// Like [`Query::try_collect`], but also reports the solver steps the
    /// enumeration spent, when the engine can count them (the plan
    /// engine's stack machine; `None` on the tree-walker adapter).
    pub fn try_collect_counted(&self) -> (RtResult<Vec<Bindings>>, Option<u64>) {
        if !matches!(self.program.engine, Engine::Plan) {
            let mut all = Vec::new();
            let outcome = self.tree_run_inline(&mut |b| {
                all.push(b);
                true
            });
            return (outcome.map(|()| all), None);
        }
        let mut solutions = self.solutions();
        let all: Vec<Bindings> = solutions.by_ref().collect();
        let steps = solutions.steps();
        match solutions.take_error() {
            Some(e) => (Err(e), steps),
            None => (Ok(all), steps),
        }
    }

    /// Collects every solution of a *deconstruction* query as ordered rows
    /// (the constructor's parameters in declaration order, `Null` for
    /// parameters a solution left unbound), surfacing enumeration errors.
    ///
    /// # Errors
    ///
    /// Fails on non-deconstruction queries and propagates the runtime
    /// error that ended the enumeration, if any.
    pub fn try_collect_rows(&self) -> RtResult<Vec<Vec<Value>>> {
        let Source::Deconstruct { pid, value, .. } = &self.source else {
            return Err(RtError::new(
                "try_collect_rows applies to deconstruction queries only",
            ));
        };
        if matches!(self.program.engine, Engine::Plan) {
            if let Some(rows) = crate::eval::fast_deconstruct(&self.program.plan, value, *pid) {
                return Ok(rows);
            }
        }
        let params: Vec<String> = self
            .program
            .plan
            .method(*pid)
            .info
            .decl
            .params
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let all = self.try_collect()?;
        Ok(all
            .into_iter()
            .map(|b| {
                params
                    .iter()
                    .map(|p| b.get(p).cloned().unwrap_or(Value::Null))
                    .collect()
            })
            .collect())
    }

    /// Like [`Query::try_collect_rows`], but consumes the query: when the
    /// caller holds no other reference to the deconstructed value and the
    /// constructor is a pure field permutation, the solution row takes
    /// over the object's own field storage in place instead of cloning it
    /// — the first slice of Perceus-style memory reuse (see ROADMAP).
    ///
    /// # Errors
    ///
    /// Fails on non-deconstruction queries and propagates the runtime
    /// error that ended the enumeration, if any.
    pub fn try_into_rows(mut self) -> RtResult<Vec<Vec<Value>>> {
        if matches!(self.program.engine, Engine::Plan) {
            if let Source::Deconstruct { pid, value, .. } = &mut self.source {
                let pid = *pid;
                let v = std::mem::replace(value, Value::Null);
                match crate::eval::fast_deconstruct_owned(&self.program.plan, v, pid) {
                    Ok(rows) => return Ok(rows),
                    // Not a fast-path shape: restore the value and fall
                    // back to the borrowing collector.
                    Err(v) => *value = v,
                }
            }
        }
        self.try_collect_rows()
    }

    /// Runs the tree-walker's callback engine on the caller's thread,
    /// feeding each solution to `emit` (return `false` to stop) — the
    /// eager / legacy-shim path that needs no producer thread.
    pub(crate) fn tree_run_inline(&self, emit: &mut dyn FnMut(Bindings) -> bool) -> RtResult<()> {
        let mut walker = self.program.walker_with(self.limits);
        walker.set_interrupt(self.interrupt.clone());
        match &self.source {
            Source::Formula { ast, env, this, .. } => {
                walker.solve(env, this.as_ref(), ast, 0, &mut |b| emit(b.clone()))
            }
            Source::Deconstruct { pid, ctor, value } => {
                let params: Vec<String> = self
                    .program
                    .plan
                    .method(*pid)
                    .info
                    .decl
                    .params
                    .iter()
                    .map(|p| p.name.clone())
                    .collect();
                walker.deconstruct_each(value, ctor, &mut |row| {
                    let mut b = Bindings::new();
                    for (p, v) in params.iter().zip(row) {
                        b.insert(p.clone(), v.clone());
                    }
                    emit(b)
                })
            }
        }
    }

    /// Starts the enumeration: a pull-based iterator over the query's
    /// solutions. Work happens inside `next()`, one solution at a time.
    pub fn solutions(&self) -> Solutions<'_> {
        match self.program.engine {
            Engine::Plan => self.plan_solutions(),
            _ => self.tree_solutions(),
        }
    }

    fn plan_solutions(&self) -> Solutions<'_> {
        let plan = &*self.program.plan;
        let (machine, extract) = match &self.source {
            Source::Deconstruct { pid, value, .. } => {
                let mp = plan.method(*pid);
                let BodyPlan::Formula { matching, .. } = &mp.body else {
                    unreachable!("checked at query construction");
                };
                let machine = Machine::new(
                    plan,
                    MachineCode::of_form(matching),
                    vec![None; matching.frame.len()],
                    Some(value.clone()),
                    self.limits.max_depth,
                    self.limits.max_steps,
                )
                .with_root_det(matching.det)
                .with_interrupt(self.interrupt.clone());
                let extract = Extract::Params {
                    params: &mp.info.decl.params,
                    slots: &matching.param_slots,
                    table: plan.table(),
                };
                (machine, extract)
            }
            Source::Formula {
                form, env, this, ..
            } => {
                let mut root: Frame = vec![None; form.frame.len()];
                for (name, v) in env {
                    if let Some(s) = form.frame.slot_of(name) {
                        root[s as usize] = Some(v.clone());
                    }
                }
                let machine = Machine::new(
                    plan,
                    MachineCode::of_form(form),
                    root,
                    this.clone(),
                    self.limits.max_depth,
                    self.limits.max_steps,
                )
                .with_root_det(form.det)
                .with_interrupt(self.interrupt.clone());
                (machine, Extract::Slots(&form.frame))
            }
        };
        Solutions {
            inner: Inner::Machine {
                machine: Box::new(machine),
                extract,
            },
            error: None,
        }
    }

    /// The legacy engine behind the same iterator: the callback-based
    /// tree-walker runs on a worker thread and hands solutions through a
    /// **bounded (rendezvous) channel**, so the producer can never be more
    /// than one solution ahead of the consumer; dropping the iterator
    /// disconnects the channel and unwinds the producer.
    fn tree_solutions(&self) -> Solutions<'_> {
        let mut walker = self.program.walker_with(self.limits);
        walker.set_interrupt(self.interrupt.clone());
        let (tx, rx) = mpsc::sync_channel::<RtResult<Bindings>>(1);
        let job = match &self.source {
            Source::Deconstruct { pid, ctor, value } => TreeJob::Deconstruct {
                value: value.clone(),
                ctor: ctor.clone(),
                params: self
                    .program
                    .plan
                    .method(*pid)
                    .info
                    .decl
                    .params
                    .iter()
                    .map(|p| p.name.clone())
                    .collect(),
            },
            Source::Formula { ast, env, this, .. } => TreeJob::Formula {
                f: ast.clone(),
                env: env.clone(),
                this: this.clone(),
            },
        };
        // The walker's native recursion is deep (one Rust frame chain per
        // constructor match, fat in debug builds); give the producer the
        // stack the main thread of a binary would have, times a margin.
        let producer = std::thread::Builder::new()
            .name("jmatch-tree-solutions".into())
            .stack_size(64 << 20);
        let spawned = producer.spawn(move || {
            let outcome = match job {
                TreeJob::Formula { f, env, this } => {
                    walker.solve(&env, this.as_ref(), &f, 0, &mut |b| {
                        tx.send(Ok(b.clone())).is_ok()
                    })
                }
                TreeJob::Deconstruct {
                    value,
                    ctor,
                    params,
                } => walker.deconstruct_each(&value, &ctor, &mut |row| {
                    let mut b = Bindings::new();
                    for (p, v) in params.iter().zip(row) {
                        b.insert(p.clone(), v.clone());
                    }
                    tx.send(Ok(b)).is_ok()
                }),
            };
            if let Err(e) = outcome {
                let _ = tx.send(Err(e));
            }
        });
        match spawned {
            Ok(handle) => Solutions {
                inner: Inner::Channel {
                    rx: Some(rx),
                    producer: Some(handle),
                },
                error: None,
            },
            Err(e) => Solutions {
                inner: Inner::Channel {
                    rx: Some(rx),
                    producer: None,
                },
                error: Some(RtError::new(format!(
                    "could not start the tree-walker producer thread: {e}"
                ))),
            },
        }
    }

    // -- parallel enumeration ------------------------------------------------

    /// Starts an **OR-parallel** enumeration over `threads` worker threads
    /// (`0` = available parallelism), preserving the sequential engine's
    /// exact solution order: workers race over disjoint subtrees of the
    /// choice tree and a reorder buffer merges their streams back into
    /// lexicographic choice-path order, so the solution sequence is
    /// identical to [`Query::solutions`] — including where a
    /// *deterministic* runtime error cuts the stream — just faster on
    /// branchy enumerations.
    ///
    /// [`Limits::max_steps`] becomes a budget *shared by all workers*
    /// (debited in batches from one atomic pool): the ceiling bounds the
    /// combined work, so a budget the sequential run exceeds is exceeded
    /// in parallel too — but because workers drain the pool concurrently
    /// (and replaying task prefixes costs extra steps), *where* a
    /// `LimitExceeded` error lands in the stream can differ from the
    /// sequential run. `max_depth` bounds each derivation exactly as in
    /// sequential runs. Parallelism is a plan-engine feature; on
    /// [`Engine::TreeWalk`] programs this falls back to the sequential
    /// iterator.
    ///
    /// Unlike the sequential iterator's O(1) buffering, ordered mode holds
    /// completed-but-not-yet-due solutions in memory: while the
    /// lexicographically-least task is still running, other workers'
    /// finished solutions accumulate in the reorder buffer — up to
    /// O(total solutions) on adversarial shapes (a slow first subtree
    /// behind fast later ones). Use [`Query::par_solutions_unordered`]
    /// when order does not matter, or [`Query::solutions`] when streaming
    /// memory matters more than throughput.
    pub fn par_solutions(&self, threads: usize) -> Solutions<'_> {
        self.par_with(threads, ParMode::Ordered)
    }

    /// Like [`Query::par_solutions`] but merging solutions **as produced**
    /// (no reorder buffer): maximal throughput, with the solution
    /// *multiset* — but not its order — identical to the sequential
    /// enumeration. A worker error ends the stream with that error, which
    /// may arrive before solutions the sequential engine would have
    /// emitted first.
    pub fn par_solutions_unordered(&self, threads: usize) -> Solutions<'_> {
        self.par_with(threads, ParMode::Unordered)
    }

    fn par_with(&self, threads: usize, mode: ParMode) -> Solutions<'_> {
        if !matches!(self.program.engine, Engine::Plan) {
            return self.solutions();
        }
        let job = match &self.source {
            Source::Deconstruct { pid, value, .. } => ParJob::Deconstruct {
                pid: *pid,
                value: value.clone(),
            },
            Source::Formula {
                form, env, this, ..
            } => {
                let seed: Vec<(SlotId, Value)> = env
                    .iter()
                    .filter_map(|(name, v)| form.frame.slot_of(name).map(|s| (s, v.clone())))
                    .collect();
                ParJob::Formula {
                    form: Arc::clone(form),
                    seed,
                    this: this.clone(),
                }
            }
        };
        let stream = par::spawn(
            Arc::clone(&self.program.plan),
            job,
            self.limits,
            threads,
            mode,
            self.interrupt.clone(),
        );
        Solutions {
            inner: Inner::Par(Box::new(stream)),
            error: None,
        }
    }
}

/// Work shipped to the tree-walker's producer thread.
enum TreeJob {
    Formula {
        f: Formula,
        env: Bindings,
        this: Option<Value>,
    },
    Deconstruct {
        value: Value,
        ctor: String,
        params: Vec<String>,
    },
}

// ---------------------------------------------------------------------------
// Solutions
// ---------------------------------------------------------------------------

/// How machine solutions are turned into [`Bindings`].
enum Extract<'q> {
    /// Every bound, named slot of the root frame (formula queries).
    Slots(&'q FrameLayout),
    /// The constructor's parameter row, filtered by the declared parameter
    /// types (deconstruction); solutions leaving a parameter unbound are
    /// skipped, like both recursive engines.
    Params {
        params: &'q [Param],
        slots: &'q [SlotId],
        table: &'q ClassTable,
    },
}

/// Bindings of every bound, named slot of a solved form's root frame — the
/// formula-query extraction, shared by the sequential iterator and the
/// OR-parallel workers.
pub(crate) fn frame_bindings(layout: &FrameLayout, frame: &Frame) -> Bindings {
    let mut out = Bindings::new();
    for (i, v) in frame.iter().enumerate() {
        if let Some(v) = v {
            out.insert(layout.name_of(i as SlotId).to_owned(), v.clone());
        }
    }
    out
}

/// Bindings of a deconstruction solution's parameter row, or `None` when
/// the row leaves a declared parameter unbound or ill-typed (filtered like
/// both recursive engines). Shared by the sequential iterator and the
/// OR-parallel workers.
pub(crate) fn param_row_bindings(
    params: &[Param],
    slots: &[SlotId],
    table: &ClassTable,
    frame: &Frame,
) -> Option<Bindings> {
    let mut out = Bindings::new();
    for (p, &s) in params.iter().zip(slots.iter()) {
        let v = frame[s as usize].as_ref()?;
        if let Type::Named(t) = &p.ty {
            if let Some(class) = v.class() {
                if !table.is_subtype(class, t) {
                    return None;
                }
            }
        }
        out.insert(p.name.clone(), v.clone());
    }
    Some(out)
}

enum Inner<'q> {
    /// The resumable stack machine (plan engine).
    Machine {
        machine: Box<Machine<'q>>,
        extract: Extract<'q>,
    },
    /// The bounded adapter over the tree-walker's callback engine. The
    /// producer's `JoinHandle` is kept so exhausting or dropping the
    /// iterator deterministically joins the worker thread (disconnecting
    /// the rendezvous channel first, so a blocked `send` always unblocks).
    Channel {
        rx: Option<mpsc::Receiver<RtResult<Bindings>>>,
        producer: Option<JoinHandle<()>>,
    },
    /// The OR-parallel worker pool (see [`crate::par`]).
    Par(Box<par::ParStream>),
}

/// A lazy, pull-based stream of query solutions.
///
/// `Solutions` is a true [`Iterator`]: each `next()` performs only the
/// solver work needed to reach the next solution, so `take(1)` on a large
/// enumeration does O(first solution) work — the laziness the paper gets
/// from compiling to Java_yield coroutines.
///
/// A runtime error ends the stream; inspect it with [`Solutions::error`] /
/// [`Solutions::take_error`].
///
/// ```
/// use jmatch_runtime::{Bindings, Value, Workspace};
///
/// let program = Workspace::new().verify(false).compile(
///     "class Gen {
///          boolean small(int x) iterates(x) ( x = 1 # 2 # 3 )
///      }",
/// )?;
/// let small = program.method("Gen", "small")?;
/// let gen = program.instance("Gen")?;
/// let query = small.iterate(Some(&gen), &Bindings::new())?;
/// let first: Vec<i64> = query
///     .solutions()
///     .take(1) // ← only the first solution's work happens
///     .map(|b| b["x"].as_int().unwrap())
///     .collect();
/// assert_eq!(first, vec![1]);
/// let all: Vec<i64> = query.solutions().map(|b| b["x"].as_int().unwrap()).collect();
/// assert_eq!(all, vec![1, 2, 3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Solutions<'q> {
    inner: Inner<'q>,
    error: Option<RtError>,
}

impl Solutions<'_> {
    /// The error that ended the stream, if any.
    pub fn error(&self) -> Option<&RtError> {
        self.error.as_ref()
    }

    /// Takes the error that ended the stream, if any.
    pub fn take_error(&mut self) -> Option<RtError> {
        self.error.take()
    }

    /// Solver steps spent so far, when the engine can report them (the
    /// plan engine's stack machine; `None` on the tree-walker adapter and
    /// on parallel enumerations, whose steps are spread across workers).
    /// This is what the O(1)-first-solution laziness test measures.
    pub fn steps(&self) -> Option<u64> {
        match &self.inner {
            Inner::Machine { machine, .. } => Some(machine.steps()),
            Inner::Channel { .. } | Inner::Par(_) => None,
        }
    }

    /// Choice points currently live on the solver's choice stack, when the
    /// engine can report them ([`Engine::Plan`] only). At a solution of a
    /// `Det`-analyzed mode this is `Some(0)`: the determinism commit left
    /// nothing to backtrack into.
    pub fn choice_points(&self) -> Option<usize> {
        match &self.inner {
            Inner::Machine { machine, .. } => Some(machine.live_choices()),
            Inner::Channel { .. } | Inner::Par(_) => None,
        }
    }

    /// Total choice points the solver created so far, when the engine can
    /// report them ([`Engine::Plan`] only).
    pub fn choice_points_created(&self) -> Option<u64> {
        match &self.inner {
            Inner::Machine { machine, .. } => Some(machine.choices_created()),
            Inner::Channel { .. } | Inner::Par(_) => None,
        }
    }

    /// Disconnects the tree-walker channel and joins its producer thread.
    /// Idempotent; a no-op for the other engines (the parallel pool joins
    /// its own workers).
    fn join_producer(&mut self) {
        if let Inner::Channel { rx, producer } = &mut self.inner {
            // Disconnect first: a producer parked in `send` on the
            // rendezvous channel unblocks with an error and unwinds.
            rx.take();
            if let Some(h) = producer.take() {
                let _ = h.join();
            }
        }
    }
}

/// Dropping a `Solutions` mid-enumeration must not leak its producer: the
/// tree-walker engine's worker thread is blocked in a rendezvous `send`
/// whenever the consumer stops early, so the drop disconnects the channel
/// (unblocking the send) and joins the thread before returning. The
/// OR-parallel pool behind [`Query::par_solutions`] does the same through
/// `ParStream`'s own `Drop`.
impl Drop for Solutions<'_> {
    fn drop(&mut self) {
        self.join_producer();
    }
}

impl Iterator for Solutions<'_> {
    type Item = Bindings;

    fn next(&mut self) -> Option<Bindings> {
        if self.error.is_some() {
            return None;
        }
        match &mut self.inner {
            Inner::Machine { machine, extract } => loop {
                match machine.next_solution() {
                    Err(e) => {
                        self.error = Some(e);
                        return None;
                    }
                    Ok(false) => return None,
                    Ok(true) => {
                        let frame = machine.root_frame();
                        match extract {
                            Extract::Slots(layout) => {
                                return Some(frame_bindings(layout, frame));
                            }
                            Extract::Params {
                                params,
                                slots,
                                table,
                            } => {
                                if let Some(out) = param_row_bindings(params, slots, table, frame) {
                                    return Some(out);
                                }
                                // Filtered row: pull the next solution.
                            }
                        }
                    }
                }
            },
            Inner::Channel { rx, producer } => {
                let next = match rx.as_ref() {
                    Some(r) => r.recv(),
                    None => return None,
                };
                match next {
                    Ok(Ok(b)) => Some(b),
                    other => {
                        if let Ok(Err(e)) = other {
                            self.error = Some(e);
                        }
                        // The stream ended (error or disconnect): the
                        // producer is done, so join it deterministically.
                        rx.take();
                        if let Some(h) = producer.take() {
                            let _ = h.join();
                        }
                        None
                    }
                }
            }
            Inner::Par(stream) => match stream.next() {
                Some(Ok(b)) => Some(b),
                Some(Err(e)) => {
                    self.error = Some(e);
                    None
                }
                None => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync_clone<T: Send + Sync + Clone>() {}

    #[test]
    fn program_is_share_ready() {
        assert_send_sync_clone::<Program>();
        assert_send_sync_clone::<MethodRef>();
        assert_send_sync_clone::<CtorRef>();
        assert_send_sync_clone::<Limits>();
    }

    #[test]
    fn limits_default_matches_plan_engine_depth() {
        assert_eq!(Limits::default().max_depth, MAX_DEPTH);
        assert_eq!(Limits::default().max_steps, u64::MAX);
    }
}
