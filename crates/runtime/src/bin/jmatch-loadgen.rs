//! `jmatch-loadgen` — load generator and smoke checker for `jmatch-serve`.
//!
//! Three modes:
//!
//! * `--smoke`: eight concurrent connections drive compile / call / query /
//!   stream against a small program and compare **every** wire frame with
//!   a sequential in-process oracle (the embedding API run over the same
//!   source). Any mismatch, unparsable frame, or socket error exits
//!   nonzero — this is the CI `serve-smoke` gate.
//! * `--chaos`: the fault-tolerant variant of the smoke, for servers
//!   running with injected faults (`jmatch-serve --faults …`). Clients
//!   retry retryable rejections, reconnect through disconnects and
//!   truncated frames, and tally every fault-path outcome they observe
//!   (internal errors, deadline rejections, dropped connections). The
//!   gate is: every *successful* reply still matches the oracle, and
//!   enough requests succeed overall — this is the CI `chaos-smoke` gate.
//! * bench (default): for each concurrency level (default 1, 8, 64),
//!   measures cold-compile latency (every request compiles a distinct
//!   source), cached-compile latency (every request re-compiles the same
//!   source — a cache hit after the first), and cached-query latency,
//!   recording p50/p99 microseconds and throughput into a JSON report
//!   (`--out BENCH_serve.json`).

use jmatch_runtime::serve::json::Json;
use jmatch_runtime::serve::proto::bindings_to_json;
use jmatch_runtime::serve::{wait_ready, Client, QueryOptions, RetryPolicy};
use jmatch_runtime::{Bindings, Value, Workspace};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
jmatch-loadgen — load generator / smoke checker for jmatch-serve

USAGE:
    jmatch-loadgen --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT     server address (required)
    --smoke              run the 8-client correctness smoke instead of the bench
    --chaos              run the fault-tolerant smoke (for --faults servers)
    --chaos-requests N   requests per chaos client          [default: 64]
    --clients LIST       comma-separated concurrency levels [default: 1,8,64]
    --cold-requests N    cold compiles per client           [default: 16]
    --cached-requests N  cached compiles / queries per client [default: 128]
    --out PATH           write the JSON report here [default: BENCH_serve.json]
    --shutdown           send a shutdown frame when done (server must allow it)
    --help               print this help
";

/// The smoke program: one iterative generator, one forward function.
const SMOKE_SRC: &str = "\
static boolean below(int n, int x) iterates(x)
    ( x = 0 || x = 1 || x = 2 || x = 3 || x = 4 )
static int add(int a, int b) { return a + b; }
";

struct Flags {
    addr: SocketAddr,
    smoke: bool,
    chaos: bool,
    chaos_requests: usize,
    clients: Vec<usize>,
    cold_requests: usize,
    cached_requests: usize,
    out: String,
    shutdown: bool,
}

fn parse_flags() -> Result<Flags, String> {
    let mut addr = None;
    let mut flags = Flags {
        addr: "127.0.0.1:7733".parse().expect("literal addr"),
        smoke: false,
        chaos: false,
        chaos_requests: 64,
        clients: vec![1, 8, 64],
        cold_requests: 16,
        cached_requests: 128,
        out: "BENCH_serve.json".into(),
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => {
                addr = Some(
                    value("--addr")?
                        .parse::<SocketAddr>()
                        .map_err(|e| format!("bad --addr: {e}"))?,
                );
            }
            "--smoke" => flags.smoke = true,
            "--chaos" => flags.chaos = true,
            "--chaos-requests" => {
                flags.chaos_requests = value("--chaos-requests")?
                    .parse()
                    .map_err(|e| format!("bad --chaos-requests: {e}"))?;
            }
            "--clients" => {
                flags.clients = value("--clients")?
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--cold-requests" => {
                flags.cold_requests = value("--cold-requests")?
                    .parse()
                    .map_err(|e| format!("bad --cold-requests: {e}"))?;
            }
            "--cached-requests" => {
                flags.cached_requests = value("--cached-requests")?
                    .parse()
                    .map_err(|e| format!("bad --cached-requests: {e}"))?;
            }
            "--out" => flags.out = value("--out")?,
            "--shutdown" => flags.shutdown = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if let Some(addr) = addr {
        flags.addr = addr;
    } else {
        return Err(format!("--addr is required\n\n{USAGE}"));
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let flags = match parse_flags() {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("jmatch-loadgen: {message}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = wait_ready(flags.addr, Duration::from_secs(30)) {
        eprintln!(
            "jmatch-loadgen: server at {} never became ready: {e}",
            flags.addr
        );
        return ExitCode::FAILURE;
    }
    let outcome = if flags.chaos {
        run_chaos(&flags)
    } else if flags.smoke {
        run_smoke(&flags)
    } else {
        run_bench(&flags)
    };
    if flags.shutdown {
        match Client::connect(flags.addr)
            .map_err(Into::into)
            .and_then(|mut client: Client| client.shutdown_server())
        {
            Ok(reply) if reply.get("ok") == Some(&Json::Bool(true)) => {}
            Ok(reply) => eprintln!("jmatch-loadgen: shutdown rejected: {reply}"),
            Err(e) => eprintln!("jmatch-loadgen: shutdown failed: {e}"),
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("jmatch-loadgen: FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------------

/// The sequential oracle: the embedding API run in-process over the same
/// source the server compiles, producing the exact wire JSON the solutions
/// should serialize to.
fn oracle_solutions(n: i64) -> Result<Vec<Json>, String> {
    let program = Workspace::new()
        .verify(false)
        .compile(SMOKE_SRC)
        .map_err(|e| format!("oracle compile failed: {e}"))?;
    let below = program
        .free_method("below")
        .map_err(|e| format!("oracle resolve failed: {e}"))?;
    let mut known = Bindings::new();
    known.insert("n".into(), Value::Int(n));
    let query = below
        .iterate(None, &known)
        .map_err(|e| format!("oracle iterate failed: {e}"))?;
    query
        .try_collect()
        .map_err(|e| format!("oracle enumeration failed: {e}"))
        .map(|all| all.iter().map(bindings_to_json).collect())
}

fn run_smoke(flags: &Flags) -> Result<(), String> {
    let expected = oracle_solutions(3)?;
    let errors = Mutex::new(Vec::<String>::new());
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let errors = &errors;
            let expected = &expected;
            let addr = flags.addr;
            scope.spawn(move || {
                if let Err(e) = smoke_connection(addr, expected) {
                    errors
                        .lock()
                        .expect("error list poisoned")
                        .push(format!("client {worker}: {e}"));
                }
            });
        }
    });
    let errors = errors.into_inner().expect("error list poisoned");
    if errors.is_empty() {
        println!("jmatch-loadgen: smoke OK (8 clients, transcript matches oracle)");
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

/// One smoke client: compile, forward call, collect query, streamed query
/// — every reply checked against the oracle.
fn smoke_connection(addr: SocketAddr, expected: &[Json]) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;

    let reply = client
        .compile(SMOKE_SRC, false)
        .map_err(|e| format!("compile: {e}"))?;
    if reply.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("compile rejected: {reply}"));
    }
    let key = reply
        .get("program")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("compile reply lacks `program`: {reply}"))?
        .to_owned();

    let reply = client
        .call("default", &key, "add", &[Value::Int(2), Value::Int(3)])
        .map_err(|e| format!("call: {e}"))?;
    if reply.get("value") != Some(&Json::Int(5)) {
        return Err(format!("add(2,3) should be 5, got: {reply}"));
    }

    let mut options = QueryOptions::new(&key, "below");
    options.known = vec![("n".into(), Value::Int(3))];
    let reply = client.query(&options).map_err(|e| format!("query: {e}"))?;
    let solutions = reply
        .get("solutions")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("query reply lacks `solutions`: {reply}"))?;
    if solutions != expected {
        return Err(format!(
            "query solutions diverge from the sequential oracle: got {}, want {}",
            Json::Arr(solutions.to_vec()),
            Json::Arr(expected.to_vec()),
        ));
    }

    let frames = client
        .stream(&options, 2)
        .map_err(|e| format!("stream: {e}"))?;
    let mut streamed = Vec::new();
    for frame in &frames {
        if frame.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("stream errored: {frame}"));
        }
        if let Some(batch) = frame.get("solutions").and_then(Json::as_arr) {
            streamed.extend(batch.iter().cloned());
        }
    }
    if streamed != expected {
        return Err(format!(
            "streamed solutions diverge from the sequential oracle: got {}, want {}",
            Json::Arr(streamed),
            Json::Arr(expected.to_vec()),
        ));
    }
    let last = frames.last().expect("stream returns at least one frame");
    if last.get("done") != Some(&Json::Bool(true))
        || last.get("count") != Some(&Json::Int(expected.len() as i64))
        || last.get("cancelled") != Some(&Json::Bool(false))
    {
        return Err(format!("bad terminal stream frame: {last}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// Client-side tallies of every fault-path outcome the chaos run
/// observes. The server's own counters (panics, respawns, slow-consumer
/// disconnects) live in its exit summary; these are the wire-visible
/// complements.
#[derive(Default)]
struct ChaosTally {
    ok: AtomicU64,
    internal_errors: AtomicU64,
    deadline_exceeded: AtomicU64,
    backpressure: AtomicU64,
    cancelled: AtomicU64,
    other_errors: AtomicU64,
    reconnects: AtomicU64,
}

impl ChaosTally {
    fn count_error(&self, frame: &Json) {
        let kind = frame
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("");
        let counter = match kind {
            "internal-error" => &self.internal_errors,
            "deadline-exceeded" => &self.deadline_exceeded,
            "over-capacity" | "quota-exhausted" => &self.backpressure,
            "cancelled" => &self.cancelled,
            _ => &self.other_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

fn run_chaos(flags: &Flags) -> Result<(), String> {
    let expected = oracle_solutions(3)?;
    let tally = ChaosTally::default();
    let errors = Mutex::new(Vec::<String>::new());
    std::thread::scope(|scope| {
        for worker in 0..8u64 {
            let tally = &tally;
            let errors = &errors;
            let expected = expected.as_slice();
            let addr = flags.addr;
            let requests = flags.chaos_requests;
            scope.spawn(move || {
                if let Err(e) = chaos_connection(addr, expected, requests, tally, worker) {
                    errors
                        .lock()
                        .expect("error list poisoned")
                        .push(format!("client {worker}: {e}"));
                }
            });
        }
    });
    let errors = errors.into_inner().expect("error list poisoned");
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    let ok = tally.ok.load(Ordering::Relaxed);
    println!(
        "jmatch-loadgen: chaos OK — {ok} ok, {} internal-error, \
         {} deadline-exceeded, {} backpressure, {} cancelled, {} other, \
         {} reconnects (every successful reply matched the oracle)",
        tally.internal_errors.load(Ordering::Relaxed),
        tally.deadline_exceeded.load(Ordering::Relaxed),
        tally.backpressure.load(Ordering::Relaxed),
        tally.cancelled.load(Ordering::Relaxed),
        tally.other_errors.load(Ordering::Relaxed),
        tally.reconnects.load(Ordering::Relaxed),
    );
    if ok == 0 {
        return Err("no request ever succeeded under fault injection".into());
    }
    Ok(())
}

/// One chaos client: alternating forward calls and deadline-carrying
/// queries under a retry policy, reconnecting through whatever the fault
/// schedule does to the connection. Wrong *answers* are fatal; faults are
/// tallied.
fn chaos_connection(
    addr: SocketAddr,
    expected: &[Json],
    requests: usize,
    tally: &ChaosTally,
    seed: u64,
) -> Result<(), String> {
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay_ms: 5,
        max_delay_ms: 100,
        seed,
    };
    let mut session: Option<(Client, String)> = None;
    for i in 0..requests {
        if session.is_none() {
            tally.reconnects.fetch_add(1, Ordering::Relaxed);
            let Ok(mut client) = Client::connect(addr) else {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            let Ok(reply) = client.compile(SMOKE_SRC, false) else {
                continue;
            };
            let Some(key) = reply.get("program").and_then(Json::as_str) else {
                tally.count_error(&reply);
                continue;
            };
            session = Some((client, key.to_owned()));
        }
        let (client, key) = session.as_mut().expect("session was just established");
        let outcome = if i % 2 == 0 {
            client.call_with_retry(
                "default",
                key,
                "add",
                &[Value::Int(2), Value::Int(3)],
                &policy,
            )
        } else {
            let mut options = QueryOptions::new(key, "below");
            options.known = vec![("n".into(), Value::Int(3))];
            options.deadline_ms = Some(2_000);
            client.query_with_retry(&options, &policy)
        };
        match outcome {
            // Socket/framing breakage (a truncated frame, a slow-consumer
            // or fault-injected disconnect): start a fresh connection.
            Err(_) => session = None,
            Ok(frame) => {
                if frame.get("ok") == Some(&Json::Bool(true)) {
                    if i % 2 == 0 {
                        if frame.get("value") != Some(&Json::Int(5)) {
                            return Err(format!(
                                "add(2,3) gave a wrong answer under faults: {frame}"
                            ));
                        }
                    } else {
                        let solutions = frame
                            .get("solutions")
                            .and_then(Json::as_arr)
                            .unwrap_or_default();
                        if solutions != expected {
                            return Err(format!(
                                "query solutions diverged from the oracle under faults: {frame}"
                            ));
                        }
                    }
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    tally.count_error(&frame);
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------------

/// A template whose compile is heavy enough (with verification) for the
/// cold/cached gap to dwarf the socket round-trip. `{N}` is substituted to
/// make each cold request a distinct source.
fn bench_source(tag: &str) -> String {
    // A compile that does real work: several invariant-bearing classes so
    // `verify:true` runs the exhaustiveness/invariant VC passes through
    // the solver. A cold compile must cost enough CPU that the
    // cold-vs-cached ratio measures the program cache, not scheduler
    // queueing, even at 64 concurrent connections.
    let mut source = String::new();
    for copy in 0..4 {
        source.push_str(&format!(
            "\
interface Nat{copy}_{tag} {{
    invariant(this = zero() | succ(_));
    constructor zero() returns();
    constructor succ(Nat{copy}_{tag} n) returns(n);
}}
class ZNat{copy}_{tag} implements Nat{copy}_{tag} {{
    int val;
    private invariant(val >= 0);
    private ZNat{copy}_{tag}(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
    constructor zero() returns() ( val = 0 )
    constructor succ(Nat{copy}_{tag} n) returns(n) ( val >= 1 && ZNat{copy}_{tag}(val - 1) = n )
}}
static int toInt{copy}_{tag}(Nat{copy}_{tag} m) {{
    switch (m) {{
        case zero(): return 0;
        case succ(Nat{copy}_{tag} k): return toInt{copy}_{tag}(k) + 1;
    }}
}}
",
        ));
    }
    source.push_str(&format!(
        "\
static boolean gen_{tag}(int x) iterates(x)
    ( x = 0 || x = 1 || x = 2 || x = 3 || x = 4 || x = 5 || x = 6 || x = 7 )
static int poke_{tag}(int a) {{ return a + {len}; }}
",
        len = tag.len(),
    ));
    source
}

struct Scenario {
    clients: usize,
    mode: &'static str,
    latencies_us: Vec<u64>,
    elapsed: Duration,
}

impl Scenario {
    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.latencies_us.len() as f64 / secs
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clients", Json::Int(self.clients as i64)),
            ("mode", Json::Str(self.mode.to_owned())),
            ("requests", Json::Int(self.latencies_us.len() as i64)),
            ("p50_us", Json::Int(self.percentile(0.50) as i64)),
            ("p99_us", Json::Int(self.percentile(0.99) as i64)),
            (
                "throughput_rps",
                Json::Float((self.throughput_rps() * 100.0).round() / 100.0),
            ),
        ])
    }
}

/// Runs `requests` round-trips on each of `clients` concurrent
/// connections, returning every request's latency and the wall-clock of
/// the whole phase.
fn run_phase(
    addr: SocketAddr,
    clients: usize,
    mode: &'static str,
    requests: usize,
    work: impl Fn(&mut Client, usize, usize) -> Result<(), String> + Sync,
) -> Result<Scenario, String> {
    let all = Mutex::new(Vec::<u64>::with_capacity(clients * requests));
    let errors = Mutex::new(Vec::<String>::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let all = &all;
            let errors = &errors;
            let work = &work;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(requests);
                let outcome = (|| -> Result<(), String> {
                    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    for i in 0..requests {
                        let t0 = Instant::now();
                        work(&mut client, c, i)?;
                        mine.push(t0.elapsed().as_micros() as u64);
                    }
                    Ok(())
                })();
                if let Err(e) = outcome {
                    errors
                        .lock()
                        .expect("error list poisoned")
                        .push(format!("client {c}: {e}"));
                }
                all.lock().expect("latency list poisoned").extend(mine);
            });
        }
    });
    let elapsed = started.elapsed();
    let errors = errors.into_inner().expect("error list poisoned");
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    Ok(Scenario {
        clients,
        mode,
        latencies_us: all.into_inner().expect("latency list poisoned"),
        elapsed,
    })
}

fn expect_ok(frame: &Json, what: &str) -> Result<(), String> {
    if frame.get("ok") == Some(&Json::Bool(true)) {
        Ok(())
    } else {
        Err(format!("{what} failed: {frame}"))
    }
}

fn run_bench(flags: &Flags) -> Result<(), String> {
    let mut scenarios = Vec::new();
    let mut speedups = Vec::new();
    for &clients in &flags.clients {
        // Cold: every request compiles a distinct source (verification on,
        // like a first-time production compile).
        let cold = run_phase(
            flags.addr,
            clients,
            "compile-cold",
            flags.cold_requests,
            |client, c, i| {
                let source = bench_source(&format!("c{clients}w{c}r{i}"));
                let frame = client
                    .compile(&source, true)
                    .map_err(|e| format!("cold compile: {e}"))?;
                expect_ok(&frame, "cold compile")?;
                if frame.get("cached") == Some(&Json::Bool(true)) {
                    return Err("cold compile unexpectedly hit the cache".into());
                }
                Ok(())
            },
        )?;

        // Cached: every request compiles the same source; after the first
        // miss the round-trip is a hash lookup.
        let warm_src = bench_source(&format!("warm{clients}"));
        {
            let mut client =
                Client::connect(flags.addr).map_err(|e| format!("warmup connect: {e}"))?;
            let frame = client
                .compile(&warm_src, true)
                .map_err(|e| format!("warmup compile: {e}"))?;
            expect_ok(&frame, "warmup compile")?;
        }
        let cached = run_phase(
            flags.addr,
            clients,
            "compile-cached",
            flags.cached_requests,
            |client, _c, _i| {
                let frame = client
                    .compile(&warm_src, true)
                    .map_err(|e| format!("cached compile: {e}"))?;
                expect_ok(&frame, "cached compile")?;
                if frame.get("cached") != Some(&Json::Bool(true)) {
                    return Err("cached compile missed the cache".into());
                }
                Ok(())
            },
        )?;

        // Query: enumeration round-trips over the cached program.
        let warm_key = {
            let mut client =
                Client::connect(flags.addr).map_err(|e| format!("key connect: {e}"))?;
            let frame = client
                .compile(&warm_src, true)
                .map_err(|e| format!("key compile: {e}"))?;
            frame
                .get("program")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("no program key in {frame}"))?
                .to_owned()
        };
        let method = format!("gen_warm{clients}");
        let query = run_phase(
            flags.addr,
            clients,
            "query-cached",
            flags.cached_requests,
            |client, _c, _i| {
                // The workload is a few hundred steps; request a modest
                // ceiling so 64 concurrent admissions don't each reserve
                // the tenant-default 1M steps and trip the shared pool.
                let mut options = QueryOptions::new(&warm_key, &method);
                options.max_steps = Some(50_000);
                let frame = client.query(&options).map_err(|e| format!("query: {e}"))?;
                expect_ok(&frame, "query")?;
                let n = frame
                    .get("solutions")
                    .and_then(Json::as_arr)
                    .map_or(0, <[Json]>::len);
                if n != 8 {
                    return Err(format!("query returned {n} solutions, want 8"));
                }
                Ok(())
            },
        )?;

        let cold_p50 = cold.percentile(0.50).max(1);
        let cached_p50 = cached.percentile(0.50).max(1);
        let speedup = cold_p50 as f64 / cached_p50 as f64;
        println!(
            "clients={clients:>3}  cold p50={cold_p50}us p99={}us  \
             cached p50={cached_p50}us p99={}us  query p50={}us  \
             cached-compile speedup {speedup:.1}x",
            cold.percentile(0.99),
            cached.percentile(0.99),
            query.percentile(0.50),
        );
        speedups.push(speedup);
        scenarios.extend([cold, cached, query]);
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("serve_latency".into())),
        ("unit", Json::Str("microseconds".into())),
        (
            "scenarios",
            Json::Arr(scenarios.iter().map(Scenario::to_json).collect()),
        ),
        (
            "cached_compile_speedup_p50",
            Json::Arr(
                speedups
                    .iter()
                    .map(|s| Json::Float((s * 10.0).round() / 10.0))
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&flags.out, format!("{report}\n"))
        .map_err(|e| format!("could not write {}: {e}", flags.out))?;
    println!("jmatch-loadgen: wrote {}", flags.out);

    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    if min_speedup < 10.0 {
        return Err(format!(
            "cached-compile p50 is only {min_speedup:.1}x better than cold (want >= 10x)"
        ));
    }
    Ok(())
}
