//! `jmatch-serve` — the multi-tenant JMatch query server.
//!
//! Binds a TCP listener, serves the length-prefixed JSON protocol of
//! `PROTOCOL.md`, and runs until interrupted (or until a `shutdown` frame
//! arrives, when `--allow-remote-shutdown` is set — the CI harness uses
//! that for clean teardown). All configuration is flags; see `--help`.

use jmatch_runtime::serve::{FaultConfig, QuotaConfig, ServeConfig, Server};
use jmatch_runtime::Limits;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
jmatch-serve — multi-tenant JMatch query server

USAGE:
    jmatch-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT          listen address        [default: 127.0.0.1:7733]
    --workers N               query worker threads  [default: 4]
    --inner-threads N         threads per coalesced query batch [default: 2]
    --batch-max N             max queries coalesced per batch   [default: 16]
    --queue-depth N           per-tenant admission queue bound  [default: 64]
    --max-connections N       concurrent connection cap         [default: 256]
    --cache-capacity N        max cached programs (LRU)         [default: 64]
    --max-frame BYTES         frame payload cap                 [default: 1048576]
    --max-steps N             per-request step ceiling          [default: 1000000]
    --steps-per-window N      per-tenant step pool per window   [default: 10000000]
    --window-ms MS            quota window length               [default: 1000]
    --compile-steps N         step price of a compile (0 = unmetered) [default: 0]
    --send-queue-depth N      per-connection response queue bound     [default: 64]
    --send-queue-wait-ms MS   slow-consumer high-water timeout        [default: 2000]
    --faults SPEC             deterministic fault injection, e.g.
                              seed=42,panic_request=0.05,slow_write=0.1:20
                              (also read from JMATCH_FAULTS when unset)
    --allow-remote-shutdown   honor `shutdown` frames (CI harnesses)
    --help                    print this help
";

fn parse_flags() -> Result<ServeConfig, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7733".into(),
        ..ServeConfig::default()
    };
    let mut quota = QuotaConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => config.workers = parse(&value("--workers")?)?,
            "--inner-threads" => config.inner_threads = parse(&value("--inner-threads")?)?,
            "--batch-max" => config.batch_max = parse(&value("--batch-max")?)?,
            "--queue-depth" => config.queue_depth = parse(&value("--queue-depth")?)?,
            "--max-connections" => config.max_connections = parse(&value("--max-connections")?)?,
            "--cache-capacity" => config.cache_capacity = parse(&value("--cache-capacity")?)?,
            "--max-frame" => config.max_frame = parse(&value("--max-frame")?)?,
            "--max-steps" => {
                quota.limits = Limits {
                    max_steps: parse(&value("--max-steps")?)?,
                    ..quota.limits
                };
            }
            "--steps-per-window" => {
                quota.steps_per_window = parse(&value("--steps-per-window")?)?;
            }
            "--window-ms" => {
                quota.window = Duration::from_millis(parse(&value("--window-ms")?)?);
            }
            "--compile-steps" => {
                quota.compile_steps = parse(&value("--compile-steps")?)?;
            }
            "--send-queue-depth" => {
                config.send_queue_depth = parse(&value("--send-queue-depth")?)?;
            }
            "--send-queue-wait-ms" => {
                config.send_queue_wait_ms = parse(&value("--send-queue-wait-ms")?)?;
            }
            "--faults" => {
                config.faults = Some(
                    FaultConfig::parse(&value("--faults")?)
                        .map_err(|m| format!("bad --faults spec: {m}"))?,
                );
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if config.faults.is_none() {
        config.faults = FaultConfig::from_env();
    }
    config.quota = quota;
    Ok(config)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse `{s}`\n\n{USAGE}"))
}

fn main() -> ExitCode {
    let config = match parse_flags() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("jmatch-serve: {message}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("jmatch-serve: could not bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("jmatch-serve listening on {}", server.local_addr());
    server.wait_for_shutdown();
    let metrics = server.metrics();
    eprintln!(
        "jmatch-serve: shutting down — {} connections, {} frames, \
         {} calls, {} queries, {} streams, cache {}h/{}m/{}e, \
         {} capacity rejections, {} quota rejections, \
         {} connection rejections, {} cancelled, \
         {} panics, {} worker respawns, {} deadline exceeded, \
         {} slow consumers dropped",
        metrics.connections,
        metrics.frames,
        metrics.calls,
        metrics.queries,
        metrics.streams,
        metrics.cache.hits,
        metrics.cache.misses,
        metrics.cache.evictions,
        metrics.rejected_capacity,
        metrics.rejected_quota,
        metrics.rejected_connections,
        metrics.cancelled,
        metrics.panics,
        metrics.worker_respawns,
        metrics.deadline_exceeded,
        metrics.slow_consumer_disconnects,
    );
    server.shutdown();
    ExitCode::SUCCESS
}
