//! The plan evaluator: executes the query plans produced by
//! [`jmatch_core::lower`].
//!
//! Where the legacy tree-walker re-derives a solving order for every formula
//! at every call and clones a `HashMap` environment per emitted solution,
//! the evaluator runs a [`SolvedForm`]'s
//! goal over a flat frame of variable slots (`Vec<Option<Value>>`):
//!
//! * **bindings** are slot writes, undone by scope when a choice point is
//!   exhausted (the moral equivalent of a trail in a WAM-style machine);
//! * **conjunctions** follow the statically scheduled order of
//!   [`Goal::Seq`], falling back to run-time selection only for
//!   [`Goal::DynSeq`];
//! * **calls** resolve through the plan's precompiled dispatch indices
//!   instead of walking the supertype chain;
//! * **choice points** (disjunctions, constructor matches) are explored by
//!   enumerating each branch against the continuation, so deeper frames
//!   stack explicitly per invocation rather than per cloned environment.
//!
//! The observable behavior — values, bindings, enumeration order, and
//! failures — is kept identical to the tree-walker's; `tests/differential.rs`
//! runs every corpus program through both engines and asserts it.

use crate::{Bindings, Flow, Object, RtError, RtResult, Value};
use jmatch_core::bytecode::{BcBlock, BcBody, Const as BcConst, Instr, Pc, SInstr, UnifyMode};
use jmatch_core::intern::Sym;
use jmatch_core::lower::{
    BodyPlan, CallKind, CaseGuard, CaseTarget, ClassCheck, ClassRef, DispatchId, Goal, PExpr,
    PlanId, ProgramPlan, ReadyCheck, SlotId, SolvedForm, StmtPlan,
};
use jmatch_core::table::ClassTable;
use jmatch_syntax::ast::{BinOp, CmpOp, Expr, Formula, MethodBody, Type};
use std::sync::Arc;

/// A frame of variable slots.
pub(crate) type Frame = Vec<Option<Value>>;

/// The continuation invoked per solution; returns `Ok(true)` to keep
/// enumerating.
type Emit<'a> = &'a mut dyn FnMut(&mut Ev<'_, '_>, &mut Frame) -> RtResult<bool>;

/// The work budget of one evaluation: a shared step counter plus the
/// depth / step ceilings, so every entry point (the recursive evaluator and
/// the resumable [`crate::Solutions`] machine) honors the same
/// [`crate::Limits`].
///
/// A budget is either **private** (the sequential case: the whole
/// `max_steps` allowance is granted up front, so `step()` is a plain
/// compare) or **shared** (the OR-parallel case of [`crate::par`]: every
/// worker draws batches of steps from one [`SharedBudget`] pool, so the
/// configured ceiling bounds the *combined* work of all workers exactly
/// like it bounds a sequential run).
#[derive(Debug, Clone)]
pub(crate) struct Budget {
    /// Steps spent so far (solver recursion plus machine steps).
    pub(crate) steps: u64,
    /// Ceiling on `steps` (the configured [`crate::Limits::max_steps`];
    /// with a shared pool this is the pool's combined ceiling, kept here
    /// for error messages).
    pub(crate) max_steps: u64,
    /// Ceiling on solver nesting depth.
    pub(crate) max_depth: usize,
    /// Steps this budget may spend before drawing on the shared pool
    /// again. Equals `max_steps` for a private budget.
    granted: u64,
    /// The shared step pool, when this budget belongs to a parallel
    /// worker.
    shared: Option<Arc<SharedBudget>>,
    /// An external interrupt token (cancellation / request deadline),
    /// polled every [`INTERRUPT_POLL_MASK`]+1 steps so a stuck run can be
    /// stopped from outside without per-step atomic traffic.
    interrupt: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl Budget {
    pub(crate) fn new(max_depth: usize, max_steps: u64) -> Self {
        Budget {
            steps: 0,
            max_steps,
            max_depth,
            granted: max_steps,
            shared: None,
            interrupt: None,
        }
    }

    /// A budget that debits a shared step pool in batches: nothing is
    /// granted up front, so the first `step()` draws the first batch.
    pub(crate) fn new_shared(max_depth: usize, shared: Arc<SharedBudget>) -> Self {
        Budget {
            steps: 0,
            max_steps: shared.ceiling,
            max_depth,
            granted: 0,
            shared: Some(shared),
            interrupt: None,
        }
    }

    /// Attaches an external interrupt token; a fired token surfaces as
    /// [`RtError::interrupted`] at the next poll boundary.
    pub(crate) fn set_interrupt(&mut self, token: Option<Arc<std::sync::atomic::AtomicBool>>) {
        self.interrupt = token;
    }

    /// One unit of solver work; errors when the step ceiling is hit or an
    /// attached interrupt token has fired.
    pub(crate) fn step(&mut self) -> RtResult<()> {
        self.steps += 1;
        if self.steps & INTERRUPT_POLL_MASK == 0 {
            if let Some(token) = &self.interrupt {
                if token.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(RtError::interrupted());
                }
            }
        }
        if self.steps > self.granted {
            return self.refill();
        }
        Ok(())
    }

    /// Draws the next batch from the shared pool (or fails: a private
    /// budget that outruns its grant has hit the configured ceiling).
    fn refill(&mut self) -> RtResult<()> {
        if let Some(pool) = &self.shared {
            let got = pool.take(SHARED_STEP_BATCH);
            if got > 0 {
                self.granted += got;
                return Ok(());
            }
        }
        Err(RtError::limit(
            "steps",
            self.max_steps,
            "solver step budget exceeded",
        ))
    }

    /// Returns the unspent part of the current grant to the shared pool,
    /// so a worker going idle does not strand steps other workers need.
    /// No-op on private budgets.
    pub(crate) fn release_unused(&mut self) {
        if let Some(pool) = &self.shared {
            // `steps` can be one past the grant when the last refill failed.
            pool.give(self.granted.saturating_sub(self.steps));
            self.granted = self.granted.min(self.steps);
        }
    }
}

/// How many steps a parallel worker reserves from the shared pool per
/// refill. Small enough that a near-exhausted pool still spreads across
/// workers, large enough that the atomic is off the per-step hot path.
const SHARED_STEP_BATCH: u64 = 64;

/// Interrupt tokens are polled when `steps & MASK == 0` — every 256 steps,
/// matching the fuel quantum of [`crate::par`] workers, so cancellation
/// latency stays bounded without putting an atomic load on every step.
const INTERRUPT_POLL_MASK: u64 = 0xFF;

/// An atomic step pool shared by the workers of one parallel enumeration:
/// [`Budget::new_shared`] budgets debit it in [`SHARED_STEP_BATCH`]-sized
/// reservations, so the configured [`crate::Limits::max_steps`] ceiling
/// bounds the combined work of the whole pool.
#[derive(Debug)]
pub(crate) struct SharedBudget {
    remaining: std::sync::atomic::AtomicU64,
    /// The configured ceiling, kept for error messages.
    ceiling: u64,
}

impl SharedBudget {
    pub(crate) fn new(ceiling: u64) -> Self {
        SharedBudget {
            remaining: std::sync::atomic::AtomicU64::new(ceiling),
            ceiling,
        }
    }

    /// Takes up to `want` steps from the pool; returns how many were
    /// actually granted (0 when the pool is empty).
    pub(crate) fn take(&self, want: u64) -> u64 {
        use std::sync::atomic::Ordering;
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| {
                if r == 0 {
                    None
                } else {
                    Some(r - r.min(want))
                }
            })
            .map(|r| r.min(want))
            .unwrap_or(0)
    }

    /// Returns unspent steps to the pool.
    pub(crate) fn give(&self, n: u64) {
        if n > 0 {
            self.remaining
                .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Steps currently left in the pool (racy snapshot; exact only when no
    /// worker is drawing concurrently).
    pub(crate) fn remaining(&self) -> u64 {
        self.remaining.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The ceiling the pool was created with.
    pub(crate) fn ceiling(&self) -> u64 {
        self.ceiling
    }

    /// Resets the pool to `n` steps, clamped to the ceiling (the serve
    /// layer's per-tenant quota window refill, which discounts
    /// reservations still in flight so their later refunds cannot push
    /// the pool past its ceiling).
    pub(crate) fn refill_to(&self, n: u64) {
        self.remaining
            .store(n.min(self.ceiling), std::sync::atomic::Ordering::Relaxed);
    }
}

impl Default for Budget {
    /// Matches [`crate::Limits::default`]: see [`MAX_DEPTH`] for why the
    /// depth ceiling must stay well below native stack exhaustion.
    fn default() -> Self {
        Budget::new(MAX_DEPTH, u64::MAX)
    }
}

/// The plan-based execution engine.
#[derive(Debug, Clone)]
pub struct PlanInterp {
    plan: Arc<ProgramPlan>,
}

impl PlanInterp {
    /// Creates an engine over a compiled program plan.
    pub fn new(plan: Arc<ProgramPlan>) -> Self {
        PlanInterp { plan }
    }

    /// The compiled program plan.
    pub fn plan(&self) -> &Arc<ProgramPlan> {
        &self.plan
    }

    /// Invokes a named or class constructor of `class` in the forward mode.
    pub fn construct(&self, class: &str, ctor: &str, args: Vec<Value>) -> RtResult<Value> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).construct(class, ctor, args)
    }

    /// Calls a free-standing (top-level) method.
    pub fn call_free(&self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).call_free(name, args)
    }

    /// Calls an instance method in the forward mode.
    pub fn call_method(&self, receiver: &Value, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).call_method(receiver, name, args)
    }

    /// Enumerates the solutions of matching `value` against the named
    /// constructor `ctor` (the backward mode).
    pub fn deconstruct(&self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).deconstruct(value, ctor)
    }

    /// Tests whether `value` matches the named constructor `ctor`.
    pub fn matches_constructor(&self, value: &Value, ctor: &str) -> RtResult<bool> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).matches_constructor(value, ctor)
    }

    /// Deep equality, using equality constructors across implementations.
    pub fn values_equal(&self, a: &Value, b: &Value) -> RtResult<bool> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).values_equal(a, b)
    }

    /// Enumerates the solutions of an ad-hoc formula: the formula is lowered
    /// on the fly against the entry bindings (a standalone solved form) and
    /// run by the plan evaluator.
    pub fn solve(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        f: &Formula,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        let bound: Vec<&str> = env.keys().map(String::as_str).collect();
        let this_class = this.map(|t| t.class().unwrap_or(""));
        let form = jmatch_core::lower::lower_standalone(&self.plan, f, &bound, this_class);
        let mut fr: Frame = vec![None; form.frame.len()];
        for (name, v) in env {
            if let Some(s) = form.frame.slot_of(name) {
                fr[s as usize] = Some(v.clone());
            }
        }
        let mut budget = Budget::default();
        let mut ev = Ev::new(&self.plan, &mut budget);
        ev.solve_form(&mut fr, this, &form, &mut |_, fr| {
            let mut out = Bindings::new();
            for (i, v) in fr.iter().enumerate() {
                if let Some(v) = v {
                    out.insert(form.frame.name_of(i as SlotId).to_owned(), v.clone());
                }
            }
            Ok(emit(&out))
        })?;
        Ok(())
    }
}

/// One evaluation session: borrows the plan and a work budget, and tracks
/// the recursion guard.
pub(crate) struct Ev<'p, 'b> {
    plan: &'p ProgramPlan,
    table: &'p ClassTable,
    depth: usize,
    budget: &'b mut Budget,
}

thread_local! {
    /// Recycled activation frames and register files. Thread-local rather
    /// than per-session: the API constructs a fresh [`Ev`] per call, so
    /// session-owned pools would start empty on every iteration of a hot
    /// caller loop and pay one heap allocation per call.
    static POOLS: std::cell::RefCell<(Vec<Frame>, Vec<Vec<Value>>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Default bound on the solver's nesting depth (goal recursion plus nested
/// invocations). Each level costs native stack, so the limit must trip well
/// before the stack itself is exhausted — ~0.5KB per level against the 2MB
/// stack of a Rust test thread puts exhaustion around depth 3–5k; 1_000
/// leaves a comfortable margin while staying far above what any corpus
/// program reaches.
pub(crate) const MAX_DEPTH: usize = 1_000;

impl<'p, 'b> Ev<'p, 'b> {
    /// Creates an evaluation session over a plan, drawing on `budget`.
    pub(crate) fn new(plan: &'p ProgramPlan, budget: &'b mut Budget) -> Self {
        Ev {
            plan,
            table: plan.table(),
            depth: 0,
            budget,
        }
    }

    /// A zeroed frame of `n` slots, reusing a recycled allocation when one
    /// is available.
    fn take_frame(&mut self, n: usize) -> Frame {
        match POOLS.with(|p| p.borrow_mut().0.pop()) {
            Some(mut f) => {
                f.clear();
                f.resize(n, None);
                f
            }
            None => vec![None; n],
        }
    }

    /// Returns a finished activation frame to the pool.
    fn recycle_frame(&mut self, mut f: Frame) {
        POOLS.with(|p| {
            let pool = &mut p.borrow_mut().0;
            if pool.len() < 64 {
                f.clear();
                pool.push(f);
            }
        });
    }

    /// A null-filled register file of `n` registers, reusing a recycled
    /// allocation when one is available.
    fn take_regs(&mut self, n: usize) -> Vec<Value> {
        match POOLS.with(|p| p.borrow_mut().1.pop()) {
            Some(mut r) => {
                r.clear();
                r.resize(n, Value::Null);
                r
            }
            None => vec![Value::Null; n],
        }
    }

    /// Returns a finished register file to the pool.
    fn recycle_regs(&mut self, mut r: Vec<Value>) {
        POOLS.with(|p| {
            let pool = &mut p.borrow_mut().1;
            if pool.len() < 64 {
                r.clear();
                pool.push(r);
            }
        });
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    pub(crate) fn construct(
        &mut self,
        class: &str,
        ctor: &str,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        let declared = self
            .plan
            .lookup_declared(class, ctor)
            .or_else(|| self.plan.class_ctor(class))
            .ok_or_else(|| RtError::method_not_found(class, ctor))?;
        // Resolve to the concrete implementation declared on `class` itself
        // if the interface only declares the signature.
        let pid = if matches!(self.plan.method(declared).body, BodyPlan::Absent) {
            self.plan
                .lookup_impl(class, ctor)
                .ok_or_else(|| RtError::new(format!("`{class}.{ctor}` has no implementation")))?
        } else {
            declared
        };
        self.run_forward(pid, None, args)
    }

    pub(crate) fn call_free(&mut self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let pid = self
            .plan
            .lookup_free(name)
            .ok_or_else(|| RtError::method_not_found("<toplevel>", name))?;
        self.run_forward(pid, None, args)
    }

    pub(crate) fn call_method(
        &mut self,
        receiver: &Value,
        name: &str,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        self.dispatch_method(receiver, name, None, args)
    }

    /// Forward call dispatched on the receiver's runtime class, through the
    /// call site's dispatch table when one was lowered.
    fn dispatch_method(
        &mut self,
        receiver: &Value,
        name: &str,
        dispatch: Option<DispatchId>,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        let Value::Obj(o) = receiver else {
            return Err(RtError::new("receiver is not an object"));
        };
        let pid = self
            .resolve_dispatch(dispatch, o, name)
            .ok_or_else(|| RtError::method_not_found(o.class(), name))?;
        self.run_forward(pid, Some(receiver.clone()), args)
    }

    pub(crate) fn deconstruct(&mut self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        let class = value
            .class()
            .ok_or_else(|| RtError::new("can only deconstruct objects"))?
            .to_owned();
        let pid = self
            .plan
            .lookup_impl(&class, ctor)
            .ok_or_else(|| RtError::method_not_found(&class, ctor))?;
        if let Some(rows) = fast_deconstruct(self.plan, value, pid) {
            return Ok(rows);
        }
        let plan = self.plan;
        let table = self.table;
        let params = &plan.method(pid).info.decl.params;
        let mut solutions = Vec::new();
        self.each_constructor_solution(value, pid, &mut |_, row| {
            // Apply the declared parameter types as patterns, like matching
            // `T name` against each solution value.
            for (p, v) in params.iter().zip(row.iter()) {
                if let Type::Named(t) = &p.ty {
                    if let Some(class) = v.class() {
                        if !table.is_subtype(class, t) {
                            return Ok(true);
                        }
                    }
                }
            }
            solutions.push(row.to_vec());
            Ok(true)
        })?;
        Ok(solutions)
    }

    pub(crate) fn matches_constructor(&mut self, value: &Value, ctor: &str) -> RtResult<bool> {
        Ok(!self.deconstruct(value, ctor)?.is_empty() || {
            // Zero-parameter constructors produce an empty solution row set
            // only when they fail; re-check via a direct predicate solve.
            let class = value.class().unwrap_or_default().to_owned();
            if let Some(pid) = self.plan.lookup_impl(&class, ctor) {
                if self.plan.method(pid).info.decl.params.is_empty() {
                    let mut found = false;
                    self.each_constructor_solution(value, pid, &mut |_, _| {
                        found = true;
                        Ok(false)
                    })?;
                    found
                } else {
                    false
                }
            } else {
                false
            }
        })
    }

    /// The dense type index of an object's class in *this* plan's table.
    /// The common case is one pointer compare (the object's layout is the
    /// table's own); objects built by a different program resolve by name.
    pub(crate) fn obj_index(&self, o: &Object) -> Option<u32> {
        self.table.index_of_layout(o.layout())
    }

    /// Whether the object's layout is this plan's own. Interned symbols are
    /// only meaningful against the interner that produced them, so symbol
    /// reads must never touch a foreign program's layout.
    fn native_layout(&self, o: &Object) -> bool {
        let i = o.layout().type_index();
        (i as usize) < self.table.num_types() && Arc::ptr_eq(self.table.layout_at(i), o.layout())
    }

    /// Field read on an object: the interned-symbol slot scan for native
    /// layouts, the string-keyed lookup for objects built by a different
    /// program (whose interner assigns different symbols).
    fn obj_field<'f>(&self, o: &'f Object, sym: Option<Sym>, name: &str) -> Option<&'f Value> {
        if self.native_layout(o) {
            sym.and_then(|s| o.get_sym(s))
        } else {
            o.get(name)
        }
    }

    /// Resolves a dynamically dispatched `name` on an object through its
    /// dispatch table (one array load), falling back to the string-keyed
    /// walk for names lowered without a table or foreign-class objects.
    pub(crate) fn resolve_dispatch(
        &self,
        dispatch: Option<DispatchId>,
        o: &Object,
        name: &str,
    ) -> Option<PlanId> {
        if let (Some(d), Some(i)) = (dispatch, self.obj_index(o)) {
            return self.plan.dispatch_at(d, i);
        }
        self.plan.lookup_impl(o.class(), name)
    }

    /// Like [`Ev::resolve_dispatch`] with the class-constructor fallback of
    /// constructor-pattern positions (`lookup_impl(..).or(class_ctor(..))`).
    pub(crate) fn resolve_dispatch_or_ctor(
        &self,
        dispatch: Option<DispatchId>,
        o: &Object,
        name: &str,
    ) -> Option<PlanId> {
        if let (Some(d), Some(i)) = (dispatch, self.obj_index(o)) {
            return self
                .plan
                .dispatch_at(d, i)
                .or_else(|| self.plan.class_ctor_at(i));
        }
        self.plan
            .lookup_impl(o.class(), name)
            .or_else(|| self.plan.class_ctor(o.class()))
    }

    /// The statically classed side of a constructor-pattern resolution:
    /// `cr.match_pid` when the class is this table's, the string walk for a
    /// foreign plan's class name.
    pub(crate) fn resolve_static_match(&self, cr: &ClassRef, name: &str) -> Option<PlanId> {
        cr.match_pid.or_else(|| {
            self.plan
                .lookup_impl(&cr.name, name)
                .or_else(|| self.plan.class_ctor(&cr.name))
        })
    }

    pub(crate) fn values_equal(&mut self, a: &Value, b: &Value) -> RtResult<bool> {
        match (a, b) {
            (Value::Obj(oa), Value::Obj(ob)) => {
                if Arc::ptr_eq(oa, ob) {
                    return Ok(true);
                }
                if Arc::ptr_eq(oa.layout(), ob.layout()) {
                    // Shared layout (same program): slot-wise comparison.
                    for (va, vb) in oa.fields().iter().zip(ob.fields()) {
                        if !self.values_equal(va, vb)? {
                            return Ok(false);
                        }
                    }
                    return Ok(true);
                }
                if oa.class() == ob.class() {
                    // Same-named class from a different program: its layout
                    // may order fields differently, so align by name.
                    if oa.fields().len() != ob.fields().len() {
                        return Ok(false);
                    }
                    for (name, va) in oa.layout().field_names().iter().zip(oa.fields()) {
                        let Some(vb) = ob.get(name) else {
                            return Ok(false);
                        };
                        if !self.values_equal(va, vb)? {
                            return Ok(false);
                        }
                    }
                    return Ok(true);
                }
                // Different classes: try an equality constructor on either
                // side, in its `this`-and-parameter-bound solved form. The
                // `equals` implementation resolves through its dispatch
                // table.
                let plan = self.plan;
                let equals_dispatch = plan.equals_dispatch();
                for (lhs, rhs) in [(a, b), (b, a)] {
                    let Value::Obj(o) = lhs else { continue };
                    if let Some(pid) = self.resolve_dispatch(equals_dispatch, o, "equals") {
                        if let BodyPlan::Formula {
                            equals_bound: Some(form),
                            ..
                        } = &plan.method(pid).body
                        {
                            let mut fr: Frame = vec![None; form.frame.len()];
                            if let Some(&ps) = form.param_slots.first() {
                                fr[ps as usize] = Some(rhs.clone());
                            }
                            let mut found = false;
                            self.solve_form(&mut fr, Some(lhs), form, &mut |_, _| {
                                found = true;
                                Ok(false)
                            })?;
                            return Ok(found);
                        }
                    }
                }
                Ok(false)
            }
            _ => Ok(a == b),
        }
    }

    // ------------------------------------------------------------------
    // Forward execution
    // ------------------------------------------------------------------

    pub(crate) fn run_forward(
        &mut self,
        pid: PlanId,
        this: Option<Value>,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        let mp = {
            let plan = self.plan;
            plan.method(pid)
        };
        if args.len() != mp.info.decl.params.len() {
            return Err(RtError::arity_mismatch(
                &mp.info.qualified_name(),
                mp.info.decl.params.len(),
                args.len(),
            ));
        }
        match &mp.body {
            BodyPlan::Absent => Err(RtError::new(format!(
                "{} has no implementation",
                mp.info.qualified_name()
            ))),
            BodyPlan::Formula { forward, .. } => {
                if let Some(fc) = &mp.fast_ctor {
                    // Projection constructor: every field is a vetted
                    // expression over the (ground) arguments, so the layout
                    // fills directly — no frame, no solver.
                    let layout = mp.owner_layout.as_ref().ok_or_else(|| {
                        RtError::new(format!("unknown owner type {}", mp.info.owner))
                    })?;
                    let fields: Vec<Value> = fc
                        .fields
                        .iter()
                        .map(|e| fast_ctor_field(e, &fc.params, &args))
                        .collect::<RtResult<_>>()?;
                    return Ok(Value::Obj(Arc::new(Object::new(
                        Arc::clone(layout),
                        fields,
                    ))));
                }
                let mut fr = self.take_frame(forward.frame.len());
                for (&s, v) in forward.param_slots.iter().zip(args) {
                    fr[s as usize] = Some(v);
                }
                if mp.info.constructs_owner() {
                    // Construction: the fields of the new object are unknowns
                    // solved by the body, read off into the owner layout's
                    // slots (field_slots is in layout order by construction).
                    let layout = mp.owner_layout.as_ref().ok_or_else(|| {
                        RtError::new(format!("unknown owner type {}", mp.info.owner))
                    })?;
                    debug_assert_eq!(layout.num_fields(), forward.field_slots.len());
                    let field_slots = &forward.field_slots;
                    let result_slot = forward.result_slot;
                    let mut result = None;
                    self.solve_form(&mut fr, this.as_ref(), forward, &mut |_, fr| {
                        // A `result = ...` equation (as in Figure 1) takes
                        // precedence over field solving.
                        result = Some(fr[result_slot as usize].clone().unwrap_or_else(|| {
                            let fields: Vec<Value> = field_slots
                                .iter()
                                .map(|(_, s)| fr[*s as usize].clone().unwrap_or(Value::Null))
                                .collect();
                            Value::Obj(Arc::new(Object::new(Arc::clone(layout), fields)))
                        }));
                        Ok(false)
                    })?;
                    self.recycle_frame(fr);
                    result.ok_or_else(|| {
                        RtError::new(format!("{} failed to match", mp.info.qualified_name()))
                    })
                } else {
                    // Ordinary method: solve for `result` (boolean methods
                    // default to "is the body satisfiable").
                    let result_slot = forward.result_slot;
                    let mut result = None;
                    let mut any = false;
                    self.solve_form(&mut fr, this.as_ref(), forward, &mut |_, fr| {
                        any = true;
                        result = fr[result_slot as usize].clone();
                        Ok(false)
                    })?;
                    self.recycle_frame(fr);
                    match (&mp.info.decl.return_type, result) {
                        (Some(Type::Boolean), r) => Ok(r.unwrap_or(Value::Bool(any))),
                        (_, Some(r)) => Ok(r),
                        (Some(Type::Void), None) => Ok(Value::Null),
                        (_, None) if any => Ok(Value::Bool(true)),
                        (_, None) => Err(RtError::new(format!(
                            "{} produced no result",
                            mp.info.qualified_name()
                        ))),
                    }
                }
            }
            BodyPlan::Block(bp) => {
                let mut fr = self.take_frame(bp.frame.len());
                for (&s, v) in bp.param_slots.iter().zip(args) {
                    fr[s as usize] = Some(v);
                }
                let flow = match &bp.bc {
                    Some(bc) => self.exec_bc_block(&mut fr, this.as_ref(), bc)?,
                    None => self.exec_block(&mut fr, this.as_ref(), &bp.stmts)?,
                };
                self.recycle_frame(fr);
                match flow {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Value::Null),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Constructor matching (backward / iterative modes)
    // ------------------------------------------------------------------

    /// Solves `pid`'s matching plan against `value` and feeds each
    /// solution's parameter-value row to `each`.
    fn each_constructor_solution(
        &mut self,
        value: &Value,
        pid: PlanId,
        each: &mut dyn FnMut(&mut Ev<'_, '_>, &[Value]) -> RtResult<bool>,
    ) -> RtResult<()> {
        let plan = self.plan;
        let mp = plan.method(pid);
        let BodyPlan::Formula { matching, .. } = &mp.body else {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "backward (pattern-matching)",
            ));
        };
        let param_slots = &matching.param_slots;
        let mut fr = self.take_frame(matching.frame.len());
        self.solve_form(&mut fr, Some(value), matching, &mut |ev, fr| {
            let mut row = Vec::with_capacity(param_slots.len());
            for &s in param_slots {
                match &fr[s as usize] {
                    Some(v) => row.push(v.clone()),
                    // A parameter the solution left unbound: skip it, like
                    // the tree-walker.
                    None => return Ok(true),
                }
            }
            each(ev, &row)
        })?;
        self.recycle_frame(fr);
        Ok(())
    }

    /// Matches `value` against the constructor plan `pid` with argument
    /// patterns in the caller's frame — the plan-level counterpart of the
    /// walker's `match_constructor`.
    fn match_constructor(
        &mut self,
        caller: &mut Frame,
        value: &Value,
        pid: PlanId,
        args: &[PExpr],
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        let plan = self.plan;
        let mp = plan.method(pid);
        let BodyPlan::Formula { matching, .. } = &mp.body else {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "backward (pattern-matching)",
            ));
        };
        let param_slots = &matching.param_slots;
        let mut fr = self.take_frame(matching.frame.len());
        let keep = self.solve_form(&mut fr, Some(value), matching, &mut |ev, fr| {
            let mut row = Vec::with_capacity(param_slots.len());
            for &s in param_slots {
                match &fr[s as usize] {
                    Some(v) => row.push(v.clone()),
                    None => return Ok(true),
                }
            }
            ev.match_args_then(caller, args, &row, emit)
        })?;
        self.recycle_frame(fr);
        Ok(keep)
    }

    /// Matches argument patterns against a solution row (first solution per
    /// pattern, accumulating bindings left to right), runs `k`, and lets
    /// the nested `bind_then` scopes undo the slot writes on the way out —
    /// trail-style, with no whole-frame clone. Pattern-match errors skip
    /// the row, like the tree-walker; errors raised by `k` propagate.
    fn match_args_then(
        &mut self,
        fr: &mut Frame,
        args: &[PExpr],
        values: &[Value],
        k: Emit<'_>,
    ) -> RtResult<bool> {
        self.match_args_from(fr, args, values, 0, k)
    }

    fn match_args_from(
        &mut self,
        fr: &mut Frame,
        args: &[PExpr],
        values: &[Value],
        i: usize,
        k: Emit<'_>,
    ) -> RtResult<bool> {
        let Some(v) = values.get(i) else {
            return k(self, fr);
        };
        let Some(pat) = args.get(i) else {
            return self.match_args_from(fr, args, values, i + 1, k);
        };
        let mut entered_rest = false;
        let mut keep_going = true;
        let r = self.match_pat(fr, None, pat, v, &mut |ev, fr| {
            entered_rest = true;
            keep_going = ev.match_args_from(fr, args, values, i + 1, &mut *k)?;
            // First solution per pattern only.
            Ok(false)
        });
        match r {
            // An error from matching this pattern itself skips the row; an
            // error from deeper work (the rest of the row or `k`) surfaces.
            Err(e) if entered_rest => Err(e),
            Err(_) => Ok(true),
            Ok(_) if !entered_rest => Ok(true),
            Ok(_) => Ok(keep_going),
        }
    }

    // ------------------------------------------------------------------
    // Bytecode execution (threaded formula code)
    // ------------------------------------------------------------------

    /// Enumerates the solutions of a solved form: through its threaded
    /// bytecode when the plan's pass 4 emitted one, through the goal tree
    /// otherwise. Both produce identical solutions in identical order.
    ///
    /// Forms the determinism analysis annotated `det` commit: after the
    /// first solution the remaining search is abandoned, which the
    /// analysis proved can neither emit nor error — so the observable
    /// transcript is identical to the full (oracle) search.
    pub(crate) fn solve_form(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        form: &SolvedForm,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        if form.det {
            let mut emitted = false;
            let mut keep = true;
            let mut det_emit = |ev: &mut Ev<'_, '_>, fr: &mut Frame| -> RtResult<bool> {
                emitted = true;
                keep = emit(ev, fr)?;
                Ok(false) // commit: the analysis proved no further solutions
            };
            match &form.bc {
                Some(bc) => self.solve_bc(fr, this, bc, bc.entry, &mut det_emit)?,
                None => self.solve(fr, this, &form.goal, &mut det_emit)?,
            };
            return Ok(if emitted { keep } else { true });
        }
        match &form.bc {
            Some(bc) => self.solve_bc(fr, this, bc, bc.entry, emit),
            None => self.solve(fr, this, &form.goal, emit),
        }
    }

    /// Runs threaded bytecode from `pc`: one budget step and one depth
    /// level per entry. Re-entered at continuation boundaries (choice
    /// alternatives, pattern-match and callee continuations); deterministic
    /// instructions thread through `next` pcs inline without recursing.
    pub(crate) fn solve_bc(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        bc: &BcBody,
        pc: Pc,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        self.budget.step()?;
        self.depth += 1;
        if self.depth > self.budget.max_depth {
            self.depth -= 1;
            return Err(RtError::limit(
                "depth",
                self.budget.max_depth as u64,
                "solver recursion limit exceeded",
            ));
        }
        let r = self.solve_bc_inner(fr, this, bc, pc, emit);
        self.depth -= 1;
        r
    }

    fn solve_bc_inner(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        bc: &BcBody,
        mut pc: Pc,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        // Right-to-left emission makes every `next` / alternative pc
        // strictly smaller than the pc of the instruction holding it, so
        // this loop always terminates.
        loop {
            match &bc.instrs[pc as usize] {
                Instr::Emit => return emit(self, fr),
                Instr::Fail => return Ok(true),
                Instr::Choice(alts) => {
                    for &alt in alts.iter() {
                        if !self.solve_bc(fr, this, bc, alt, &mut *emit)? {
                            return Ok(false);
                        }
                    }
                    return Ok(true);
                }
                Instr::Compare { op, lhs, rhs, next } => {
                    let a = self.eval(fr, this, &bc.exprs[*lhs as usize])?;
                    let b = self.eval(fr, this, &bc.exprs[*rhs as usize])?;
                    let (x, y) = match (a.as_int(), b.as_int()) {
                        (Some(x), Some(y)) => (x, y),
                        _ => {
                            if *op == CmpOp::Ne {
                                if !self.values_equal(&a, &b)? {
                                    pc = *next;
                                    continue;
                                }
                                return Ok(true);
                            }
                            return Err(RtError::new("ordering comparison on non-integers"));
                        }
                    };
                    let holds = match op {
                        CmpOp::Le => x <= y,
                        CmpOp::Lt => x < y,
                        CmpOp::Ge => x >= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ne => x != y,
                        CmpOp::Eq => x == y,
                    };
                    if holds {
                        pc = *next;
                        continue;
                    }
                    return Ok(true);
                }
                Instr::Test { expr, next } => {
                    let v = self.eval(fr, this, &bc.exprs[*expr as usize])?;
                    if v.as_bool() == Some(true) {
                        pc = *next;
                        continue;
                    }
                    return Ok(true);
                }
                Instr::Unify {
                    lhs,
                    rhs,
                    mode,
                    next,
                } => {
                    let l = &bc.exprs[*lhs as usize];
                    let r = &bc.exprs[*rhs as usize];
                    let next = *next;
                    let mode = match mode {
                        UnifyMode::Dynamic => {
                            match (self.ground(fr, this, l), self.ground(fr, this, r)) {
                                (true, true) => UnifyMode::EvalEval,
                                (true, false) => UnifyMode::EvalMatch,
                                (false, true) => UnifyMode::MatchEval,
                                (false, false) => {
                                    return Err(RtError::new(format!(
                                        "equation with unknowns on both sides is not solvable: \
                                         {l:?} = {r:?}"
                                    )))
                                }
                            }
                        }
                        m => *m,
                    };
                    match mode {
                        UnifyMode::EvalEval => {
                            let a = self.eval(fr, this, l)?;
                            let b = self.eval(fr, this, r)?;
                            if self.values_equal(&a, &b)? {
                                pc = next;
                                continue;
                            }
                            return Ok(true);
                        }
                        UnifyMode::EvalMatch => {
                            let v = self.eval(fr, this, l)?;
                            return self.match_pat(fr, this, r, &v, &mut |ev, fr| {
                                ev.solve_bc(fr, this, bc, next, &mut *emit)
                            });
                        }
                        UnifyMode::MatchEval => {
                            let v = self.eval(fr, this, r)?;
                            return self.match_pat(fr, this, l, &v, &mut |ev, fr| {
                                ev.solve_bc(fr, this, bc, next, &mut *emit)
                            });
                        }
                        UnifyMode::Dynamic => unreachable!("dynamic mode resolved above"),
                    }
                }
                Instr::Invoke {
                    receiver,
                    name,
                    args_start,
                    args_len,
                    dispatch,
                    next,
                } => {
                    let next = *next;
                    let subject: Value = match receiver {
                        Some(r) => {
                            let r = &bc.exprs[*r as usize];
                            if self.ground(fr, this, r) {
                                self.eval(fr, this, r)?
                            } else {
                                return Err(RtError::new("predicate receiver is not ground"));
                            }
                        }
                        None => this
                            .cloned()
                            .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    };
                    match &subject {
                        Value::Obj(o) => {
                            let name = &bc.names[*name as usize];
                            let Some(pid) = self.resolve_dispatch(*dispatch, o, name) else {
                                return Err(RtError::method_not_found(o.class(), name));
                            };
                            let args = bc.args(*args_start, *args_len);
                            return self.match_constructor(
                                fr,
                                &subject,
                                pid,
                                args,
                                &mut |ev, fr| ev.solve_bc(fr, this, bc, next, &mut *emit),
                            );
                        }
                        Value::Bool(true) => {
                            pc = next;
                            continue;
                        }
                        Value::Bool(false) => return Ok(true),
                        other => {
                            return Err(RtError::new(format!(
                                "cannot use `{other}` as a predicate receiver"
                            )))
                        }
                    }
                }
                Instr::Not { goal, next } => {
                    let mut found = false;
                    self.solve(fr, this, &bc.goals[*goal as usize], &mut |_, _| {
                        found = true;
                        Ok(false)
                    })?;
                    if !found {
                        pc = *next;
                        continue;
                    }
                    return Ok(true);
                }
                Instr::DynSeq { goal, next } => {
                    let next = *next;
                    return self.solve(fr, this, &bc.goals[*goal as usize], &mut |ev, fr| {
                        ev.solve_bc(fr, this, bc, next, &mut *emit)
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Goal solving
    // ------------------------------------------------------------------

    /// Enumerates the solutions of a goal. Returns `Ok(false)` when the
    /// continuation asked to stop.
    pub(crate) fn solve(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        g: &Goal,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        self.budget.step()?;
        self.depth += 1;
        if self.depth > self.budget.max_depth {
            self.depth -= 1;
            return Err(RtError::limit(
                "depth",
                self.budget.max_depth as u64,
                "solver recursion limit exceeded",
            ));
        }
        let r = self.solve_inner(fr, this, g, emit);
        self.depth -= 1;
        r
    }

    fn solve_inner(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        g: &Goal,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        match g {
            Goal::True | Goal::Trivial => emit(self, fr),
            Goal::Fail => Ok(true),
            Goal::Seq(goals) => self.solve_seq(fr, this, goals, emit),
            Goal::DynSeq(items) => {
                let remaining: Vec<usize> = (0..items.len()).collect();
                self.solve_dynseq(fr, this, items, &remaining, emit)
            }
            Goal::Any(branches) => {
                for b in branches {
                    if !self.solve(fr, this, b, emit)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Goal::Not(inner) => {
                let mut found = false;
                self.solve(fr, this, inner, &mut |_, _| {
                    found = true;
                    Ok(false)
                })?;
                if !found {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
            Goal::Unify(lhs, rhs) => {
                let lg = self.ground(fr, this, lhs);
                let rg = self.ground(fr, this, rhs);
                match (lg, rg) {
                    (true, true) => {
                        let a = self.eval(fr, this, lhs)?;
                        let b = self.eval(fr, this, rhs)?;
                        if self.values_equal(&a, &b)? {
                            emit(self, fr)
                        } else {
                            Ok(true)
                        }
                    }
                    (true, false) => {
                        let v = self.eval(fr, this, lhs)?;
                        self.match_pat(fr, this, rhs, &v, emit)
                    }
                    (false, true) => {
                        let v = self.eval(fr, this, rhs)?;
                        self.match_pat(fr, this, lhs, &v, emit)
                    }
                    (false, false) => Err(RtError::new(format!(
                        "equation with unknowns on both sides is not solvable: {lhs:?} = {rhs:?}"
                    ))),
                }
            }
            Goal::Compare(op, lhs, rhs) => {
                let a = self.eval(fr, this, lhs)?;
                let b = self.eval(fr, this, rhs)?;
                let (x, y) = match (a.as_int(), b.as_int()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        if *op == CmpOp::Ne {
                            if !self.values_equal(&a, &b)? {
                                return emit(self, fr);
                            }
                            return Ok(true);
                        }
                        return Err(RtError::new("ordering comparison on non-integers"));
                    }
                };
                let holds = match op {
                    CmpOp::Le => x <= y,
                    CmpOp::Lt => x < y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ne => x != y,
                    CmpOp::Eq => x == y,
                };
                if holds {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
            Goal::Invoke {
                receiver,
                name,
                args,
                dispatch,
            } => {
                let subject: Value = match receiver {
                    Some(r) if self.ground(fr, this, r) => self.eval(fr, this, r)?,
                    None => this
                        .cloned()
                        .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    Some(_) => {
                        return Err(RtError::new("predicate receiver is not ground"));
                    }
                };
                match &subject {
                    Value::Obj(o) => {
                        let Some(pid) = self.resolve_dispatch(*dispatch, o, name) else {
                            return Err(RtError::method_not_found(o.class(), name));
                        };
                        self.match_constructor(fr, &subject, pid, args, emit)
                    }
                    Value::Bool(b) => {
                        if *b {
                            emit(self, fr)
                        } else {
                            Ok(true)
                        }
                    }
                    other => Err(RtError::new(format!(
                        "cannot use `{other}` as a predicate receiver"
                    ))),
                }
            }
            Goal::Test(e) => {
                let v = self.eval(fr, this, e)?;
                if v.as_bool() == Some(true) {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn solve_seq(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        goals: &[Goal],
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        match goals.split_first() {
            None => emit(self, fr),
            Some((g, rest)) => self.solve(fr, this, g, &mut |ev, fr| {
                ev.solve_seq(fr, this, rest, emit)
            }),
        }
    }

    fn solve_dynseq(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        items: &[(ReadyCheck, Goal)],
        remaining: &[usize],
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        let Some(&chosen) = remaining
            .iter()
            .find(|&&i| self.check_ready(fr, this, &items[i].0))
        else {
            if remaining.is_empty() {
                return emit(self, fr);
            }
            return Err(RtError::new(
                "formula is not solvable: no conjunct can run with the current bindings",
            ));
        };
        let rest: Vec<usize> = remaining.iter().copied().filter(|&i| i != chosen).collect();
        self.solve(fr, this, &items[chosen].1, &mut |ev, fr| {
            ev.solve_dynseq(fr, this, items, &rest, emit)
        })
    }

    pub(crate) fn check_ready(&self, fr: &Frame, this: Option<&Value>, c: &ReadyCheck) -> bool {
        match c {
            ReadyCheck::Always => true,
            ReadyCheck::Never => false,
            ReadyCheck::Ground(e) => self.ground(fr, this, e),
            ReadyCheck::EitherGround(a, b) => self.ground(fr, this, a) || self.ground(fr, this, b),
            ReadyCheck::BothGround(a, b) => self.ground(fr, this, a) && self.ground(fr, this, b),
            ReadyCheck::All(cs) => cs.iter().all(|c| self.check_ready(fr, this, c)),
        }
    }

    // ------------------------------------------------------------------
    // Pattern matching
    // ------------------------------------------------------------------

    /// Whether a declaration pattern's class restriction admits `value`
    /// (non-objects are unrestricted, like the old string-keyed check).
    pub(crate) fn class_admits(&self, ty: &Type, check: &ClassCheck, value: &Value) -> bool {
        match check {
            ClassCheck::Any => true,
            ClassCheck::Subtype(i) => match value {
                Value::Obj(o) => match self.obj_index(o) {
                    Some(vi) => self.table.is_subtype_idx(vi, *i),
                    None => self
                        .table
                        .is_subtype(o.class(), self.table.layout_at(*i).name()),
                },
                _ => true,
            },
            ClassCheck::Dynamic => match (ty, value.class()) {
                (Type::Named(t), Some(class)) => self.table.is_subtype(class, t),
                _ => true,
            },
        }
    }

    /// Binds a slot around the continuation, restoring the old value after.
    fn bind_then(
        &mut self,
        fr: &mut Frame,
        slot: SlotId,
        value: Value,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        let old = fr[slot as usize].replace(value);
        let r = emit(self, fr);
        fr[slot as usize] = old;
        r
    }

    pub(crate) fn match_pat(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        pat: &PExpr,
        value: &Value,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        match pat {
            PExpr::Wildcard => emit(self, fr),
            PExpr::Decl(ty, slot, check) => {
                if !self.class_admits(ty, check, value) {
                    return Ok(true);
                }
                match slot {
                    Some(s) => self.bind_then(fr, *s, value.clone(), emit),
                    None => emit(self, fr),
                }
            }
            PExpr::Name { slot, .. } => match fr[*slot as usize].clone() {
                Some(bound) => {
                    if self.values_equal(&bound, value)? {
                        emit(self, fr)
                    } else {
                        Ok(true)
                    }
                }
                None => self.bind_then(fr, *slot, value.clone(), emit),
            },
            PExpr::Result(slot) => match fr[*slot as usize].clone() {
                Some(bound) => {
                    if self.values_equal(&bound, value)? {
                        emit(self, fr)
                    } else {
                        Ok(true)
                    }
                }
                None => self.bind_then(fr, *slot, value.clone(), emit),
            },
            PExpr::As(a, b) => self.match_pat(fr, this, a, value, &mut |ev, fr| {
                ev.match_pat(fr, this, b, value, emit)
            }),
            PExpr::OrPat(a, b) => {
                if !self.match_pat(fr, this, a, value, emit)? {
                    return Ok(false);
                }
                self.match_pat(fr, this, b, value, emit)
            }
            PExpr::Where(p, goal) => self.match_pat(fr, this, p, value, &mut |ev, fr| {
                ev.solve(fr, this, goal, emit)
            }),
            PExpr::Call {
                receiver,
                name,
                args,
                kind,
                dispatch,
            } => {
                // Constructor pattern: dispatch on the matched value's class
                // (or the statically named class), through the resolutions
                // precomputed at lowering time.
                match (kind, receiver) {
                    (CallKind::StaticConstruct(cr), _) | (CallKind::ClassCtor(cr), None) => {
                        let Some(pid) = self.resolve_static_match(cr, name) else {
                            return Err(RtError::method_not_found(&cr.name, name));
                        };
                        // If the runtime class differs and an equality
                        // constructor exists, convert first.
                        if let Some(vclass) = value.class() {
                            if !self.table.is_subtype(vclass, &cr.name) {
                                if let Some(converted) = self.convert_via_equals(&cr.name, value)? {
                                    return self.match_constructor(fr, &converted, pid, args, emit);
                                }
                                return Ok(true);
                            }
                        }
                        self.match_constructor(fr, value, pid, args, emit)
                    }
                    _ => {
                        // Dynamic: the value's own class (trivially a
                        // subtype of itself, so no conversion applies).
                        let pid = match value {
                            Value::Obj(o) => self.resolve_dispatch_or_ctor(*dispatch, o, name),
                            _ => None,
                        };
                        let Some(pid) = pid else {
                            return Err(RtError::method_not_found(
                                value.class().unwrap_or_default(),
                                name,
                            ));
                        };
                        self.match_constructor(fr, value, pid, args, emit)
                    }
                }
            }
            PExpr::Binary(op, a, b) => {
                // Invertible integer arithmetic: exactly one non-ground side.
                let Some(target) = value.as_int() else {
                    return Ok(true);
                };
                let a_ground = self.ground(fr, this, a);
                let b_ground = self.ground(fr, this, b);
                match (op, a_ground, b_ground) {
                    (_, true, true) => {
                        let v = self.eval(fr, this, pat)?;
                        if self.values_equal(&v, value)? {
                            emit(self, fr)
                        } else {
                            Ok(true)
                        }
                    }
                    (BinOp::Add, true, false) => {
                        let av = self.eval(fr, this, a)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, b, &Value::Int(target - av), emit)
                    }
                    (BinOp::Add, false, true) => {
                        let bv = self.eval(fr, this, b)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, a, &Value::Int(target - bv), emit)
                    }
                    (BinOp::Sub, false, true) => {
                        let bv = self.eval(fr, this, b)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, a, &Value::Int(target + bv), emit)
                    }
                    (BinOp::Sub, true, false) => {
                        let av = self.eval(fr, this, a)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, b, &Value::Int(av - target), emit)
                    }
                    _ => Err(RtError::new(
                        "cannot invert this arithmetic pattern at run time",
                    )),
                }
            }
            PExpr::Neg(a) => {
                let Some(target) = value.as_int() else {
                    return Ok(true);
                };
                self.match_pat(fr, this, a, &Value::Int(-target), emit)
            }
            other => {
                let v = self.eval(fr, this, other)?;
                if self.values_equal(&v, value)? {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
        }
    }

    /// Converts `value` into an instance of `class` using `class`'s equality
    /// constructor (operationally: find a `class` object equal to `value`).
    pub(crate) fn convert_via_equals(
        &mut self,
        class: &str,
        value: &Value,
    ) -> RtResult<Option<Value>> {
        let plan = self.plan;
        let Some(pid) = plan.lookup_impl(class, "equals") else {
            return Ok(None);
        };
        let decl = &plan.method(pid).info.decl;
        let MethodBody::Formula(body) = &decl.body else {
            return Ok(None);
        };
        let mut env = Bindings::new();
        if let Some(p) = decl.params.first() {
            env.insert(p.name.clone(), value.clone());
        }
        let mut result = None;
        self.try_equals_reconstruction(class, body, &env, &mut result)?;
        Ok(result)
    }

    /// Handles equality-constructor bodies of the shape used in the paper
    /// (Figure 4): a disjunction of `ctor_i(..) && n.ctor_i(..)` conjuncts.
    fn try_equals_reconstruction(
        &mut self,
        class: &str,
        body: &Formula,
        env: &Bindings,
        result: &mut Option<Value>,
    ) -> RtResult<()> {
        match body {
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.try_equals_reconstruction(class, a, env, result)?;
                if result.is_none() {
                    self.try_equals_reconstruction(class, b, env, result)?;
                }
                Ok(())
            }
            Formula::And(a, b) => {
                // Expect `ctor(args...) && n.ctor(args...)`.
                if let (Formula::Atom(own), Formula::Atom(other)) = (a.as_ref(), b.as_ref()) {
                    if let (
                        Expr::Call {
                            name: own_name,
                            receiver: None,
                            ..
                        },
                        Expr::Call {
                            name: other_name,
                            receiver: Some(recv),
                            ..
                        },
                    ) = (own, other)
                    {
                        if own_name == other_name {
                            if let Expr::Var(param) = recv.as_ref() {
                                if let Some(target) = env.get(param).cloned() {
                                    // Deconstruct the target with the shared
                                    // constructor, then rebuild in `class`.
                                    if let Ok(rows) = self.deconstruct(&target, other_name) {
                                        if let Some(row) = rows.first() {
                                            let rebuilt =
                                                self.construct(class, own_name, row.clone())?;
                                            *result = Some(rebuilt);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Formula::Atom(Expr::Call {
                receiver: Some(recv),
                name,
                ..
            }) => {
                // `n.zero()` style: the whole body is a predicate on the
                // other object; rebuild the matching nullary constructor.
                if let Expr::Var(param) = recv.as_ref() {
                    if let Some(target) = env.get(param).cloned() {
                        if self.matches_constructor(&target, name)? {
                            *result = Some(self.construct(class, name, Vec::new())?);
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Ground evaluation
    // ------------------------------------------------------------------

    /// Whether every variable mentioned by the expression is bound.
    pub(crate) fn ground(&self, fr: &Frame, this: Option<&Value>, e: &PExpr) -> bool {
        match e {
            PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
            PExpr::This => this.is_some(),
            PExpr::Result(s) => fr[*s as usize].is_some(),
            PExpr::Wildcard | PExpr::Decl(..) => false,
            PExpr::Name {
                slot,
                name,
                field_sym,
                class_ref,
            } => {
                fr[*slot as usize].is_some()
                    || match this {
                        // Fast path: the interned name hits a slot of the
                        // receiver's layout. Slow path: a field declared on
                        // a supertype (visible to groundness, absent from
                        // the layout, exactly like the old map-based check).
                        Some(Value::Obj(o)) => {
                            self.obj_field(o, *field_sym, name).is_some()
                                || self.table.field_type(o.class(), name).is_some()
                        }
                        _ => false,
                    }
                    || *class_ref
            }
            PExpr::Field(b, _, _) => self.ground(fr, this, b),
            PExpr::Call { receiver, args, .. } => {
                receiver
                    .as_deref()
                    .map(|r| self.ground(fr, this, r))
                    .unwrap_or(true)
                    && args.iter().all(|a| self.ground(fr, this, a))
            }
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) => {
                self.ground(fr, this, a) && self.ground(fr, this, b)
            }
            PExpr::NewArray(_, a) | PExpr::Neg(a) => self.ground(fr, this, a),
            PExpr::Tuple(xs) => xs.iter().all(|x| self.ground(fr, this, x)),
            PExpr::As(a, b) | PExpr::OrPat(a, b) => {
                self.ground(fr, this, a) && self.ground(fr, this, b)
            }
            PExpr::Where(p, _) => self.ground(fr, this, p),
        }
    }

    /// Borrowing evaluation of *place* expressions (bound slots, `this`,
    /// fields of `this`): returns a reference into the frame / receiver
    /// instead of cloning, or `None` when the expression is not a bound
    /// place (the caller falls back to [`Ev::eval`], preserving its error
    /// messages).
    fn eval_place<'f>(
        &self,
        fr: &'f Frame,
        this: Option<&'f Value>,
        e: &PExpr,
    ) -> Option<&'f Value> {
        match e {
            PExpr::This => this,
            PExpr::Result(s) => fr[*s as usize].as_ref(),
            PExpr::Name {
                slot,
                field_sym,
                name,
                ..
            } => match fr[*slot as usize].as_ref() {
                Some(v) => Some(v),
                None => match this {
                    Some(Value::Obj(o)) => self.obj_field(o, *field_sym, name),
                    _ => None,
                },
            },
            _ => None,
        }
    }

    /// Evaluates a ground expression.
    pub(crate) fn eval(&mut self, fr: &Frame, this: Option<&Value>, e: &PExpr) -> RtResult<Value> {
        match e {
            PExpr::Int(n) => Ok(Value::Int(*n)),
            PExpr::Bool(b) => Ok(Value::Bool(*b)),
            PExpr::Str(s) => Ok(Value::Str(s.clone())),
            PExpr::Null => Ok(Value::Null),
            PExpr::This => this
                .cloned()
                .ok_or_else(|| RtError::new("`this` is not in scope")),
            PExpr::Result(s) => fr[*s as usize]
                .clone()
                .ok_or_else(|| RtError::new("`result` is not bound")),
            PExpr::Name {
                slot,
                name,
                field_sym,
                ..
            } => {
                if let Some(v) = &fr[*slot as usize] {
                    return Ok(v.clone());
                }
                if let Some(Value::Obj(o)) = this {
                    if let Some(v) = self.obj_field(o, *field_sym, name) {
                        return Ok(v.clone());
                    }
                }
                Err(RtError::new(format!("unbound variable `{name}`")))
            }
            PExpr::Field(base, field, sym) => {
                // Borrowing fast path: a slot- or `this`-backed base needs
                // no Value clone — one slot scan, one field clone.
                match self.eval_place(fr, this, base) {
                    Some(Value::Obj(o)) => {
                        return self
                            .obj_field(o, *sym, field)
                            .cloned()
                            .ok_or_else(|| RtError::new(format!("no field `{field}`")));
                    }
                    Some(other) => {
                        return Err(RtError::new(format!("field access on non-object {other}")));
                    }
                    None => {}
                }
                let b = self.eval(fr, this, base)?;
                match &b {
                    Value::Obj(o) => self
                        .obj_field(o, *sym, field)
                        .cloned()
                        .ok_or_else(|| RtError::new(format!("no field `{field}`"))),
                    other => Err(RtError::new(format!("field access on non-object {other}"))),
                }
            }
            PExpr::Binary(op, a, b) => {
                let x = self
                    .eval(fr, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let y = self
                    .eval(fr, this, b)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let v = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RtError::new("division by zero"));
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(RtError::new("remainder by zero"));
                        }
                        x % y
                    }
                };
                Ok(Value::Int(v))
            }
            PExpr::Neg(a) => {
                let x = self
                    .eval(fr, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("negation of non-integer"))?;
                Ok(Value::Int(-x))
            }
            PExpr::Call {
                receiver,
                name,
                args,
                kind,
                dispatch,
            } => {
                let arg_values: RtResult<Vec<Value>> =
                    args.iter().map(|a| self.eval(fr, this, a)).collect();
                let arg_values = arg_values?;
                match kind {
                    CallKind::StaticConstruct(cr) => match cr.construct_pid {
                        Some(pid) => self.run_forward(pid, None, arg_values),
                        // Unresolvable at compile time: the string path
                        // reproduces the original error.
                        None => self.construct(&cr.name, name, arg_values),
                    },
                    CallKind::Instance => {
                        let r = receiver
                            .as_deref()
                            .expect("instance call without a receiver");
                        let recv = self.eval(fr, this, r)?;
                        self.dispatch_method(&recv, name, *dispatch, arg_values)
                    }
                    CallKind::ClassCtor(cr) => {
                        let pid = cr.construct_pid.ok_or_else(|| {
                            RtError::new(format!("no class constructor for `{name}`"))
                        })?;
                        self.run_forward(pid, None, arg_values)
                    }
                    CallKind::Free(pid) => match pid {
                        Some(pid) => self.run_forward(*pid, None, arg_values),
                        None => Err(RtError::method_not_found("<toplevel>", name)),
                    },
                    CallKind::ThisMethod => match this {
                        Some(t) => {
                            let t = t.clone();
                            self.dispatch_method(&t, name, *dispatch, arg_values)
                        }
                        None => Err(RtError::new(format!("cannot resolve call `{name}`"))),
                    },
                    CallKind::Unresolved => {
                        Err(RtError::new(format!("cannot resolve call `{name}`")))
                    }
                }
            }
            PExpr::Tuple(_) => Err(RtError::new("tuples are not first-class values")),
            other => Err(RtError::new(format!("cannot evaluate {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        stmts: &[StmtPlan],
    ) -> RtResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(fr, this, stmt)? {
                Flow::Normal => {}
                r @ Flow::Return(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    /// First solution of a goal, as a frame snapshot.
    fn first_solution(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        goal: &Goal,
    ) -> RtResult<Option<Frame>> {
        let mut sol = None;
        self.solve(fr, this, goal, &mut |_, f| {
            sol = Some(f.clone());
            Ok(false)
        })?;
        Ok(sol)
    }

    /// Commits the first solution of a goal into `fr` (the `let` / `while`
    /// semantics), returning whether one existed. Goals that bind nothing
    /// — comparisons, ground tests, negation — skip the frame snapshot
    /// entirely: the common `while (i < n)` shape costs no allocation.
    fn commit_first(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        goal: &Goal,
    ) -> RtResult<bool> {
        if matches!(
            goal,
            Goal::Compare(..) | Goal::Test(_) | Goal::Not(_) | Goal::True | Goal::Fail
        ) {
            let mut found = false;
            self.solve(fr, this, goal, &mut |_, _| {
                found = true;
                Ok(false)
            })?;
            return Ok(found);
        }
        match self.first_solution(fr, this, goal)? {
            Some(sol) => {
                *fr = sol;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Runs an imperative body through its register bytecode. Statement
    /// shapes without a register lowering delegate to [`Ev::exec_stmt`],
    /// so the observable semantics (solution-frame scoping, error order)
    /// match [`Ev::exec_block`] exactly.
    fn exec_bc_block(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        bc: &BcBlock,
    ) -> RtResult<Flow> {
        let mut regs = self.take_regs(bc.nregs as usize);
        let mut guards = vec![0u32; bc.nguards as usize];
        let r = self.exec_bc_code(fr, this, bc, &mut regs, &mut guards);
        self.recycle_regs(regs);
        r
    }

    fn exec_bc_code(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        bc: &BcBlock,
        regs: &mut [Value],
        guards: &mut [u32],
    ) -> RtResult<Flow> {
        let mut pc = 0usize;
        loop {
            match &bc.code[pc] {
                SInstr::Const { dst, k } => {
                    regs[*dst as usize] = match &bc.consts[*k as usize] {
                        BcConst::Int(i) => Value::Int(*i),
                        BcConst::Bool(b) => Value::Bool(*b),
                        BcConst::Str(s) => Value::Str(s.clone()),
                        BcConst::Null => Value::Null,
                    };
                }
                SInstr::LoadSlot {
                    dst,
                    slot,
                    name,
                    field_sym,
                } => {
                    let v = match &fr[*slot as usize] {
                        Some(v) => v.clone(),
                        None => {
                            let fallback = match this {
                                Some(Value::Obj(o)) => {
                                    self.obj_field(o, *field_sym, &bc.names[*name as usize])
                                }
                                _ => None,
                            };
                            match fallback {
                                Some(v) => v.clone(),
                                None => {
                                    return Err(RtError::new(format!(
                                        "unbound variable `{}`",
                                        bc.names[*name as usize]
                                    )))
                                }
                            }
                        }
                    };
                    regs[*dst as usize] = v;
                }
                SInstr::LoadThis { dst } => {
                    regs[*dst as usize] = this
                        .cloned()
                        .ok_or_else(|| RtError::new("`this` is not in scope"))?;
                }
                SInstr::LoadField {
                    dst,
                    base,
                    sym,
                    name,
                } => {
                    let v = match &regs[*base as usize] {
                        Value::Obj(o) => self
                            .obj_field(o, *sym, &bc.names[*name as usize])
                            .cloned()
                            .ok_or_else(|| {
                                RtError::new(format!("no field `{}`", bc.names[*name as usize]))
                            })?,
                        other => {
                            return Err(RtError::new(format!("field access on non-object {other}")))
                        }
                    };
                    regs[*dst as usize] = v;
                }
                SInstr::GuardSlot {
                    dst,
                    slot,
                    type_index,
                    if_false,
                } => {
                    // The specialized-statement guard: bound, native-layout,
                    // right class — or the generic compilation runs instead.
                    match &fr[*slot as usize] {
                        Some(v @ Value::Obj(o)) if self.obj_index(o) == Some(*type_index) => {
                            regs[*dst as usize] = v.clone();
                        }
                        _ => {
                            pc = *if_false as usize;
                            continue;
                        }
                    }
                }
                SInstr::LoadFieldIdx { dst, base, idx } => {
                    // Only reachable behind a `ClassIs` / `SwitchJump` guard
                    // that proved the register holds a native-layout object
                    // of the class whose layout assigned `idx`.
                    let Value::Obj(o) = &regs[*base as usize] else {
                        return Err(RtError::new("field access on non-object"));
                    };
                    regs[*dst as usize] = o.fields()[*idx as usize].clone();
                }
                SInstr::Move { dst, src } => regs[*dst as usize] = regs[*src as usize].clone(),
                SInstr::Bin { dst, op, a, b } => {
                    let x = regs[*a as usize]
                        .as_int()
                        .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                    let y = regs[*b as usize]
                        .as_int()
                        .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                    regs[*dst as usize] = Value::Int(bin_int(*op, x, y)?);
                }
                SInstr::Neg { dst, a } => {
                    let x = regs[*a as usize]
                        .as_int()
                        .ok_or_else(|| RtError::new("negation of non-integer"))?;
                    regs[*dst as usize] = Value::Int(-x);
                }
                SInstr::EvalExpr { dst, expr } => {
                    regs[*dst as usize] = self.eval(fr, this, &bc.exprs[*expr as usize])?;
                }
                SInstr::CallStatic {
                    dst,
                    pid,
                    base,
                    argc,
                } => {
                    let args = regs[*base as usize..*base as usize + *argc as usize].to_vec();
                    regs[*dst as usize] = self.run_forward(*pid as PlanId, None, args)?;
                }
                SInstr::CallDyn {
                    dst,
                    recv,
                    name,
                    dispatch,
                    base,
                    argc,
                } => {
                    let args = regs[*base as usize..*base as usize + *argc as usize].to_vec();
                    let recv = regs[*recv as usize].clone();
                    regs[*dst as usize] =
                        self.dispatch_method(&recv, &bc.names[*name as usize], *dispatch, args)?;
                }
                SInstr::CallThis {
                    dst,
                    name,
                    dispatch,
                    base,
                    argc,
                } => {
                    let args = regs[*base as usize..*base as usize + *argc as usize].to_vec();
                    let name = &bc.names[*name as usize];
                    let t = this
                        .cloned()
                        .ok_or_else(|| RtError::new(format!("cannot resolve call `{name}`")))?;
                    regs[*dst as usize] = self.dispatch_method(&t, name, *dispatch, args)?;
                }
                SInstr::Store { slot, src } => {
                    fr[*slot as usize] = Some(regs[*src as usize].clone());
                }
                SInstr::Ret { src } => return Ok(Flow::Return(regs[*src as usize].clone())),
                SInstr::RetNull => return Ok(Flow::Return(Value::Null)),
                SInstr::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                SInstr::ResetGuard { guard } => guards[*guard as usize] = 0,
                SInstr::LoopJump { target, guard } => {
                    guards[*guard as usize] += 1;
                    if guards[*guard as usize] > 1_000_000 {
                        return Err(RtError::new("while loop exceeded iteration budget"));
                    }
                    pc = *target as usize;
                    continue;
                }
                SInstr::CmpJump { op, a, b, if_false } => {
                    // Charges one budget step, like the condition solve it
                    // replaces.
                    self.budget.step()?;
                    let va = &regs[*a as usize];
                    let vb = &regs[*b as usize];
                    let holds = match (va.as_int(), vb.as_int()) {
                        (Some(x), Some(y)) => match op {
                            CmpOp::Le => x <= y,
                            CmpOp::Lt => x < y,
                            CmpOp::Ge => x >= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ne => x != y,
                            CmpOp::Eq => x == y,
                        },
                        _ => {
                            if *op == CmpOp::Ne {
                                let (va, vb) = (va.clone(), vb.clone());
                                !self.values_equal(&va, &vb)?
                            } else {
                                return Err(RtError::new("ordering comparison on non-integers"));
                            }
                        }
                    };
                    if !holds {
                        pc = *if_false as usize;
                        continue;
                    }
                }
                SInstr::TestJump { a, if_false } => {
                    self.budget.step()?;
                    if regs[*a as usize].as_bool() != Some(true) {
                        pc = *if_false as usize;
                        continue;
                    }
                }
                SInstr::ClassIs {
                    a,
                    type_index,
                    if_false,
                } => {
                    let hit = match &regs[*a as usize] {
                        Value::Obj(o) => self.obj_index(o) == Some(*type_index),
                        _ => false,
                    };
                    if !hit {
                        pc = *if_false as usize;
                        continue;
                    }
                }
                SInstr::SwitchJump { scrutinee, table } => {
                    let t = &bc.jumps[*table as usize];
                    pc = match &regs[*scrutinee as usize] {
                        Value::Obj(o) => match self.obj_index(o) {
                            Some(i) if (i as usize) < t.by_type.len() => {
                                t.by_type[i as usize] as usize
                            }
                            _ => t.other as usize,
                        },
                        _ => t.other as usize,
                    };
                    continue;
                }
                SInstr::Switch {
                    scrutinee,
                    table,
                    stmt,
                } => {
                    let StmtPlan::Switch {
                        cases,
                        bodies,
                        default,
                        ..
                    } = &bc.stmts[*stmt as usize]
                    else {
                        return Err(RtError::new("corrupt switch bytecode"));
                    };
                    let values = [regs[*scrutinee as usize].clone()];
                    let indices = [match &values[0] {
                        Value::Obj(o) => self.obj_index(o),
                        _ => None,
                    }];
                    let tbl = &bc.switches[*table as usize];
                    let cands: &[u16] = match indices[0] {
                        Some(i) if (i as usize) < tbl.by_type.len() => &tbl.by_type[i as usize],
                        _ => &tbl.other,
                    };
                    let mut done = None;
                    for &ci in cands {
                        let case = &cases[ci as usize];
                        let body: Option<&[StmtPlan]> = match case.target {
                            CaseTarget::Body(j) => Some(&bodies[j]),
                            CaseTarget::Default => Some(default.as_deref().unwrap_or(&[])),
                            CaseTarget::FellOff => None,
                        };
                        if let Some(flow) = self.exec_case(
                            fr,
                            this,
                            &case.patterns,
                            &case.guards,
                            &values,
                            &indices,
                            0,
                            body,
                        )? {
                            done = Some(flow);
                            break;
                        }
                    }
                    let flow = match done {
                        Some(f) => f,
                        None => match default {
                            Some(d) => self.exec_block(fr, this, d)?,
                            None => return Err(RtError::new("non-exhaustive switch at run time")),
                        },
                    };
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                SInstr::ExecStmt { stmt } => {
                    if let Flow::Return(v) = self.exec_stmt(fr, this, &bc.stmts[*stmt as usize])? {
                        return Ok(Flow::Return(v));
                    }
                }
                SInstr::End => return Ok(Flow::Normal),
            }
            pc += 1;
        }
    }

    fn exec_stmt(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        stmt: &StmtPlan,
    ) -> RtResult<Flow> {
        match stmt {
            StmtPlan::Let(goal) => {
                if self.commit_first(fr, this, goal)? {
                    Ok(Flow::Normal)
                } else {
                    Err(RtError::new("let statement failed to match"))
                }
            }
            StmtPlan::Switch {
                scrutinees,
                cases,
                bodies,
                default,
            } => {
                let values: RtResult<Vec<Value>> =
                    scrutinees.iter().map(|s| self.eval(fr, this, s)).collect();
                let values = values?;
                // Resolve each scrutinee's class index once; the per-case
                // tag-dispatch guards test against these.
                let indices: Vec<Option<u32>> = values
                    .iter()
                    .map(|v| match v {
                        Value::Obj(o) => self.obj_index(o),
                        _ => None,
                    })
                    .collect();
                for case in cases {
                    let body: Option<&[StmtPlan]> = match case.target {
                        CaseTarget::Body(j) => Some(&bodies[j]),
                        CaseTarget::Default => Some(default.as_deref().unwrap_or(&[])),
                        CaseTarget::FellOff => None,
                    };
                    if let Some(flow) = self.exec_case(
                        fr,
                        this,
                        &case.patterns,
                        &case.guards,
                        &values,
                        &indices,
                        0,
                        body,
                    )? {
                        return Ok(flow);
                    }
                }
                if let Some(d) = default {
                    return self.exec_block(fr, this, d);
                }
                Err(RtError::new("non-exhaustive switch at run time"))
            }
            StmtPlan::Cond { arms, else_arm } => {
                for (goal, body) in arms {
                    if let Some(sol) = self.first_solution(fr, this, goal)? {
                        let save = std::mem::replace(fr, sol);
                        let flow = self.exec_block(fr, this, body);
                        *fr = save;
                        return flow;
                    }
                }
                if let Some(body) = else_arm {
                    return self.exec_block(fr, this, body);
                }
                Err(RtError::new("non-exhaustive cond at run time"))
            }
            StmtPlan::If { cond, then, els } => match self.first_solution(fr, this, cond)? {
                Some(sol) => {
                    let save = std::mem::replace(fr, sol);
                    let flow = self.exec_block(fr, this, then);
                    *fr = save;
                    flow
                }
                None => match els {
                    Some(e) => self.exec_block(fr, this, e),
                    None => Ok(Flow::Normal),
                },
            },
            StmtPlan::Foreach {
                goal,
                declared,
                body,
            } => {
                let mut solutions: Vec<Frame> = Vec::new();
                self.solve(fr, this, goal, &mut |_, f| {
                    solutions.push(f.clone());
                    Ok(true)
                })?;
                for mut b in solutions {
                    // The loop body sees the solution's bindings plus any
                    // updates made by earlier iterations to outer variables;
                    // outer updates win over stale solution copies, except
                    // for variables the formula declares.
                    for s in 0..fr.len() {
                        match (&fr[s], &b[s]) {
                            (Some(v), None) => b[s] = Some(v.clone()),
                            (Some(v), Some(w)) if w != v && !declared.contains(&(s as SlotId)) => {
                                b[s] = Some(v.clone())
                            }
                            _ => {}
                        }
                    }
                    let flow = self.exec_block(&mut b, this, body)?;
                    // Propagate updates to variables that already existed.
                    for s in 0..fr.len() {
                        if fr[s].is_some() {
                            fr[s] = b[s].clone();
                        }
                    }
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            StmtPlan::While { cond, body } => {
                let mut guard = 0;
                loop {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(RtError::new("while loop exceeded iteration budget"));
                    }
                    if self.commit_first(fr, this, cond)? {
                        if let Flow::Return(v) = self.exec_block(fr, this, body)? {
                            return Ok(Flow::Return(v));
                        }
                    } else {
                        return Ok(Flow::Normal);
                    }
                }
            }
            StmtPlan::Return(e) => {
                let v = match e {
                    Some(expr) => self.eval(fr, this, expr)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            StmtPlan::Assign(slot, e) => {
                let v = self.eval(fr, this, e)?;
                fr[*slot as usize] = Some(v);
                Ok(Flow::Normal)
            }
            StmtPlan::AssignUnsupported(e) => {
                let _ = self.eval(fr, this, e)?;
                Err(RtError::new("unsupported assignment target"))
            }
            StmtPlan::Expr(e) => {
                let _ = self.eval(fr, this, e)?;
                Ok(Flow::Normal)
            }
            StmtPlan::Block(stmts) => {
                // Record which slots were unbound instead of cloning the
                // frame: inner-only bindings are dropped on exit, updates
                // to outer variables persist.
                let unbound: Vec<usize> = fr
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.is_none().then_some(i))
                    .collect();
                let flow = self.exec_block(fr, this, stmts)?;
                for s in unbound {
                    fr[s] = None;
                }
                Ok(flow)
            }
        }
    }

    /// Matches one `switch` case's patterns left to right against the
    /// scrutinee values (first solution per pattern, tag-dispatch guard
    /// consulted before each matcher runs), executes `body` under the
    /// accumulated bindings, and lets the nested `bind_then` scopes undo
    /// the slot writes on the way out — the trail-style replacement for
    /// the old whole-frame clone per tried case.
    ///
    /// Returns `Ok(None)` when the case does not match. `body` is `None`
    /// for [`CaseTarget::FellOff`], which errors only once every pattern
    /// matched (like the old code).
    #[allow(clippy::too_many_arguments)]
    fn exec_case(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        patterns: &[PExpr],
        guards: &[CaseGuard],
        values: &[Value],
        indices: &[Option<u32>],
        i: usize,
        body: Option<&[StmtPlan]>,
    ) -> RtResult<Option<Flow>> {
        if i >= patterns.len().min(values.len()) {
            let Some(body) = body else {
                return Err(RtError::new("switch fell off the end"));
            };
            // The case's bindings (and the body's own updates) are local
            // to the body: run it on a scratch copy — the only frame clone
            // of the whole switch, paid just for the case that matched.
            let mut benv = fr.clone();
            return self.exec_block(&mut benv, this, body).map(Some);
        }
        if !guards[i].admits(indices[i]) {
            return Ok(None);
        }
        let mut out: Option<Flow> = None;
        self.match_pat(fr, this, &patterns[i], &values[i], &mut |ev, fr| {
            out = ev.exec_case(fr, this, patterns, guards, values, indices, i + 1, body)?;
            // First solution per pattern only.
            Ok(false)
        })?;
        Ok(out)
    }
}

/// Integer arithmetic shared by the `Bin` bytecode instruction and the
/// fast-constructor field evaluator — one place for the division and
/// remainder guards.
pub(crate) fn bin_int(op: BinOp, x: i64, y: i64) -> RtResult<i64> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => {
            if y == 0 {
                return Err(RtError::new("division by zero"));
            }
            x / y
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(RtError::new("remainder by zero"));
            }
            x % y
        }
    })
}

/// Evaluates one vetted [`FastCtor`](jmatch_core::bytecode::FastCtor) field
/// expression against the argument vector: parameter reads become direct
/// `args` indexing, everything else is literals and integer arithmetic.
fn fast_ctor_field(e: &PExpr, params: &[SlotId], args: &[Value]) -> RtResult<Value> {
    Ok(match e {
        PExpr::Int(i) => Value::Int(*i),
        PExpr::Bool(b) => Value::Bool(*b),
        PExpr::Str(s) => Value::Str(s.clone()),
        PExpr::Null => Value::Null,
        PExpr::Name { slot, .. } => {
            let i = params
                .iter()
                .position(|p| p == slot)
                .expect("fast-ctor names resolve to parameters");
            args[i].clone()
        }
        PExpr::Binary(op, a, b) => {
            let x = fast_ctor_field(a, params, args)?
                .as_int()
                .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
            let y = fast_ctor_field(b, params, args)?
                .as_int()
                .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
            Value::Int(bin_int(*op, x, y)?)
        }
        PExpr::Neg(a) => {
            let x = fast_ctor_field(a, params, args)?
                .as_int()
                .ok_or_else(|| RtError::new("negation of non-integer"))?;
            Value::Int(-x)
        }
        _ => unreachable!("expression shape vetted by `fast_ctor`"),
    })
}

/// Backward-mode twin of the fast-construct path: a pure-permutation
/// constructor ([`FastCtor::projection`](jmatch_core::bytecode::FastCtor))
/// deconstructs by reading the parameter values straight off the object's
/// field storage — no matching form, no solver frame, no per-solution
/// binding maps. Applies only to native-layout objects of the
/// constructor's own class; foreign layouts fall back to the solver,
/// which projects fields by name.
///
/// Returns `None` when the fast path does not apply, `Some(vec![])` when
/// it applies but the declared parameter types reject the one solution
/// (matching the solver's row filter).
pub(crate) fn fast_deconstruct(
    plan: &ProgramPlan,
    value: &Value,
    pid: PlanId,
) -> Option<Vec<Vec<Value>>> {
    let mp = plan.method(pid);
    let proj = mp.fast_ctor.as_ref()?.projection.as_deref()?;
    let layout = mp.owner_layout.as_ref()?;
    let Value::Obj(o) = value else {
        return None;
    };
    if !Arc::ptr_eq(o.layout(), layout) {
        return None;
    }
    let row: Vec<Value> = proj
        .iter()
        .map(|&i| o.fields()[i as usize].clone())
        .collect();
    Some(filter_projection_row(plan, pid, row))
}

/// [`fast_deconstruct`] over an owned scrutinee — the first slice of
/// Perceus-style memory reuse: when the `Arc` is uniquely held and the
/// permutation is the identity, the solution row takes over the object's
/// own `Box<[Value]>` in place (`Arc::get_mut`, then `Box::into_vec` —
/// no allocation, no refcount traffic on the field values). Shared or
/// permuted scrutinees clone per field, like the borrowed path.
///
/// `Err` hands the value back when the fast path does not apply.
pub(crate) fn fast_deconstruct_owned(
    plan: &ProgramPlan,
    value: Value,
    pid: PlanId,
) -> Result<Vec<Vec<Value>>, Value> {
    let mp = plan.method(pid);
    let (Some(fc), Some(layout)) = (&mp.fast_ctor, &mp.owner_layout) else {
        return Err(value);
    };
    let Some(proj) = fc.projection.as_deref() else {
        return Err(value);
    };
    match value {
        Value::Obj(mut o) if Arc::ptr_eq(o.layout(), layout) => {
            let identity = proj.iter().enumerate().all(|(i, &s)| s as usize == i);
            let row: Vec<Value> = match (identity, Arc::get_mut(&mut o)) {
                (true, Some(obj)) => obj.take_fields().into_vec(),
                _ => proj
                    .iter()
                    .map(|&i| o.fields()[i as usize].clone())
                    .collect(),
            };
            Ok(filter_projection_row(plan, pid, row))
        }
        v => Err(v),
    }
}

/// Applies the declared parameter types to a projected row, like the
/// solver does to each solution: a typed parameter holding an object of
/// a non-subtype class rejects the row.
fn filter_projection_row(plan: &ProgramPlan, pid: PlanId, row: Vec<Value>) -> Vec<Vec<Value>> {
    let table = plan.table();
    let params = &plan.method(pid).info.decl.params;
    for (p, v) in params.iter().zip(row.iter()) {
        if let Type::Named(t) = &p.ty {
            if let Some(class) = v.class() {
                if !table.is_subtype(class, t) {
                    return Vec::new();
                }
            }
        }
    }
    vec![row]
}
