//! The plan evaluator: executes the query plans produced by
//! [`jmatch_core::lower`].
//!
//! Where the legacy tree-walker re-derives a solving order for every formula
//! at every call and clones a `HashMap` environment per emitted solution,
//! the evaluator runs a [`SolvedForm`](jmatch_core::lower::SolvedForm)'s
//! goal over a flat frame of variable slots (`Vec<Option<Value>>`):
//!
//! * **bindings** are slot writes, undone by scope when a choice point is
//!   exhausted (the moral equivalent of a trail in a WAM-style machine);
//! * **conjunctions** follow the statically scheduled order of
//!   [`Goal::Seq`], falling back to run-time selection only for
//!   [`Goal::DynSeq`];
//! * **calls** resolve through the plan's precompiled dispatch indices
//!   instead of walking the supertype chain;
//! * **choice points** (disjunctions, constructor matches) are explored by
//!   enumerating each branch against the continuation, so deeper frames
//!   stack explicitly per invocation rather than per cloned environment.
//!
//! The observable behavior — values, bindings, enumeration order, and
//! failures — is kept identical to the tree-walker's; `tests/differential.rs`
//! runs every corpus program through both engines and asserts it.

use crate::{Bindings, Flow, Object, RtError, RtResult, Value};
use jmatch_core::lower::{
    BodyPlan, CallKind, CaseTarget, Goal, PExpr, PlanId, ProgramPlan, ReadyCheck, SlotId, StmtPlan,
};
use jmatch_core::table::ClassTable;
use jmatch_syntax::ast::{BinOp, CmpOp, Expr, Formula, MethodBody, Type};
use std::collections::HashMap;
use std::sync::Arc;

/// A frame of variable slots.
pub(crate) type Frame = Vec<Option<Value>>;

/// The continuation invoked per solution; returns `Ok(true)` to keep
/// enumerating.
type Emit<'a> = &'a mut dyn FnMut(&mut Ev<'_, '_>, &mut Frame) -> RtResult<bool>;

/// The work budget of one evaluation: a shared step counter plus the
/// depth / step ceilings, so every entry point (the recursive evaluator and
/// the resumable [`crate::Solutions`] machine) honors the same
/// [`crate::Limits`].
#[derive(Debug, Clone)]
pub(crate) struct Budget {
    /// Steps spent so far (solver recursion plus machine steps).
    pub(crate) steps: u64,
    /// Ceiling on `steps`.
    pub(crate) max_steps: u64,
    /// Ceiling on solver nesting depth.
    pub(crate) max_depth: usize,
}

impl Budget {
    pub(crate) fn new(max_depth: usize, max_steps: u64) -> Self {
        Budget {
            steps: 0,
            max_steps,
            max_depth,
        }
    }

    /// One unit of solver work; errors when the step ceiling is hit.
    pub(crate) fn step(&mut self) -> RtResult<()> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(RtError::limit("steps", "solver step budget exceeded"));
        }
        Ok(())
    }
}

impl Default for Budget {
    /// Matches [`crate::Limits::default`]: see [`MAX_DEPTH`] for why the
    /// depth ceiling must stay well below native stack exhaustion.
    fn default() -> Self {
        Budget::new(MAX_DEPTH, u64::MAX)
    }
}

/// The plan-based execution engine.
#[derive(Debug, Clone)]
pub struct PlanInterp {
    plan: Arc<ProgramPlan>,
}

impl PlanInterp {
    /// Creates an engine over a compiled program plan.
    pub fn new(plan: Arc<ProgramPlan>) -> Self {
        PlanInterp { plan }
    }

    /// The compiled program plan.
    pub fn plan(&self) -> &Arc<ProgramPlan> {
        &self.plan
    }

    /// Invokes a named or class constructor of `class` in the forward mode.
    pub fn construct(&self, class: &str, ctor: &str, args: Vec<Value>) -> RtResult<Value> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).construct(class, ctor, args)
    }

    /// Calls a free-standing (top-level) method.
    pub fn call_free(&self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).call_free(name, args)
    }

    /// Calls an instance method in the forward mode.
    pub fn call_method(&self, receiver: &Value, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).call_method(receiver, name, args)
    }

    /// Enumerates the solutions of matching `value` against the named
    /// constructor `ctor` (the backward mode).
    pub fn deconstruct(&self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).deconstruct(value, ctor)
    }

    /// Tests whether `value` matches the named constructor `ctor`.
    pub fn matches_constructor(&self, value: &Value, ctor: &str) -> RtResult<bool> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).matches_constructor(value, ctor)
    }

    /// Deep equality, using equality constructors across implementations.
    pub fn values_equal(&self, a: &Value, b: &Value) -> RtResult<bool> {
        let mut budget = Budget::default();
        Ev::new(&self.plan, &mut budget).values_equal(a, b)
    }

    /// Enumerates the solutions of an ad-hoc formula: the formula is lowered
    /// on the fly against the entry bindings (a standalone solved form) and
    /// run by the plan evaluator.
    pub fn solve(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        f: &Formula,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        let bound: Vec<&str> = env.keys().map(String::as_str).collect();
        let this_class = this.map(|t| t.class().unwrap_or(""));
        let form = jmatch_core::lower::lower_standalone(self.plan.table(), f, &bound, this_class);
        let mut fr: Frame = vec![None; form.frame.len()];
        for (name, v) in env {
            if let Some(s) = form.frame.slot_of(name) {
                fr[s as usize] = Some(v.clone());
            }
        }
        let mut budget = Budget::default();
        let mut ev = Ev::new(&self.plan, &mut budget);
        ev.solve(&mut fr, this, &form.goal, &mut |_, fr| {
            let mut out = Bindings::new();
            for (i, v) in fr.iter().enumerate() {
                if let Some(v) = v {
                    out.insert(form.frame.name_of(i as SlotId).to_owned(), v.clone());
                }
            }
            Ok(emit(&out))
        })?;
        Ok(())
    }
}

/// One evaluation session: borrows the plan and a work budget, and tracks
/// the recursion guard.
pub(crate) struct Ev<'p, 'b> {
    plan: &'p ProgramPlan,
    table: &'p ClassTable,
    depth: usize,
    budget: &'b mut Budget,
}

/// Default bound on the solver's nesting depth (goal recursion plus nested
/// invocations). Each level costs native stack, so the limit must trip well
/// before the stack itself is exhausted — ~0.5KB per level against the 2MB
/// stack of a Rust test thread puts exhaustion around depth 3–5k; 1_000
/// leaves a comfortable margin while staying far above what any corpus
/// program reaches.
pub(crate) const MAX_DEPTH: usize = 1_000;

impl<'p, 'b> Ev<'p, 'b> {
    /// Creates an evaluation session over a plan, drawing on `budget`.
    pub(crate) fn new(plan: &'p ProgramPlan, budget: &'b mut Budget) -> Self {
        Ev {
            plan,
            table: plan.table(),
            depth: 0,
            budget,
        }
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    pub(crate) fn construct(
        &mut self,
        class: &str,
        ctor: &str,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        let declared = self
            .plan
            .lookup_declared(class, ctor)
            .or_else(|| self.plan.class_ctor(class))
            .ok_or_else(|| RtError::method_not_found(class, ctor))?;
        // Resolve to the concrete implementation declared on `class` itself
        // if the interface only declares the signature.
        let pid = if matches!(self.plan.method(declared).body, BodyPlan::Absent) {
            self.plan
                .lookup_impl(class, ctor)
                .ok_or_else(|| RtError::new(format!("`{class}.{ctor}` has no implementation")))?
        } else {
            declared
        };
        self.run_forward(pid, None, args)
    }

    pub(crate) fn call_free(&mut self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let pid = self
            .plan
            .lookup_free(name)
            .ok_or_else(|| RtError::method_not_found("<toplevel>", name))?;
        self.run_forward(pid, None, args)
    }

    pub(crate) fn call_method(
        &mut self,
        receiver: &Value,
        name: &str,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        let class = receiver
            .class()
            .ok_or_else(|| RtError::new("receiver is not an object"))?
            .to_owned();
        let pid = self
            .plan
            .lookup_impl(&class, name)
            .ok_or_else(|| RtError::method_not_found(&class, name))?;
        self.run_forward(pid, Some(receiver.clone()), args)
    }

    pub(crate) fn deconstruct(&mut self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        let class = value
            .class()
            .ok_or_else(|| RtError::new("can only deconstruct objects"))?
            .to_owned();
        let pid = self
            .plan
            .lookup_impl(&class, ctor)
            .ok_or_else(|| RtError::method_not_found(&class, ctor))?;
        let plan = self.plan;
        let table = self.table;
        let params = &plan.method(pid).info.decl.params;
        let mut solutions = Vec::new();
        self.each_constructor_solution(value, pid, &mut |_, row| {
            // Apply the declared parameter types as patterns, like matching
            // `T name` against each solution value.
            for (p, v) in params.iter().zip(row.iter()) {
                if let Type::Named(t) = &p.ty {
                    if let Some(class) = v.class() {
                        if !table.is_subtype(class, t) {
                            return Ok(true);
                        }
                    }
                }
            }
            solutions.push(row.to_vec());
            Ok(true)
        })?;
        Ok(solutions)
    }

    pub(crate) fn matches_constructor(&mut self, value: &Value, ctor: &str) -> RtResult<bool> {
        Ok(!self.deconstruct(value, ctor)?.is_empty() || {
            // Zero-parameter constructors produce an empty solution row set
            // only when they fail; re-check via a direct predicate solve.
            let class = value.class().unwrap_or_default().to_owned();
            if let Some(pid) = self.plan.lookup_impl(&class, ctor) {
                if self.plan.method(pid).info.decl.params.is_empty() {
                    let mut found = false;
                    self.each_constructor_solution(value, pid, &mut |_, _| {
                        found = true;
                        Ok(false)
                    })?;
                    found
                } else {
                    false
                }
            } else {
                false
            }
        })
    }

    pub(crate) fn values_equal(&mut self, a: &Value, b: &Value) -> RtResult<bool> {
        match (a, b) {
            (Value::Obj(oa), Value::Obj(ob)) => {
                if Arc::ptr_eq(oa, ob) {
                    return Ok(true);
                }
                if oa.class == ob.class {
                    if oa.fields.len() == ob.fields.len() {
                        for (k, va) in &oa.fields {
                            let Some(vb) = ob.fields.get(k) else {
                                return Ok(false);
                            };
                            if !self.values_equal(va, vb)? {
                                return Ok(false);
                            }
                        }
                        return Ok(true);
                    }
                    return Ok(false);
                }
                // Different classes: try an equality constructor on either
                // side, in its `this`-and-parameter-bound solved form.
                let plan = self.plan;
                for (lhs, rhs) in [(a, b), (b, a)] {
                    let class = lhs.class().unwrap_or_default().to_owned();
                    if let Some(pid) = plan.lookup_impl(&class, "equals") {
                        if let BodyPlan::Formula {
                            equals_bound: Some(form),
                            ..
                        } = &plan.method(pid).body
                        {
                            let mut fr: Frame = vec![None; form.frame.len()];
                            if let Some(&ps) = form.param_slots.first() {
                                fr[ps as usize] = Some(rhs.clone());
                            }
                            let mut found = false;
                            self.solve(&mut fr, Some(lhs), &form.goal, &mut |_, _| {
                                found = true;
                                Ok(false)
                            })?;
                            return Ok(found);
                        }
                    }
                }
                Ok(false)
            }
            _ => Ok(a == b),
        }
    }

    // ------------------------------------------------------------------
    // Forward execution
    // ------------------------------------------------------------------

    pub(crate) fn run_forward(
        &mut self,
        pid: PlanId,
        this: Option<Value>,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        let mp = {
            let plan = self.plan;
            plan.method(pid)
        };
        if args.len() != mp.info.decl.params.len() {
            return Err(RtError::arity_mismatch(
                &mp.info.qualified_name(),
                mp.info.decl.params.len(),
                args.len(),
            ));
        }
        match &mp.body {
            BodyPlan::Absent => Err(RtError::new(format!(
                "{} has no implementation",
                mp.info.qualified_name()
            ))),
            BodyPlan::Formula { forward, .. } => {
                let mut fr: Frame = vec![None; forward.frame.len()];
                for (&s, v) in forward.param_slots.iter().zip(args) {
                    fr[s as usize] = Some(v);
                }
                if mp.info.constructs_owner() {
                    // Construction: the fields of the new object are unknowns
                    // solved by the body.
                    let owner = &mp.info.owner;
                    let field_slots = &forward.field_slots;
                    let result_slot = forward.result_slot;
                    let mut result = None;
                    self.solve(&mut fr, this.as_ref(), &forward.goal, &mut |_, fr| {
                        let mut fields = HashMap::new();
                        for (fname, s) in field_slots {
                            fields.insert(
                                fname.clone(),
                                fr[*s as usize].clone().unwrap_or(Value::Null),
                            );
                        }
                        // A `result = ...` equation (as in Figure 1) takes
                        // precedence over field solving.
                        result = Some(fr[result_slot as usize].clone().unwrap_or_else(|| {
                            Value::Obj(Arc::new(Object {
                                class: owner.clone(),
                                fields,
                            }))
                        }));
                        Ok(false)
                    })?;
                    result.ok_or_else(|| {
                        RtError::new(format!("{} failed to match", mp.info.qualified_name()))
                    })
                } else {
                    // Ordinary method: solve for `result` (boolean methods
                    // default to "is the body satisfiable").
                    let result_slot = forward.result_slot;
                    let mut result = None;
                    let mut any = false;
                    self.solve(&mut fr, this.as_ref(), &forward.goal, &mut |_, fr| {
                        any = true;
                        result = fr[result_slot as usize].clone();
                        Ok(false)
                    })?;
                    match (&mp.info.decl.return_type, result) {
                        (Some(Type::Boolean), r) => Ok(r.unwrap_or(Value::Bool(any))),
                        (_, Some(r)) => Ok(r),
                        (Some(Type::Void), None) => Ok(Value::Null),
                        (_, None) if any => Ok(Value::Bool(true)),
                        (_, None) => Err(RtError::new(format!(
                            "{} produced no result",
                            mp.info.qualified_name()
                        ))),
                    }
                }
            }
            BodyPlan::Block(bp) => {
                let mut fr: Frame = vec![None; bp.frame.len()];
                for (&s, v) in bp.param_slots.iter().zip(args) {
                    fr[s as usize] = Some(v);
                }
                match self.exec_block(&mut fr, this.as_ref(), &bp.stmts)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Value::Null),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Constructor matching (backward / iterative modes)
    // ------------------------------------------------------------------

    /// Solves `pid`'s matching plan against `value` and feeds each
    /// solution's parameter-value row to `each`.
    fn each_constructor_solution(
        &mut self,
        value: &Value,
        pid: PlanId,
        each: &mut dyn FnMut(&mut Ev<'_, '_>, &[Value]) -> RtResult<bool>,
    ) -> RtResult<()> {
        let plan = self.plan;
        let mp = plan.method(pid);
        let BodyPlan::Formula { matching, .. } = &mp.body else {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "backward (pattern-matching)",
            ));
        };
        let param_slots = &matching.param_slots;
        let mut fr: Frame = vec![None; matching.frame.len()];
        self.solve(&mut fr, Some(value), &matching.goal, &mut |ev, fr| {
            let mut row = Vec::with_capacity(param_slots.len());
            for &s in param_slots {
                match &fr[s as usize] {
                    Some(v) => row.push(v.clone()),
                    // A parameter the solution left unbound: skip it, like
                    // the tree-walker.
                    None => return Ok(true),
                }
            }
            each(ev, &row)
        })?;
        Ok(())
    }

    /// Matches `value` against the constructor plan `pid` with argument
    /// patterns in the caller's frame — the plan-level counterpart of the
    /// walker's `match_constructor`.
    fn match_constructor(
        &mut self,
        caller: &mut Frame,
        value: &Value,
        pid: PlanId,
        args: &[PExpr],
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        let plan = self.plan;
        let mp = plan.method(pid);
        let BodyPlan::Formula { matching, .. } = &mp.body else {
            return Err(RtError::mode_mismatch(
                &mp.info.qualified_name(),
                "backward (pattern-matching)",
            ));
        };
        let param_slots = &matching.param_slots;
        let mut fr: Frame = vec![None; matching.frame.len()];
        self.solve(&mut fr, Some(value), &matching.goal, &mut |ev, fr| {
            let mut row = Vec::with_capacity(param_slots.len());
            for &s in param_slots {
                match &fr[s as usize] {
                    Some(v) => row.push(v.clone()),
                    None => return Ok(true),
                }
            }
            ev.match_args_then(caller, args, &row, emit)
        })
    }

    /// Matches argument patterns against a solution row (first solution per
    /// pattern, accumulating bindings left to right), runs `k`, then
    /// restores the caller frame. Pattern-match errors skip the row, like
    /// the tree-walker.
    fn match_args_then(
        &mut self,
        fr: &mut Frame,
        args: &[PExpr],
        values: &[Value],
        k: Emit<'_>,
    ) -> RtResult<bool> {
        let save = fr.clone();
        let mut failed = false;
        for (i, v) in values.iter().enumerate() {
            let Some(pat) = args.get(i) else {
                continue;
            };
            let mut sol: Option<Frame> = None;
            let r = self.match_pat(fr, None, pat, v, &mut |_, fr2| {
                sol = Some(fr2.clone());
                Ok(false)
            });
            if r.is_err() {
                failed = true;
                break;
            }
            match sol {
                Some(s) => *fr = s,
                None => {
                    failed = true;
                    break;
                }
            }
        }
        let out = if failed { Ok(true) } else { k(self, fr) };
        *fr = save;
        out
    }

    // ------------------------------------------------------------------
    // Goal solving
    // ------------------------------------------------------------------

    /// Enumerates the solutions of a goal. Returns `Ok(false)` when the
    /// continuation asked to stop.
    pub(crate) fn solve(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        g: &Goal,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        self.budget.step()?;
        self.depth += 1;
        if self.depth > self.budget.max_depth {
            self.depth -= 1;
            return Err(RtError::limit("depth", "solver recursion limit exceeded"));
        }
        let r = self.solve_inner(fr, this, g, emit);
        self.depth -= 1;
        r
    }

    fn solve_inner(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        g: &Goal,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        match g {
            Goal::True | Goal::Trivial => emit(self, fr),
            Goal::Fail => Ok(true),
            Goal::Seq(goals) => self.solve_seq(fr, this, goals, emit),
            Goal::DynSeq(items) => {
                let remaining: Vec<usize> = (0..items.len()).collect();
                self.solve_dynseq(fr, this, items, &remaining, emit)
            }
            Goal::Any(branches) => {
                for b in branches {
                    if !self.solve(fr, this, b, emit)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Goal::Not(inner) => {
                let mut found = false;
                self.solve(fr, this, inner, &mut |_, _| {
                    found = true;
                    Ok(false)
                })?;
                if !found {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
            Goal::Unify(lhs, rhs) => {
                let lg = self.ground(fr, this, lhs);
                let rg = self.ground(fr, this, rhs);
                match (lg, rg) {
                    (true, true) => {
                        let a = self.eval(fr, this, lhs)?;
                        let b = self.eval(fr, this, rhs)?;
                        if self.values_equal(&a, &b)? {
                            emit(self, fr)
                        } else {
                            Ok(true)
                        }
                    }
                    (true, false) => {
                        let v = self.eval(fr, this, lhs)?;
                        self.match_pat(fr, this, rhs, &v, emit)
                    }
                    (false, true) => {
                        let v = self.eval(fr, this, rhs)?;
                        self.match_pat(fr, this, lhs, &v, emit)
                    }
                    (false, false) => Err(RtError::new(format!(
                        "equation with unknowns on both sides is not solvable: {lhs:?} = {rhs:?}"
                    ))),
                }
            }
            Goal::Compare(op, lhs, rhs) => {
                let a = self.eval(fr, this, lhs)?;
                let b = self.eval(fr, this, rhs)?;
                let (x, y) = match (a.as_int(), b.as_int()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        if *op == CmpOp::Ne {
                            if !self.values_equal(&a, &b)? {
                                return emit(self, fr);
                            }
                            return Ok(true);
                        }
                        return Err(RtError::new("ordering comparison on non-integers"));
                    }
                };
                let holds = match op {
                    CmpOp::Le => x <= y,
                    CmpOp::Lt => x < y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ne => x != y,
                    CmpOp::Eq => x == y,
                };
                if holds {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
            Goal::Invoke {
                receiver,
                name,
                args,
            } => {
                let subject: Value = match receiver {
                    Some(r) if self.ground(fr, this, r) => self.eval(fr, this, r)?,
                    None => this
                        .cloned()
                        .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    Some(_) => {
                        return Err(RtError::new("predicate receiver is not ground"));
                    }
                };
                match &subject {
                    Value::Obj(o) => {
                        let class = o.class.clone();
                        let Some(pid) = self.plan.lookup_impl(&class, name) else {
                            return Err(RtError::method_not_found(&class, name));
                        };
                        self.match_constructor(fr, &subject, pid, args, emit)
                    }
                    Value::Bool(b) => {
                        if *b {
                            emit(self, fr)
                        } else {
                            Ok(true)
                        }
                    }
                    other => Err(RtError::new(format!(
                        "cannot use `{other}` as a predicate receiver"
                    ))),
                }
            }
            Goal::Test(e) => {
                let v = self.eval(fr, this, e)?;
                if v.as_bool() == Some(true) {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn solve_seq(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        goals: &[Goal],
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        match goals.split_first() {
            None => emit(self, fr),
            Some((g, rest)) => self.solve(fr, this, g, &mut |ev, fr| {
                ev.solve_seq(fr, this, rest, emit)
            }),
        }
    }

    fn solve_dynseq(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        items: &[(ReadyCheck, Goal)],
        remaining: &[usize],
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        let Some(&chosen) = remaining
            .iter()
            .find(|&&i| self.check_ready(fr, this, &items[i].0))
        else {
            if remaining.is_empty() {
                return emit(self, fr);
            }
            return Err(RtError::new(
                "formula is not solvable: no conjunct can run with the current bindings",
            ));
        };
        let rest: Vec<usize> = remaining.iter().copied().filter(|&i| i != chosen).collect();
        self.solve(fr, this, &items[chosen].1, &mut |ev, fr| {
            ev.solve_dynseq(fr, this, items, &rest, emit)
        })
    }

    pub(crate) fn check_ready(&self, fr: &Frame, this: Option<&Value>, c: &ReadyCheck) -> bool {
        match c {
            ReadyCheck::Always => true,
            ReadyCheck::Never => false,
            ReadyCheck::Ground(e) => self.ground(fr, this, e),
            ReadyCheck::EitherGround(a, b) => self.ground(fr, this, a) || self.ground(fr, this, b),
            ReadyCheck::BothGround(a, b) => self.ground(fr, this, a) && self.ground(fr, this, b),
            ReadyCheck::All(cs) => cs.iter().all(|c| self.check_ready(fr, this, c)),
        }
    }

    // ------------------------------------------------------------------
    // Pattern matching
    // ------------------------------------------------------------------

    /// Binds a slot around the continuation, restoring the old value after.
    fn bind_then(
        &mut self,
        fr: &mut Frame,
        slot: SlotId,
        value: Value,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        let old = fr[slot as usize].replace(value);
        let r = emit(self, fr);
        fr[slot as usize] = old;
        r
    }

    pub(crate) fn match_pat(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        pat: &PExpr,
        value: &Value,
        emit: Emit<'_>,
    ) -> RtResult<bool> {
        match pat {
            PExpr::Wildcard => emit(self, fr),
            PExpr::Decl(ty, slot) => {
                if let Type::Named(t) = ty {
                    if let Some(class) = value.class() {
                        if !self.table.is_subtype(class, t) {
                            return Ok(true);
                        }
                    }
                }
                match slot {
                    Some(s) => self.bind_then(fr, *s, value.clone(), emit),
                    None => emit(self, fr),
                }
            }
            PExpr::Name { slot, .. } => match fr[*slot as usize].clone() {
                Some(bound) => {
                    if self.values_equal(&bound, value)? {
                        emit(self, fr)
                    } else {
                        Ok(true)
                    }
                }
                None => self.bind_then(fr, *slot, value.clone(), emit),
            },
            PExpr::Result(slot) => match fr[*slot as usize].clone() {
                Some(bound) => {
                    if self.values_equal(&bound, value)? {
                        emit(self, fr)
                    } else {
                        Ok(true)
                    }
                }
                None => self.bind_then(fr, *slot, value.clone(), emit),
            },
            PExpr::As(a, b) => self.match_pat(fr, this, a, value, &mut |ev, fr| {
                ev.match_pat(fr, this, b, value, emit)
            }),
            PExpr::OrPat(a, b) => {
                if !self.match_pat(fr, this, a, value, emit)? {
                    return Ok(false);
                }
                self.match_pat(fr, this, b, value, emit)
            }
            PExpr::Where(p, goal) => self.match_pat(fr, this, p, value, &mut |ev, fr| {
                ev.solve(fr, this, goal, emit)
            }),
            PExpr::Call {
                receiver,
                name,
                args,
                kind,
            } => {
                // Constructor pattern: dispatch on the matched value's class
                // (or the statically named class).
                let class: String = match (kind, receiver) {
                    (CallKind::StaticConstruct(c), _) => c.clone(),
                    (CallKind::ClassCtor(c), None) => c.clone(),
                    _ => value.class().unwrap_or_default().to_owned(),
                };
                let Some(pid) = self
                    .plan
                    .lookup_impl(&class, name)
                    .or_else(|| self.plan.class_ctor(&class))
                else {
                    return Err(RtError::method_not_found(&class, name));
                };
                // If the runtime class differs and an equality constructor
                // exists, convert first.
                if let Some(vclass) = value.class() {
                    if !self.table.is_subtype(vclass, &class) {
                        if let Some(converted) = self.convert_via_equals(&class, value)? {
                            return self.match_constructor(fr, &converted, pid, args, emit);
                        }
                        return Ok(true);
                    }
                }
                self.match_constructor(fr, value, pid, args, emit)
            }
            PExpr::Binary(op, a, b) => {
                // Invertible integer arithmetic: exactly one non-ground side.
                let Some(target) = value.as_int() else {
                    return Ok(true);
                };
                let a_ground = self.ground(fr, this, a);
                let b_ground = self.ground(fr, this, b);
                match (op, a_ground, b_ground) {
                    (_, true, true) => {
                        let v = self.eval(fr, this, pat)?;
                        if self.values_equal(&v, value)? {
                            emit(self, fr)
                        } else {
                            Ok(true)
                        }
                    }
                    (BinOp::Add, true, false) => {
                        let av = self.eval(fr, this, a)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, b, &Value::Int(target - av), emit)
                    }
                    (BinOp::Add, false, true) => {
                        let bv = self.eval(fr, this, b)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, a, &Value::Int(target - bv), emit)
                    }
                    (BinOp::Sub, false, true) => {
                        let bv = self.eval(fr, this, b)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, a, &Value::Int(target + bv), emit)
                    }
                    (BinOp::Sub, true, false) => {
                        let av = self.eval(fr, this, a)?.as_int().unwrap_or(0);
                        self.match_pat(fr, this, b, &Value::Int(av - target), emit)
                    }
                    _ => Err(RtError::new(
                        "cannot invert this arithmetic pattern at run time",
                    )),
                }
            }
            PExpr::Neg(a) => {
                let Some(target) = value.as_int() else {
                    return Ok(true);
                };
                self.match_pat(fr, this, a, &Value::Int(-target), emit)
            }
            other => {
                let v = self.eval(fr, this, other)?;
                if self.values_equal(&v, value)? {
                    emit(self, fr)
                } else {
                    Ok(true)
                }
            }
        }
    }

    /// Converts `value` into an instance of `class` using `class`'s equality
    /// constructor (operationally: find a `class` object equal to `value`).
    pub(crate) fn convert_via_equals(
        &mut self,
        class: &str,
        value: &Value,
    ) -> RtResult<Option<Value>> {
        let plan = self.plan;
        let Some(pid) = plan.lookup_impl(class, "equals") else {
            return Ok(None);
        };
        let decl = &plan.method(pid).info.decl;
        let MethodBody::Formula(body) = &decl.body else {
            return Ok(None);
        };
        let mut env = Bindings::new();
        if let Some(p) = decl.params.first() {
            env.insert(p.name.clone(), value.clone());
        }
        let mut result = None;
        self.try_equals_reconstruction(class, body, &env, &mut result)?;
        Ok(result)
    }

    /// Handles equality-constructor bodies of the shape used in the paper
    /// (Figure 4): a disjunction of `ctor_i(..) && n.ctor_i(..)` conjuncts.
    fn try_equals_reconstruction(
        &mut self,
        class: &str,
        body: &Formula,
        env: &Bindings,
        result: &mut Option<Value>,
    ) -> RtResult<()> {
        match body {
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.try_equals_reconstruction(class, a, env, result)?;
                if result.is_none() {
                    self.try_equals_reconstruction(class, b, env, result)?;
                }
                Ok(())
            }
            Formula::And(a, b) => {
                // Expect `ctor(args...) && n.ctor(args...)`.
                if let (Formula::Atom(own), Formula::Atom(other)) = (a.as_ref(), b.as_ref()) {
                    if let (
                        Expr::Call {
                            name: own_name,
                            receiver: None,
                            ..
                        },
                        Expr::Call {
                            name: other_name,
                            receiver: Some(recv),
                            ..
                        },
                    ) = (own, other)
                    {
                        if own_name == other_name {
                            if let Expr::Var(param) = recv.as_ref() {
                                if let Some(target) = env.get(param).cloned() {
                                    // Deconstruct the target with the shared
                                    // constructor, then rebuild in `class`.
                                    if let Ok(rows) = self.deconstruct(&target, other_name) {
                                        if let Some(row) = rows.first() {
                                            let rebuilt =
                                                self.construct(class, own_name, row.clone())?;
                                            *result = Some(rebuilt);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Formula::Atom(Expr::Call {
                receiver: Some(recv),
                name,
                ..
            }) => {
                // `n.zero()` style: the whole body is a predicate on the
                // other object; rebuild the matching nullary constructor.
                if let Expr::Var(param) = recv.as_ref() {
                    if let Some(target) = env.get(param).cloned() {
                        if self.matches_constructor(&target, name)? {
                            *result = Some(self.construct(class, name, Vec::new())?);
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Ground evaluation
    // ------------------------------------------------------------------

    /// Whether every variable mentioned by the expression is bound.
    pub(crate) fn ground(&self, fr: &Frame, this: Option<&Value>, e: &PExpr) -> bool {
        match e {
            PExpr::Int(_) | PExpr::Bool(_) | PExpr::Str(_) | PExpr::Null => true,
            PExpr::This => this.is_some(),
            PExpr::Result(s) => fr[*s as usize].is_some(),
            PExpr::Wildcard | PExpr::Decl(..) => false,
            PExpr::Name {
                slot,
                name,
                class_ref,
            } => {
                fr[*slot as usize].is_some()
                    || this
                        .and_then(|t| t.class())
                        .map(|c| self.table.field_type(c, name).is_some())
                        .unwrap_or(false)
                    || *class_ref
            }
            PExpr::Field(b, _) => self.ground(fr, this, b),
            PExpr::Call { receiver, args, .. } => {
                receiver
                    .as_deref()
                    .map(|r| self.ground(fr, this, r))
                    .unwrap_or(true)
                    && args.iter().all(|a| self.ground(fr, this, a))
            }
            PExpr::Index(a, b) | PExpr::Binary(_, a, b) => {
                self.ground(fr, this, a) && self.ground(fr, this, b)
            }
            PExpr::NewArray(_, a) | PExpr::Neg(a) => self.ground(fr, this, a),
            PExpr::Tuple(xs) => xs.iter().all(|x| self.ground(fr, this, x)),
            PExpr::As(a, b) | PExpr::OrPat(a, b) => {
                self.ground(fr, this, a) && self.ground(fr, this, b)
            }
            PExpr::Where(p, _) => self.ground(fr, this, p),
        }
    }

    /// Evaluates a ground expression.
    pub(crate) fn eval(&mut self, fr: &Frame, this: Option<&Value>, e: &PExpr) -> RtResult<Value> {
        match e {
            PExpr::Int(n) => Ok(Value::Int(*n)),
            PExpr::Bool(b) => Ok(Value::Bool(*b)),
            PExpr::Str(s) => Ok(Value::Str(s.clone())),
            PExpr::Null => Ok(Value::Null),
            PExpr::This => this
                .cloned()
                .ok_or_else(|| RtError::new("`this` is not in scope")),
            PExpr::Result(s) => fr[*s as usize]
                .clone()
                .ok_or_else(|| RtError::new("`result` is not bound")),
            PExpr::Name { slot, name, .. } => {
                if let Some(v) = &fr[*slot as usize] {
                    return Ok(v.clone());
                }
                if let Some(Value::Obj(o)) = this {
                    if let Some(v) = o.fields.get(name) {
                        return Ok(v.clone());
                    }
                }
                Err(RtError::new(format!("unbound variable `{name}`")))
            }
            PExpr::Field(base, field) => {
                let b = self.eval(fr, this, base)?;
                match b {
                    Value::Obj(o) => o
                        .fields
                        .get(field)
                        .cloned()
                        .ok_or_else(|| RtError::new(format!("no field `{field}`"))),
                    other => Err(RtError::new(format!("field access on non-object {other}"))),
                }
            }
            PExpr::Binary(op, a, b) => {
                let x = self
                    .eval(fr, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let y = self
                    .eval(fr, this, b)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let v = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RtError::new("division by zero"));
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(RtError::new("remainder by zero"));
                        }
                        x % y
                    }
                };
                Ok(Value::Int(v))
            }
            PExpr::Neg(a) => {
                let x = self
                    .eval(fr, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("negation of non-integer"))?;
                Ok(Value::Int(-x))
            }
            PExpr::Call {
                receiver,
                name,
                args,
                kind,
            } => {
                let arg_values: RtResult<Vec<Value>> =
                    args.iter().map(|a| self.eval(fr, this, a)).collect();
                let arg_values = arg_values?;
                match kind {
                    CallKind::StaticConstruct(class) => {
                        self.construct(&class.clone(), name, arg_values)
                    }
                    CallKind::Instance => {
                        let r = receiver
                            .as_deref()
                            .expect("instance call without a receiver");
                        let recv = self.eval(fr, this, r)?;
                        self.call_method(&recv, name, arg_values)
                    }
                    CallKind::ClassCtor(class) => {
                        let pid = self.plan.class_ctor(class).ok_or_else(|| {
                            RtError::new(format!("no class constructor for `{name}`"))
                        })?;
                        self.run_forward(pid, None, arg_values)
                    }
                    CallKind::Free => self.call_free(name, arg_values),
                    CallKind::ThisMethod => match this {
                        Some(t) => {
                            let t = t.clone();
                            self.call_method(&t, name, arg_values)
                        }
                        None => Err(RtError::new(format!("cannot resolve call `{name}`"))),
                    },
                    CallKind::Unresolved => {
                        Err(RtError::new(format!("cannot resolve call `{name}`")))
                    }
                }
            }
            PExpr::Tuple(_) => Err(RtError::new("tuples are not first-class values")),
            other => Err(RtError::new(format!("cannot evaluate {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        stmts: &[StmtPlan],
    ) -> RtResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(fr, this, stmt)? {
                Flow::Normal => {}
                r @ Flow::Return(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    /// First solution of a goal, as a frame snapshot.
    fn first_solution(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        goal: &Goal,
    ) -> RtResult<Option<Frame>> {
        let mut sol = None;
        self.solve(fr, this, goal, &mut |_, f| {
            sol = Some(f.clone());
            Ok(false)
        })?;
        Ok(sol)
    }

    fn exec_stmt(
        &mut self,
        fr: &mut Frame,
        this: Option<&Value>,
        stmt: &StmtPlan,
    ) -> RtResult<Flow> {
        match stmt {
            StmtPlan::Let(goal) => match self.first_solution(fr, this, goal)? {
                Some(sol) => {
                    *fr = sol;
                    Ok(Flow::Normal)
                }
                None => Err(RtError::new("let statement failed to match")),
            },
            StmtPlan::Switch {
                scrutinees,
                cases,
                bodies,
                default,
            } => {
                let values: RtResult<Vec<Value>> =
                    scrutinees.iter().map(|s| self.eval(fr, this, s)).collect();
                let values = values?;
                let save = fr.clone();
                for case in cases {
                    let mut matched = true;
                    for (p, v) in case.patterns.iter().zip(values.iter()) {
                        let mut sol: Option<Frame> = None;
                        self.match_pat(fr, this, p, v, &mut |_, f| {
                            sol = Some(f.clone());
                            Ok(false)
                        })?;
                        match sol {
                            Some(s) => *fr = s,
                            None => {
                                matched = false;
                                break;
                            }
                        }
                    }
                    if matched {
                        let body: &[StmtPlan] = match case.target {
                            CaseTarget::Body(j) => &bodies[j],
                            CaseTarget::Default => default.as_deref().unwrap_or(&[]),
                            CaseTarget::FellOff => {
                                *fr = save;
                                return Err(RtError::new("switch fell off the end"));
                            }
                        };
                        let flow = self.exec_block(fr, this, body);
                        // The case's bindings are local to its body.
                        *fr = save;
                        return flow;
                    }
                    *fr = save.clone();
                }
                if let Some(d) = default {
                    return self.exec_block(fr, this, d);
                }
                Err(RtError::new("non-exhaustive switch at run time"))
            }
            StmtPlan::Cond { arms, else_arm } => {
                for (goal, body) in arms {
                    if let Some(sol) = self.first_solution(fr, this, goal)? {
                        let save = std::mem::replace(fr, sol);
                        let flow = self.exec_block(fr, this, body);
                        *fr = save;
                        return flow;
                    }
                }
                if let Some(body) = else_arm {
                    return self.exec_block(fr, this, body);
                }
                Err(RtError::new("non-exhaustive cond at run time"))
            }
            StmtPlan::If { cond, then, els } => match self.first_solution(fr, this, cond)? {
                Some(sol) => {
                    let save = std::mem::replace(fr, sol);
                    let flow = self.exec_block(fr, this, then);
                    *fr = save;
                    flow
                }
                None => match els {
                    Some(e) => self.exec_block(fr, this, e),
                    None => Ok(Flow::Normal),
                },
            },
            StmtPlan::Foreach {
                goal,
                declared,
                body,
            } => {
                let mut solutions: Vec<Frame> = Vec::new();
                self.solve(fr, this, goal, &mut |_, f| {
                    solutions.push(f.clone());
                    Ok(true)
                })?;
                for mut b in solutions {
                    // The loop body sees the solution's bindings plus any
                    // updates made by earlier iterations to outer variables;
                    // outer updates win over stale solution copies, except
                    // for variables the formula declares.
                    for s in 0..fr.len() {
                        match (&fr[s], &b[s]) {
                            (Some(v), None) => b[s] = Some(v.clone()),
                            (Some(v), Some(w)) if w != v && !declared.contains(&(s as SlotId)) => {
                                b[s] = Some(v.clone())
                            }
                            _ => {}
                        }
                    }
                    let flow = self.exec_block(&mut b, this, body)?;
                    // Propagate updates to variables that already existed.
                    for s in 0..fr.len() {
                        if fr[s].is_some() {
                            fr[s] = b[s].clone();
                        }
                    }
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            StmtPlan::While { cond, body } => {
                let mut guard = 0;
                loop {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(RtError::new("while loop exceeded iteration budget"));
                    }
                    match self.first_solution(fr, this, cond)? {
                        Some(sol) => {
                            *fr = sol;
                            if let Flow::Return(v) = self.exec_block(fr, this, body)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                        None => return Ok(Flow::Normal),
                    }
                }
            }
            StmtPlan::Return(e) => {
                let v = match e {
                    Some(expr) => self.eval(fr, this, expr)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            StmtPlan::Assign(slot, e) => {
                let v = self.eval(fr, this, e)?;
                fr[*slot as usize] = Some(v);
                Ok(Flow::Normal)
            }
            StmtPlan::AssignUnsupported(e) => {
                let _ = self.eval(fr, this, e)?;
                Err(RtError::new("unsupported assignment target"))
            }
            StmtPlan::Expr(e) => {
                let _ = self.eval(fr, this, e)?;
                Ok(Flow::Normal)
            }
            StmtPlan::Block(stmts) => {
                let save = fr.clone();
                let flow = self.exec_block(fr, this, stmts)?;
                // Inner-only bindings are dropped; updates to outer
                // variables persist.
                for s in 0..fr.len() {
                    if save[s].is_none() {
                        fr[s] = None;
                    }
                }
                Ok(flow)
            }
        }
    }
}
