//! # jmatch-runtime
//!
//! Dynamic semantics for the JMatch 2.0 reproduction. The paper compiles
//! JMatch to Java_yield (coroutines) and then to Java, *statically* selecting
//! a solved form per mode (§2.3); this crate executes the same programs
//! through the corresponding two-stage pipeline:
//!
//! 1. [`jmatch_core::lower`] compiles every method body into a
//!    mode-specialized query plan (one-time work per program), and
//! 2. the **plan evaluator** ([`PlanInterp`]) runs those plans over flat
//!    slot frames with explicit choice points.
//!
//! The original **tree-walking interpreter** ([`TreeWalker`]) — which
//! re-discovers the solving order for every formula at every call — remains
//! callable behind [`Engine::TreeWalk`] as a differential-testing oracle;
//! `tests/differential.rs` runs every corpus program through both engines
//! and asserts identical values, bindings, and enumeration order.
//!
//! Both engines support:
//!
//! * forward, backward (pattern-matching) and iterative modes of methods with
//!   declarative bodies,
//! * named constructors with dynamic dispatch on the matched object's runtime
//!   class, and equality constructors for cross-implementation equality
//!   (§3.1–3.2),
//! * `switch` (with fall-through), `cond`, `let`, `if`, `foreach` and `while`
//!   statements in imperative bodies, and
//! * invertible integer arithmetic in patterns (`ZNat(val - 1) = n` solves
//!   for `val`).
//!
//! ## Example
//!
//! ```
//! use jmatch_core::{compile, CompileOptions};
//! use jmatch_runtime::{Interp, Value};
//!
//! let source = r#"
//!     class Box {
//!         int v;
//!         constructor of(int n) returns(n) ( v = n )
//!     }
//!     static int unbox(Box b) {
//!         switch (b) {
//!             case of(int n): return n;
//!         }
//!     }
//! "#;
//! let compiled = compile(source, &CompileOptions { verify: false, ..Default::default() })?;
//! let interp = Interp::new(compiled.table.clone());
//! let boxed = interp.construct("Box", "of", vec![Value::Int(7)]).unwrap();
//! let out = interp.call_free("unbox", vec![boxed]).unwrap();
//! assert_eq!(out, Value::Int(7));
//! # Ok::<(), jmatch_syntax::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod tree;

pub use eval::PlanInterp;
pub use tree::TreeWalker;

use jmatch_core::lower::ProgramPlan;
use jmatch_core::table::ClassTable;
use jmatch_syntax::ast::{Expr, Formula};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// The null reference.
    Null,
    /// An object: its runtime class and field values.
    Obj(Arc<Object>),
}

/// A heap object.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Runtime class name.
    pub class: String,
    /// Field values.
    pub fields: HashMap<String, Value>,
}

impl Value {
    /// Convenience accessor for integers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience accessor for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The runtime class of an object value.
    pub fn class(&self) -> Option<&str> {
        match self {
            Value::Obj(o) => Some(&o.class),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Null => write!(f, "null"),
            Value::Obj(o) => {
                write!(f, "{}(", o.class)?;
                let mut fields: Vec<_> = o.fields.iter().collect();
                fields.sort_by(|a, b| a.0.cmp(b.0));
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// What went wrong, in a machine-inspectable form.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtErrorKind {
    /// A method / constructor lookup failed.
    MethodNotFound {
        /// The class (or `<toplevel>`) the lookup started from.
        scope: String,
        /// The requested method name.
        name: String,
    },
    /// A call supplied the wrong number of arguments.
    ArityMismatch {
        /// The qualified method name.
        method: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },
    /// A method was used in a mode it does not support.
    ModeMismatch {
        /// The qualified method name.
        method: String,
        /// The requested mode.
        requested: String,
    },
    /// Any other runtime failure.
    Other,
}

/// A runtime error (match failure, unsolvable formula, missing method, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtError {
    /// Description of the failure.
    pub message: String,
    /// The structured failure category.
    pub kind: RtErrorKind,
}

impl RtError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        RtError {
            message: message.into(),
            kind: RtErrorKind::Other,
        }
    }

    pub(crate) fn method_not_found(scope: &str, name: &str) -> Self {
        RtError {
            message: format!("method `{name}` not found on `{scope}`"),
            kind: RtErrorKind::MethodNotFound {
                scope: scope.to_owned(),
                name: name.to_owned(),
            },
        }
    }

    pub(crate) fn arity_mismatch(method: &str, expected: usize, actual: usize) -> Self {
        RtError {
            message: format!("{method} expects {expected} argument(s), got {actual}"),
            kind: RtErrorKind::ArityMismatch {
                method: method.to_owned(),
                expected,
                actual,
            },
        }
    }

    pub(crate) fn mode_mismatch(method: &str, requested: &str) -> Self {
        RtError {
            message: format!(
                "{method} does not support the {requested} mode: it has no declarative body"
            ),
            kind: RtErrorKind::ModeMismatch {
                method: method.to_owned(),
                requested: requested.to_owned(),
            },
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RtError {}

/// Result alias for runtime operations.
pub type RtResult<T> = Result<T, RtError>;

/// Variable bindings during formula solving / statement execution.
pub type Bindings = HashMap<String, Value>;

/// Control flow out of a statement.
pub(crate) enum Flow {
    Normal,
    Return(Value),
}

/// Which execution engine an [`Interp`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The plan evaluator over lowered query plans (the default).
    #[default]
    Plan,
    /// The legacy tree-walking interpreter, kept as a differential-testing
    /// oracle.
    TreeWalk,
}

/// The interpreter facade: one API, two engines.
///
/// [`Interp::new`] compiles the program's query plans once and executes them
/// with the plan evaluator; [`Interp::with_engine`] selects the legacy
/// tree-walker instead.
#[derive(Debug, Clone)]
pub struct Interp {
    engine: Engine,
    tree: TreeWalker,
    plan: Option<PlanInterp>,
}

impl Interp {
    /// Creates an interpreter over a resolved program, using the plan
    /// evaluator. Lowering runs here — once per program, not per call.
    pub fn new(table: Arc<ClassTable>) -> Self {
        Self::with_engine(table, Engine::Plan)
    }

    /// Creates an interpreter with an explicit engine choice.
    pub fn with_engine(table: Arc<ClassTable>, engine: Engine) -> Self {
        let plan = match engine {
            Engine::Plan => Some(PlanInterp::new(ProgramPlan::compile(Arc::clone(&table)))),
            Engine::TreeWalk => None,
        };
        Interp {
            engine,
            tree: TreeWalker::new(table),
            plan,
        }
    }

    /// The engine this interpreter executes with.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The class table the interpreter runs against.
    pub fn table(&self) -> &ClassTable {
        self.tree.table()
    }

    /// The compiled program plan, when the plan engine is active.
    pub fn plan(&self) -> Option<&Arc<ProgramPlan>> {
        self.plan.as_ref().map(PlanInterp::plan)
    }

    /// Invokes a named or class constructor of `class` in the forward mode.
    pub fn construct(&self, class: &str, ctor: &str, args: Vec<Value>) -> RtResult<Value> {
        match &self.plan {
            Some(p) => p.construct(class, ctor, args),
            None => self.tree.construct(class, ctor, args),
        }
    }

    /// Calls a free-standing (top-level) method.
    pub fn call_free(&self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        match &self.plan {
            Some(p) => p.call_free(name, args),
            None => self.tree.call_free(name, args),
        }
    }

    /// Calls an instance method in the forward mode.
    pub fn call_method(&self, receiver: &Value, name: &str, args: Vec<Value>) -> RtResult<Value> {
        match &self.plan {
            Some(p) => p.call_method(receiver, name, args),
            None => self.tree.call_method(receiver, name, args),
        }
    }

    /// Enumerates the solutions of matching `value` against the named
    /// constructor `ctor` (the backward mode): each solution is the vector of
    /// values bound to the constructor's parameters.
    pub fn deconstruct(&self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        match &self.plan {
            Some(p) => p.deconstruct(value, ctor),
            None => self.tree.deconstruct(value, ctor),
        }
    }

    /// Tests whether `value` matches the named constructor `ctor` (predicate
    /// use of a named constructor, e.g. `ZNat(0).zero()`).
    pub fn matches_constructor(&self, value: &Value, ctor: &str) -> RtResult<bool> {
        match &self.plan {
            Some(p) => p.matches_constructor(value, ctor),
            None => self.tree.matches_constructor(value, ctor),
        }
    }

    /// Deep equality, using equality constructors (§3.2) across different
    /// implementations of the same abstraction.
    pub fn values_equal(&self, a: &Value, b: &Value) -> RtResult<bool> {
        match &self.plan {
            Some(p) => p.values_equal(a, b),
            None => self.tree.values_equal(a, b),
        }
    }

    /// Enumerates solutions of a formula. `emit` returns `false` to stop.
    ///
    /// With the plan engine, the formula is lowered on the fly against the
    /// entry bindings; `depth` is ignored. With the tree-walker, `depth`
    /// seeds the recursion guard, as before.
    pub fn solve(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        f: &Formula,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        match &self.plan {
            Some(p) => p.solve(env, this, f, emit),
            None => self.tree.solve(env, this, f, depth, emit),
        }
    }

    /// Evaluates a ground expression.
    pub fn eval(&self, env: &Bindings, this: Option<&Value>, e: &Expr) -> RtResult<Value> {
        // Ground evaluation has no mode choice to specialize; both engines
        // share the tree-walker's implementation.
        self.tree.eval(env, this, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_core::{compile, CompileOptions};
    use jmatch_syntax::ast::MethodBody;

    fn interp_for(src: &str, engine: Engine) -> Interp {
        let compiled = compile(
            src,
            &CompileOptions {
                verify: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        Interp::with_engine(compiled.table.clone(), engine)
    }

    fn both_engines(src: &str) -> [Interp; 2] {
        [
            interp_for(src, Engine::Plan),
            interp_for(src, Engine::TreeWalk),
        ]
    }

    const NAT_PROGRAM: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
            constructor equals(Nat n);
        }
        class ZNat implements Nat {
            int val;
            private invariant(val >= 0);
            private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
            constructor zero() returns() ( val = 0 )
            constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
            constructor equals(Nat n) ( zero() && n.zero() | succ(Nat y) && n.succ(y) )
        }
        class PZero implements Nat {
            constructor zero() returns() ( true )
            constructor succ(Nat n) returns(n) ( false )
            constructor equals(Nat n) ( n.zero() )
        }
        class PSucc implements Nat {
            Nat pred;
            constructor zero() returns() ( false )
            constructor succ(Nat n) returns(n) ( pred = n )
            constructor equals(Nat n) ( n.succ(pred) )
        }
        static Nat plus(Nat m, Nat n) {
            switch (m, n) {
                case (zero(), Nat x):
                case (x, zero()):
                    return x;
                case (succ(Nat k), _):
                    return plus(k, ZNat.succ(n));
            }
        }
    "#;

    fn znat(interp: &Interp, n: i64) -> Value {
        let mut v = interp.construct("ZNat", "zero", vec![]).unwrap();
        for _ in 0..n {
            v = interp.construct("ZNat", "succ", vec![v]).unwrap();
        }
        v
    }

    fn znat_value(v: &Value) -> i64 {
        match v {
            Value::Obj(o) => o.fields["val"].as_int().unwrap(),
            _ => panic!("not a ZNat"),
        }
    }

    #[test]
    fn construct_and_deconstruct_znat() {
        for interp in both_engines(NAT_PROGRAM) {
            let three = znat(&interp, 3);
            assert_eq!(znat_value(&three), 3);
            // Backward mode: succ(three) yields the predecessor.
            let rows = interp.deconstruct(&three, "succ").unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(znat_value(&rows[0][0]), 2);
            // zero() does not match three.
            assert!(!interp.matches_constructor(&three, "zero").unwrap());
            let zero = znat(&interp, 0);
            assert!(interp.matches_constructor(&zero, "zero").unwrap());
        }
    }

    #[test]
    fn plus_adds_znat_numbers() {
        for interp in both_engines(NAT_PROGRAM) {
            let a = znat(&interp, 2);
            let b = znat(&interp, 3);
            let sum = interp.call_free("plus", vec![a, b]).unwrap();
            assert_eq!(znat_value(&sum), 5);
        }
    }

    #[test]
    fn plus_handles_zero_cases() {
        for interp in both_engines(NAT_PROGRAM) {
            let zero = znat(&interp, 0);
            let four = znat(&interp, 4);
            let s1 = interp
                .call_free("plus", vec![zero.clone(), four.clone()])
                .unwrap();
            assert_eq!(znat_value(&s1), 4);
            let s2 = interp.call_free("plus", vec![four, zero]).unwrap();
            assert_eq!(znat_value(&s2), 4);
        }
    }

    #[test]
    fn peano_implementation_interoperates() {
        for interp in both_engines(NAT_PROGRAM) {
            // Build 2 using the Peano classes: PSucc(PSucc(PZero)).
            let p0 = interp.construct("PZero", "zero", vec![]).unwrap();
            let p1 = interp.construct("PSucc", "succ", vec![p0]).unwrap();
            let p2 = interp.construct("PSucc", "succ", vec![p1]).unwrap();
            // Deconstruct with the named constructor.
            let rows = interp.deconstruct(&p2, "succ").unwrap();
            assert_eq!(rows.len(), 1);
            // Equality constructors let ZNat(2) equal PSucc(PSucc(PZero)).
            let z2 = znat(&interp, 2);
            assert!(interp.values_equal(&z2, &p2).unwrap());
            let z3 = znat(&interp, 3);
            assert!(!interp.values_equal(&z3, &p2).unwrap());
        }
    }

    #[test]
    fn iterative_mode_enumerates_solutions() {
        let src = r#"
            class Range {
                boolean below(int n, int x) iterates(x)
                    ( x = 0 || x = 1 || x = 2 )
            }
        "#;
        for interp in both_engines(src) {
            let range = Value::Obj(Arc::new(Object {
                class: "Range".into(),
                fields: HashMap::new(),
            }));
            let minfo = interp
                .table()
                .lookup_method("Range", "below")
                .unwrap()
                .clone();
            let MethodBody::Formula(f) = &minfo.decl.body else {
                panic!()
            };
            let mut env = Bindings::new();
            env.insert("n".into(), Value::Int(3));
            let mut seen = Vec::new();
            interp
                .solve(&env, Some(&range), f, 0, &mut |b| {
                    seen.push(b.get("x").and_then(|v| v.as_int()).unwrap());
                    true
                })
                .unwrap();
            assert_eq!(seen, vec![0, 1, 2]);
        }
    }

    #[test]
    fn cond_and_let_statements_execute() {
        let src = r#"
            class M {
                int classify(int x) {
                    int doubled = x + x;
                    cond {
                        (doubled >= 10) { return 1; }
                        (doubled >= 0) { return 0; }
                        else { return -1; }
                    }
                }
            }
        "#;
        for interp in both_engines(src) {
            let obj = Value::Obj(Arc::new(Object {
                class: "M".into(),
                fields: HashMap::new(),
            }));
            assert_eq!(
                interp
                    .call_method(&obj, "classify", vec![Value::Int(6)])
                    .unwrap(),
                Value::Int(1)
            );
            assert_eq!(
                interp
                    .call_method(&obj, "classify", vec![Value::Int(2)])
                    .unwrap(),
                Value::Int(0)
            );
            assert_eq!(
                interp
                    .call_method(&obj, "classify", vec![Value::Int(-3)])
                    .unwrap(),
                Value::Int(-1)
            );
        }
    }

    #[test]
    fn foreach_iterates_all_solutions() {
        let src = r#"
            class M {
                int sum3() {
                    int total = 0;
                    foreach (int x = 1 # 2 # 3) {
                        total = total + x;
                    }
                    return total;
                }
            }
        "#;
        for interp in both_engines(src) {
            let obj = Value::Obj(Arc::new(Object {
                class: "M".into(),
                fields: HashMap::new(),
            }));
            assert_eq!(
                interp.call_method(&obj, "sum3", vec![]).unwrap(),
                Value::Int(6)
            );
        }
    }

    #[test]
    fn runtime_match_failure_is_an_error() {
        for interp in both_engines(NAT_PROGRAM) {
            // ZNat's private constructor requires n >= 0.
            let err = interp.construct("ZNat", "ZNat", vec![Value::Int(-1)]);
            assert!(err.is_err());
        }
    }

    #[test]
    fn arity_errors_name_the_method_and_counts() {
        for interp in both_engines(NAT_PROGRAM) {
            let err = interp.construct("ZNat", "succ", vec![]).unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::ArityMismatch {
                    method: "ZNat.succ".into(),
                    expected: 1,
                    actual: 0,
                }
            );
            assert!(err.message.contains("ZNat.succ"));
            assert!(err.message.contains('1') && err.message.contains('0'));
        }
    }

    #[test]
    fn missing_method_errors_name_scope_and_method() {
        for interp in both_engines(NAT_PROGRAM) {
            let err = interp.call_free("nosuch", vec![]).unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::MethodNotFound {
                    scope: "<toplevel>".into(),
                    name: "nosuch".into(),
                }
            );
            let two = znat(&interp, 2);
            let err = interp.call_method(&two, "nosuch", vec![]).unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::MethodNotFound {
                    scope: "ZNat".into(),
                    name: "nosuch".into(),
                }
            );
        }
    }

    #[test]
    fn mode_errors_name_the_requested_mode() {
        let src = r#"
            class M {
                int imperative(int x) { return x; }
            }
            static int probe(M m) {
                switch (m) {
                    case imperative(int n): return n;
                }
            }
        "#;
        for interp in both_engines(src) {
            let obj = Value::Obj(Arc::new(Object {
                class: "M".into(),
                fields: HashMap::new(),
            }));
            let err = interp.call_free("probe", vec![obj]).unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::ModeMismatch {
                    method: "M.imperative".into(),
                    requested: "backward (pattern-matching)".into(),
                }
            );
        }
    }

    #[test]
    fn value_display_is_readable() {
        let interp = interp_for(NAT_PROGRAM, Engine::Plan);
        let two = znat(&interp, 2);
        let text = two.to_string();
        assert!(text.contains("ZNat"));
        assert!(text.contains("val = 2"));
    }

    #[test]
    fn plan_engine_exposes_its_program_plan() {
        let interp = interp_for(NAT_PROGRAM, Engine::Plan);
        let plan = interp.plan().expect("plan engine has a plan");
        assert!(plan.lookup_impl("ZNat", "succ").is_some());
        let tree = interp_for(NAT_PROGRAM, Engine::TreeWalk);
        assert!(tree.plan().is_none());
    }
}
