//! # jmatch-runtime
//!
//! Dynamic semantics for the JMatch 2.0 reproduction. The paper compiles
//! JMatch to Java_yield (coroutines) and then to Java, *statically* selecting
//! a solved form per mode (§2.3); this crate executes the same programs
//! through the corresponding two-stage pipeline:
//!
//! 1. [`jmatch_core::lower`] compiles every method body into a
//!    mode-specialized query plan (one-time work per program), and
//! 2. the **plan evaluator** ([`PlanInterp`]) runs those plans over flat
//!    slot frames with explicit choice points.
//!
//! The original **tree-walking interpreter** ([`TreeWalker`]) — which
//! re-discovers the solving order for every formula at every call — remains
//! callable behind [`Engine::TreeWalk`] as a differential-testing oracle;
//! `tests/differential.rs` runs every corpus program through both engines
//! and asserts identical values, bindings, and enumeration order.
//!
//! Both engines support:
//!
//! * forward, backward (pattern-matching) and iterative modes of methods with
//!   declarative bodies,
//! * named constructors with dynamic dispatch on the matched object's runtime
//!   class, and equality constructors for cross-implementation equality
//!   (§3.1–3.2),
//! * `switch` (with fall-through), `cond`, `let`, `if`, `foreach` and `while`
//!   statements in imperative bodies, and
//! * invertible integer arithmetic in patterns (`ZNat(val - 1) = n` solves
//!   for `val`).
//!
//! ## The embedding API
//!
//! The paper's compilation target — Java_yield coroutines that *lazily*
//! yield one solution at a time — is mirrored by the [`Workspace`] /
//! [`Program`] / [`Query`] surface: build once into a cheap-to-clone,
//! `Send + Sync` [`Program`], resolve method lookups once into
//! [`MethodRef`] / [`CtorRef`] handles, and pull solutions through the
//! [`Solutions`] iterator, which does O(first solution) work for
//! `take(1)` instead of enumerating everything.
//!
//! ```
//! use jmatch_runtime::{args, Value, Workspace};
//!
//! let source = r#"
//!     class Box {
//!         int v;
//!         constructor of(int n) returns(n) ( v = n )
//!     }
//!     static int unbox(Box b) {
//!         switch (b) {
//!             case of(int n): return n;
//!         }
//!     }
//! "#;
//! let mut ws = Workspace::new().verify(false);
//! let program = ws.compile(source)?;
//! let of = program.ctor("Box", "of")?;       // resolved once
//! let unbox = program.free_method("unbox")?; // resolved once
//! let boxed = of.construct(args![7])?;
//! assert_eq!(unbox.call(None, args![boxed])?, Value::Int(7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The workspace is long-lived: [`Workspace::update_source`] /
//! [`Workspace::update_method`] rebuild the *next* program generation
//! incrementally — re-lowering, re-verifying and re-emitting bytecode only
//! for the methods an edit touched, sharing every other compiled artifact
//! with the previous generation by `Arc` (see the [`workspace`] module
//! docs for the red/green rules).
//!
//! ## OR-parallel enumeration
//!
//! The stack machine's explicit choice points are splittable:
//! [`Query::par_solutions`] runs one enumeration across a work-stealing
//! pool of workers (each replaying a choice-path prefix on its own
//! machine over the shared plan), with a reorder buffer restoring the
//! exact sequential solution order — or
//! [`Query::par_solutions_unordered`] for raw throughput. One shared
//! atomic step pool makes [`Limits::max_steps`] bound the combined work
//! of the pool, and [`Program::query_many`] /
//! [`MethodRef::iterate_many`] batch many queries over one pool.
//!
//! ## Serving
//!
//! The [`serve`] module turns the embedding API into a multi-tenant TCP
//! query service: a bounded single-flight program cache (compile once,
//! serve forever), per-tenant step quotas with reserve/settle grant
//! accounting, bounded admission with round-robin fairness, and a
//! length-prefixed JSON wire protocol with streamed solution batches —
//! see `PROTOCOL.md` and the `jmatch-serve` / `jmatch-loadgen` binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod api;
pub mod eval;
mod machine;
mod par;
pub mod serve;
pub mod tree;
pub mod workspace;

#[allow(deprecated)]
pub use api::Compiler;
pub use api::{CtorRef, Limits, MethodRef, Program, Query, Solutions};
pub use eval::PlanInterp;
pub use tree::TreeWalker;
pub use workspace::{Generation, RebuildReport, Workspace};

use jmatch_core::intern::Sym;
use jmatch_core::table::ClassLayout;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A runtime value.
///
/// The enum is `#[non_exhaustive]`: future dialect growth (floats, arrays,
/// ...) may add variants without a semver break, so downstream matches need
/// a wildcard arm. Prefer the typed accessors ([`Value::as_int`],
/// [`Value::as_str`], [`Value::field`]) and the [`From`] / [`TryFrom`]
/// conversions over matching by hand.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// The null reference.
    Null,
    /// An object: its runtime class layout and field slots.
    Obj(Arc<Object>),
}

/// Equality on values: `Obj` short-circuits on pointer identity
/// (`Arc::ptr_eq`) before falling back to structural, slot-wise
/// comparison; everything else compares structurally.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Obj(a), Value::Obj(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

/// A heap object: the compile-time [`ClassLayout`] of its runtime class
/// (shared by every instance of the class) plus one flat slot of field
/// values in layout order. Reading a field is a slot index away — no
/// per-object hash map, no string hashing.
///
/// Construct instances through a constructor ([`CtorRef::construct`]) or
/// [`Program::instance`]; the string-keyed accessors ([`Object::get`],
/// [`Value::field`]) resolve names through the layout at the API boundary.
#[derive(Debug, Clone)]
pub struct Object {
    layout: Arc<ClassLayout>,
    fields: Box<[Value]>,
}

impl Object {
    /// Creates an object over a class layout with the given field values
    /// in slot order. Missing trailing fields are `Null`.
    ///
    /// # Panics
    ///
    /// Panics when more values than the layout has slots are supplied —
    /// silently dropping a value would hide an off-by-one at the
    /// construction site.
    pub fn new(layout: Arc<ClassLayout>, mut fields: Vec<Value>) -> Self {
        assert!(
            fields.len() <= layout.num_fields(),
            "{} field values supplied for the {}-slot layout of `{}`",
            fields.len(),
            layout.num_fields(),
            layout.name(),
        );
        fields.resize(layout.num_fields(), Value::Null);
        Object {
            layout,
            fields: fields.into(),
        }
    }

    /// The runtime class name.
    pub fn class(&self) -> &str {
        self.layout.name()
    }

    /// The interned runtime class symbol.
    pub fn class_sym(&self) -> Sym {
        self.layout.sym()
    }

    /// The class layout this object is laid out by.
    pub fn layout(&self) -> &Arc<ClassLayout> {
        &self.layout
    }

    /// Field values in slot (declaration) order.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// A field by name (string-keyed API boundary; resolves through the
    /// layout).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.layout.slot_of(name).map(|s| &self.fields[s])
    }

    /// Moves the field storage out, leaving an empty husk. Callers hold
    /// the only reference (via [`Arc::get_mut`]) and drop the husk
    /// immediately, so the broken `len == num_fields` invariant never
    /// escapes.
    pub(crate) fn take_fields(&mut self) -> Box<[Value]> {
        std::mem::take(&mut self.fields)
    }

    /// A field by interned symbol — the hot path. The symbol must come
    /// from the same program's interner as this object's layout; symbols
    /// from another program are meaningless here (the engines guard this
    /// with a layout-identity check and fall back to [`Object::get`]).
    pub fn get_sym(&self, sym: Sym) -> Option<&Value> {
        self.layout.slot_of_sym(sym).map(|s| &self.fields[s])
    }
}

/// Structural object equality: slot-wise when the two objects share a
/// layout (the common, same-program case — no hash-map iteration), and
/// aligned *by field name* for same-named classes from different programs,
/// whose layouts may order fields differently.
impl PartialEq for Object {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.layout, &other.layout) {
            return self.fields == other.fields;
        }
        self.layout.name() == other.layout.name()
            && self.fields.len() == other.fields.len()
            && self
                .layout
                .field_names()
                .iter()
                .zip(self.fields.iter())
                .all(|(name, v)| other.get(name) == Some(v))
    }
}

impl Value {
    /// Convenience accessor for integers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience accessor for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience accessor for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A field of an object value, by name.
    ///
    /// Replaces the `Value::Obj(o) => o.fields["val"]` pattern every
    /// embedder used to write by hand. The name resolves through the
    /// object's [`ClassLayout`] at this string-keyed API boundary; inside
    /// the engines field reads go by slot index.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(o) => o.get(name),
            _ => None,
        }
    }

    /// The runtime class of an object value.
    pub fn class(&self) -> Option<&str> {
        match self {
            Value::Obj(o) => Some(o.class()),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl TryFrom<Value> for i64 {
    type Error = RtError;

    fn try_from(v: Value) -> Result<i64, RtError> {
        v.as_int()
            .ok_or_else(|| RtError::new(format!("expected an int, got {v}")))
    }
}

impl TryFrom<Value> for bool {
    type Error = RtError;

    fn try_from(v: Value) -> Result<bool, RtError> {
        v.as_bool()
            .ok_or_else(|| RtError::new(format!("expected a boolean, got {v}")))
    }
}

impl TryFrom<Value> for String {
    type Error = RtError;

    fn try_from(v: Value) -> Result<String, RtError> {
        match v {
            Value::Str(s) => Ok(s),
            other => Err(RtError::new(format!("expected a string, got {other}"))),
        }
    }
}

/// Builds a `Vec<Value>` argument list from host values, converting each
/// element with [`Value::from`] (so `i64`, `bool`, `&str`, `String` and
/// [`Value`] itself all work).
///
/// ```
/// use jmatch_runtime::{args, Value};
///
/// let xs = args![1, true, "hi", Value::Null];
/// assert_eq!(xs[0], Value::Int(1));
/// assert_eq!(xs[2], Value::Str("hi".into()));
/// assert!(args![].is_empty());
/// ```
#[macro_export]
macro_rules! args {
    () => { ::std::vec::Vec::<$crate::Value>::new() };
    ($($e:expr),+ $(,)?) => { ::std::vec![$($crate::Value::from($e)),+] };
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Null => write!(f, "null"),
            Value::Obj(o) => {
                write!(f, "{}(", o.class())?;
                let mut fields: Vec<(&str, &Value)> = o
                    .layout()
                    .field_names()
                    .iter()
                    .map(String::as_str)
                    .zip(o.fields())
                    .collect();
                fields.sort_by(|a, b| a.0.cmp(b.0));
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// What went wrong, in a machine-inspectable form.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtErrorKind {
    /// A method / constructor lookup failed.
    MethodNotFound {
        /// The class (or `<toplevel>`) the lookup started from.
        scope: String,
        /// The requested method name.
        name: String,
    },
    /// A call supplied the wrong number of arguments.
    ArityMismatch {
        /// The qualified method name.
        method: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },
    /// A method was used in a mode it does not support.
    ModeMismatch {
        /// The qualified method name.
        method: String,
        /// The requested mode.
        requested: String,
    },
    /// A work ceiling of [`Limits`] was hit.
    LimitExceeded {
        /// Which resource ran out: `"depth"` or `"steps"`.
        resource: String,
        /// The configured ceiling that tripped ([`Limits::max_depth`] or
        /// [`Limits::max_steps`]), so limit failures are self-explaining.
        limit: u64,
    },
    /// The run was interrupted from outside (a cancel token or request
    /// deadline fired), not by its own work ceilings.
    Interrupted,
    /// Any other runtime failure.
    Other,
}

impl fmt::Display for RtErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtErrorKind::MethodNotFound { .. } => write!(f, "method-not-found"),
            RtErrorKind::ArityMismatch { .. } => write!(f, "arity-mismatch"),
            RtErrorKind::ModeMismatch { .. } => write!(f, "mode-mismatch"),
            RtErrorKind::LimitExceeded { resource, limit } => {
                write!(f, "limit-exceeded:{resource} (ceiling {limit})")
            }
            RtErrorKind::Interrupted => write!(f, "interrupted"),
            RtErrorKind::Other => write!(f, "other"),
        }
    }
}

/// A runtime error (match failure, unsolvable formula, missing method, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtError {
    /// Description of the failure.
    pub message: String,
    /// The structured failure category.
    pub kind: RtErrorKind,
}

impl RtError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        RtError {
            message: message.into(),
            kind: RtErrorKind::Other,
        }
    }

    pub(crate) fn method_not_found(scope: &str, name: &str) -> Self {
        RtError {
            message: format!("method `{name}` not found on `{scope}`"),
            kind: RtErrorKind::MethodNotFound {
                scope: scope.to_owned(),
                name: name.to_owned(),
            },
        }
    }

    pub(crate) fn arity_mismatch(method: &str, expected: usize, actual: usize) -> Self {
        RtError {
            message: format!("{method} expects {expected} argument(s), got {actual}"),
            kind: RtErrorKind::ArityMismatch {
                method: method.to_owned(),
                expected,
                actual,
            },
        }
    }

    pub(crate) fn mode_mismatch(method: &str, requested: &str) -> Self {
        RtError {
            message: format!(
                "{method} does not support the {requested} mode: it has no declarative body"
            ),
            kind: RtErrorKind::ModeMismatch {
                method: method.to_owned(),
                requested: requested.to_owned(),
            },
        }
    }

    pub(crate) fn interrupted() -> Self {
        RtError {
            message: "evaluation interrupted".into(),
            kind: RtErrorKind::Interrupted,
        }
    }

    pub(crate) fn limit(resource: &str, limit: u64, message: impl Into<String>) -> Self {
        RtError {
            message: format!(
                "{} (configured {resource} ceiling: {limit})",
                message.into()
            ),
            kind: RtErrorKind::LimitExceeded {
                resource: resource.to_owned(),
                limit,
            },
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error[{}]: {}", self.kind, self.message)
    }
}

impl std::error::Error for RtError {}

/// Result alias for runtime operations.
pub type RtResult<T> = Result<T, RtError>;

/// Variable bindings during formula solving / statement execution.
pub type Bindings = HashMap<String, Value>;

/// Control flow out of a statement.
pub(crate) enum Flow {
    Normal,
    Return(Value),
}

/// Which execution engine a [`Program`] uses.
///
/// `#[non_exhaustive]`: future engines (e.g. a compiled backend) may be
/// added without a semver break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Engine {
    /// The plan evaluator over lowered query plans (the default).
    #[default]
    Plan,
    /// The legacy tree-walking interpreter, kept as a differential-testing
    /// oracle.
    TreeWalk,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_core::{compile, CompileOptions};

    fn program_for(src: &str, engine: Engine) -> Program {
        let compiled = compile(
            src,
            &CompileOptions {
                verify: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        Program::from_table(compiled.table, engine)
    }

    fn both_engines(src: &str) -> [Program; 2] {
        [
            program_for(src, Engine::Plan),
            program_for(src, Engine::TreeWalk),
        ]
    }

    const NAT_PROGRAM: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
            constructor equals(Nat n);
        }
        class ZNat implements Nat {
            int val;
            private invariant(val >= 0);
            private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
            constructor zero() returns() ( val = 0 )
            constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
            constructor equals(Nat n) ( zero() && n.zero() | succ(Nat y) && n.succ(y) )
        }
        class PZero implements Nat {
            constructor zero() returns() ( true )
            constructor succ(Nat n) returns(n) ( false )
            constructor equals(Nat n) ( n.zero() )
        }
        class PSucc implements Nat {
            Nat pred;
            constructor zero() returns() ( false )
            constructor succ(Nat n) returns(n) ( pred = n )
            constructor equals(Nat n) ( n.succ(pred) )
        }
        static Nat plus(Nat m, Nat n) {
            switch (m, n) {
                case (zero(), Nat x):
                case (x, zero()):
                    return x;
                case (succ(Nat k), _):
                    return plus(k, ZNat.succ(n));
            }
        }
    "#;

    fn znat(program: &Program, n: i64) -> Value {
        let zero = program.ctor("ZNat", "zero").unwrap();
        let succ = program.ctor("ZNat", "succ").unwrap();
        let mut v = zero.construct(args![]).unwrap();
        for _ in 0..n {
            v = succ.construct(args![v]).unwrap();
        }
        v
    }

    fn znat_value(v: &Value) -> i64 {
        v.field("val").and_then(Value::as_int).expect("not a ZNat")
    }

    fn obj(program: &Program, class: &str) -> Value {
        program.instance(class).unwrap()
    }

    #[test]
    fn construct_and_deconstruct_znat() {
        for program in both_engines(NAT_PROGRAM) {
            let three = znat(&program, 3);
            assert_eq!(znat_value(&three), 3);
            // Backward mode: succ(three) yields the predecessor, lazily.
            let query = program.deconstruct(&three, "succ").unwrap();
            let rows: Vec<Bindings> = query.solutions().collect();
            assert_eq!(rows.len(), 1);
            assert_eq!(znat_value(&rows[0]["n"]), 2);
            // zero() does not match three.
            assert!(!program.matches(&three, "zero").unwrap());
            let zero = znat(&program, 0);
            assert!(program.matches(&zero, "zero").unwrap());
        }
    }

    #[test]
    fn plus_adds_znat_numbers() {
        for program in both_engines(NAT_PROGRAM) {
            let a = znat(&program, 2);
            let b = znat(&program, 3);
            let plus = program.free_method("plus").unwrap();
            let sum = plus.call(None, args![a, b]).unwrap();
            assert_eq!(znat_value(&sum), 5);
        }
    }

    #[test]
    fn plus_handles_zero_cases() {
        for program in both_engines(NAT_PROGRAM) {
            let plus = program.free_method("plus").unwrap();
            let zero = znat(&program, 0);
            let four = znat(&program, 4);
            let s1 = plus.call(None, args![zero.clone(), four.clone()]).unwrap();
            assert_eq!(znat_value(&s1), 4);
            let s2 = plus.call(None, args![four, zero]).unwrap();
            assert_eq!(znat_value(&s2), 4);
        }
    }

    #[test]
    fn peano_implementation_interoperates() {
        for program in both_engines(NAT_PROGRAM) {
            // Build 2 using the Peano classes: PSucc(PSucc(PZero)).
            let p0 = program
                .ctor("PZero", "zero")
                .unwrap()
                .construct(args![])
                .unwrap();
            let psucc = program.ctor("PSucc", "succ").unwrap();
            let p1 = psucc.construct(args![p0]).unwrap();
            let p2 = psucc.construct(args![p1]).unwrap();
            // Deconstruct with the named constructor.
            let rows: Vec<Bindings> = program
                .deconstruct(&p2, "succ")
                .unwrap()
                .solutions()
                .collect();
            assert_eq!(rows.len(), 1);
            // Equality constructors let ZNat(2) equal PSucc(PSucc(PZero)).
            let z2 = znat(&program, 2);
            assert!(program.values_equal(&z2, &p2).unwrap());
            let z3 = znat(&program, 3);
            assert!(!program.values_equal(&z3, &p2).unwrap());
        }
    }

    #[test]
    fn iterative_mode_enumerates_solutions() {
        let src = r#"
            class Range {
                boolean below(int n, int x) iterates(x)
                    ( x = 0 || x = 1 || x = 2 )
            }
        "#;
        for program in both_engines(src) {
            let range = obj(&program, "Range");
            let below = program.method("Range", "below").unwrap();
            let mut env = Bindings::new();
            env.insert("n".into(), Value::Int(3));
            let query = below.iterate(Some(&range), &env).unwrap();
            let seen: Vec<i64> = query
                .solutions()
                .map(|b| b["x"].as_int().unwrap())
                .collect();
            assert_eq!(seen, vec![0, 1, 2]);
            // take(1) stops after the first solution.
            let first: Vec<i64> = query
                .solutions()
                .take(1)
                .map(|b| b["x"].as_int().unwrap())
                .collect();
            assert_eq!(first, vec![0]);
        }
    }

    #[test]
    fn cond_and_let_statements_execute() {
        let src = r#"
            class M {
                int classify(int x) {
                    int doubled = x + x;
                    cond {
                        (doubled >= 10) { return 1; }
                        (doubled >= 0) { return 0; }
                        else { return -1; }
                    }
                }
            }
        "#;
        for program in both_engines(src) {
            let m = obj(&program, "M");
            let classify = program.method("M", "classify").unwrap();
            assert_eq!(classify.call(Some(&m), args![6]).unwrap(), Value::Int(1));
            assert_eq!(classify.call(Some(&m), args![2]).unwrap(), Value::Int(0));
            assert_eq!(classify.call(Some(&m), args![-3]).unwrap(), Value::Int(-1));
        }
    }

    #[test]
    fn foreach_iterates_all_solutions() {
        let src = r#"
            class M {
                int sum3() {
                    int total = 0;
                    foreach (int x = 1 # 2 # 3) {
                        total = total + x;
                    }
                    return total;
                }
            }
        "#;
        for program in both_engines(src) {
            let m = obj(&program, "M");
            let sum3 = program.method("M", "sum3").unwrap();
            assert_eq!(sum3.call(Some(&m), args![]).unwrap(), Value::Int(6));
        }
    }

    #[test]
    fn runtime_match_failure_is_an_error() {
        for program in both_engines(NAT_PROGRAM) {
            // ZNat's private constructor requires n >= 0.
            let ctor = program.ctor("ZNat", "ZNat").unwrap();
            assert!(ctor.construct(args![-1]).is_err());
        }
    }

    #[test]
    fn arity_errors_name_the_method_and_counts() {
        for program in both_engines(NAT_PROGRAM) {
            let err = program
                .ctor("ZNat", "succ")
                .unwrap()
                .construct(args![])
                .unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::ArityMismatch {
                    method: "ZNat.succ".into(),
                    expected: 1,
                    actual: 0,
                }
            );
            assert!(err.message.contains("ZNat.succ"));
            assert!(err.message.contains('1') && err.message.contains('0'));
        }
    }

    #[test]
    fn missing_method_errors_name_scope_and_method() {
        for program in both_engines(NAT_PROGRAM) {
            let err = program.free_method("nosuch").unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::MethodNotFound {
                    scope: "<toplevel>".into(),
                    name: "nosuch".into(),
                }
            );
            let err = program.method("ZNat", "nosuch").unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::MethodNotFound {
                    scope: "ZNat".into(),
                    name: "nosuch".into(),
                }
            );
        }
    }

    #[test]
    fn mode_errors_name_the_requested_mode() {
        let src = r#"
            class M {
                int imperative(int x) { return x; }
            }
            static int probe(M m) {
                switch (m) {
                    case imperative(int n): return n;
                }
            }
        "#;
        for program in both_engines(src) {
            let err = program
                .free_method("probe")
                .unwrap()
                .call(None, args![obj(&program, "M")])
                .unwrap_err();
            assert_eq!(
                err.kind,
                RtErrorKind::ModeMismatch {
                    method: "M.imperative".into(),
                    requested: "backward (pattern-matching)".into(),
                }
            );
        }
    }

    #[test]
    fn value_display_is_readable() {
        let program = program_for(NAT_PROGRAM, Engine::Plan);
        let two = znat(&program, 2);
        let text = two.to_string();
        assert!(text.contains("ZNat"));
        assert!(text.contains("val = 2"));
    }

    #[test]
    fn value_conversions_round_trip() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(i64::try_from(Value::Int(7)).unwrap(), 7);
        assert!(bool::try_from(Value::Bool(false)).is_ok());
        assert_eq!(String::try_from(Value::Str("s".into())).unwrap(), "s");
        assert!(i64::try_from(Value::Null).is_err());
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(1).as_str(), None);
        let program = program_for(NAT_PROGRAM, Engine::Plan);
        let two = znat(&program, 2);
        assert_eq!(two.field("val"), Some(&Value::Int(2)));
        assert_eq!(two.field("nope"), None);
        assert_eq!(Value::Int(1).field("val"), None);
    }

    #[test]
    fn rt_error_display_includes_the_kind() {
        let program = program_for(NAT_PROGRAM, Engine::Plan);
        let err = program.free_method("nosuch").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("method-not-found"), "{text}");
        assert!(text.contains("nosuch"), "{text}");
        let limit = RtError::limit("depth", 1_000, "solver recursion limit exceeded");
        assert!(limit.to_string().contains("limit-exceeded:depth"));
    }

    #[test]
    fn plan_engine_exposes_its_program_plan() {
        let program = program_for(NAT_PROGRAM, Engine::Plan);
        let plan = program.plan();
        assert!(plan.lookup_impl("ZNat", "succ").is_some());
    }
}
