//! # jmatch-runtime
//!
//! Dynamic semantics for the JMatch 2.0 reproduction: a tree-walking
//! interpreter that gives modal abstractions their operational meaning. The
//! paper compiles JMatch to Java_yield (coroutines) and then to Java (§2.3);
//! this crate interprets the same programs directly, enumerating the
//! solutions of declarative formulas with a callback-based generator — the
//! moral equivalent of the `yield`-based translation.
//!
//! The interpreter supports:
//!
//! * forward, backward (pattern-matching) and iterative modes of methods with
//!   declarative bodies,
//! * named constructors with dynamic dispatch on the matched object's runtime
//!   class, and equality constructors for cross-implementation equality
//!   (§3.1–3.2),
//! * `switch` (with fall-through), `cond`, `let`, `if`, `foreach` and `while`
//!   statements in imperative bodies, and
//! * invertible integer arithmetic in patterns (`ZNat(val - 1) = n` solves
//!   for `val`).
//!
//! ## Example
//!
//! ```
//! use jmatch_core::{compile, CompileOptions};
//! use jmatch_runtime::{Interp, Value};
//!
//! let source = r#"
//!     class Box {
//!         int v;
//!         constructor of(int n) returns(n) ( v = n )
//!     }
//!     static int unbox(Box b) {
//!         switch (b) {
//!             case of(int n): return n;
//!         }
//!     }
//! "#;
//! let compiled = compile(source, &CompileOptions { verify: false, ..Default::default() })?;
//! let interp = Interp::new(compiled.table.clone());
//! let boxed = interp.construct("Box", "of", vec![Value::Int(7)]).unwrap();
//! let out = interp.call_free("unbox", vec![boxed]).unwrap();
//! assert_eq!(out, Value::Int(7));
//! # Ok::<(), jmatch_syntax::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use jmatch_core::table::{ClassTable, MethodInfo};
use jmatch_syntax::ast::*;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// The null reference.
    Null,
    /// An object: its runtime class and field values.
    Obj(Rc<Object>),
}

/// A heap object.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Runtime class name.
    pub class: String,
    /// Field values.
    pub fields: HashMap<String, Value>,
}

impl Value {
    /// Convenience accessor for integers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience accessor for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The runtime class of an object value.
    pub fn class(&self) -> Option<&str> {
        match self {
            Value::Obj(o) => Some(&o.class),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Null => write!(f, "null"),
            Value::Obj(o) => {
                write!(f, "{}(", o.class)?;
                let mut fields: Vec<_> = o.fields.iter().collect();
                fields.sort_by(|a, b| a.0.cmp(b.0));
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A runtime error (match failure, unsolvable formula, missing method, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtError {
    /// Description of the failure.
    pub message: String,
}

impl RtError {
    fn new(message: impl Into<String>) -> Self {
        RtError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RtError {}

/// Result alias for runtime operations.
pub type RtResult<T> = Result<T, RtError>;

/// Variable bindings during formula solving / statement execution.
pub type Bindings = HashMap<String, Value>;

/// Control flow out of a statement.
enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter.
#[derive(Debug, Clone)]
pub struct Interp {
    table: Rc<ClassTable>,
    /// Safety valve against runaway recursion in declarative solving.
    max_depth: usize,
}

impl Interp {
    /// Creates an interpreter over a resolved program.
    pub fn new(table: Rc<ClassTable>) -> Self {
        Interp {
            table,
            max_depth: 10_000,
        }
    }

    /// The class table the interpreter runs against.
    pub fn table(&self) -> &ClassTable {
        &self.table
    }

    // ------------------------------------------------------------------
    // Public entry points
    // ------------------------------------------------------------------

    /// Invokes a named or class constructor of `class` in the forward mode.
    pub fn construct(&self, class: &str, ctor: &str, args: Vec<Value>) -> RtResult<Value> {
        let minfo = self
            .table
            .lookup_method(class, ctor)
            .or_else(|| self.table.lookup_class_constructor(class))
            .cloned()
            .ok_or_else(|| RtError::new(format!("no constructor `{ctor}` on `{class}`")))?;
        // Resolve to the concrete implementation declared on `class` itself if
        // the interface only declares the signature.
        let impl_info = if matches!(minfo.decl.body, MethodBody::Absent) {
            self.find_impl(class, ctor)
                .ok_or_else(|| RtError::new(format!("`{class}.{ctor}` has no implementation")))?
        } else {
            minfo
        };
        self.run_forward(&impl_info, None, args)
    }

    /// Calls a free-standing (top-level) method.
    pub fn call_free(&self, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let minfo = self
            .table
            .lookup_free_method(name)
            .cloned()
            .ok_or_else(|| RtError::new(format!("no top-level method `{name}`")))?;
        self.run_forward(&minfo, None, args)
    }

    /// Calls an instance method in the forward mode.
    pub fn call_method(&self, receiver: &Value, name: &str, args: Vec<Value>) -> RtResult<Value> {
        let class = receiver
            .class()
            .ok_or_else(|| RtError::new("receiver is not an object"))?
            .to_owned();
        let minfo = self
            .find_impl(&class, name)
            .ok_or_else(|| RtError::new(format!("no method `{name}` on `{class}`")))?;
        self.run_forward(&minfo, Some(receiver.clone()), args)
    }

    /// Enumerates the solutions of matching `value` against the named
    /// constructor `ctor` (the backward mode): each solution is the vector of
    /// values bound to the constructor's parameters.
    pub fn deconstruct(&self, value: &Value, ctor: &str) -> RtResult<Vec<Vec<Value>>> {
        let class = value
            .class()
            .ok_or_else(|| RtError::new("can only deconstruct objects"))?
            .to_owned();
        let minfo = self
            .find_impl(&class, ctor)
            .ok_or_else(|| RtError::new(format!("no constructor `{ctor}` on `{class}`")))?;
        let params: Vec<String> = minfo.decl.params.iter().map(|p| p.name.clone()).collect();
        let patterns: Vec<Expr> = minfo
            .decl
            .params
            .iter()
            .map(|p| Expr::Decl(p.ty.clone(), p.name.clone()))
            .collect();
        let mut solutions = Vec::new();
        self.match_constructor(value, &minfo, &patterns, &Bindings::new(), &mut |b| {
            let row: Vec<Value> = params
                .iter()
                .map(|p| b.get(p).cloned().unwrap_or(Value::Null))
                .collect();
            solutions.push(row);
            true
        })?;
        Ok(solutions)
    }

    /// Tests whether `value` matches the named constructor `ctor` (predicate
    /// use of a named constructor, e.g. `ZNat(0).zero()`).
    pub fn matches_constructor(&self, value: &Value, ctor: &str) -> RtResult<bool> {
        Ok(!self.deconstruct(value, ctor)?.is_empty() || {
            // Zero-parameter constructors produce an empty solution row set
            // only when they fail; re-check via a direct predicate solve.
            let class = value.class().unwrap_or_default().to_owned();
            if let Some(minfo) = self.find_impl(&class, ctor) {
                if minfo.decl.params.is_empty() {
                    let mut found = false;
                    self.match_constructor(value, &minfo, &[], &Bindings::new(), &mut |_| {
                        found = true;
                        false
                    })?;
                    found
                } else {
                    false
                }
            } else {
                false
            }
        })
    }

    /// Deep equality, using equality constructors (§3.2) across different
    /// implementations of the same abstraction.
    pub fn values_equal(&self, a: &Value, b: &Value) -> RtResult<bool> {
        match (a, b) {
            (Value::Obj(oa), Value::Obj(ob)) => {
                if Rc::ptr_eq(oa, ob) {
                    return Ok(true);
                }
                if oa.class == ob.class {
                    if oa.fields.len() == ob.fields.len() {
                        for (k, va) in &oa.fields {
                            let Some(vb) = ob.fields.get(k) else {
                                return Ok(false);
                            };
                            if !self.values_equal(va, vb)? {
                                return Ok(false);
                            }
                        }
                        return Ok(true);
                    }
                    return Ok(false);
                }
                // Different classes: try an equality constructor on either side.
                for (lhs, rhs) in [(a, b), (b, a)] {
                    let class = lhs.class().unwrap_or_default().to_owned();
                    if let Some(eq) = self.find_impl(&class, "equals") {
                        if let MethodBody::Formula(f) = &eq.decl.body {
                            let mut env = Bindings::new();
                            if let Some(p) = eq.decl.params.first() {
                                env.insert(p.name.clone(), rhs.clone());
                            }
                            let mut found = false;
                            self.solve(&env, Some(lhs), f, 0, &mut |_| {
                                found = true;
                                false
                            })?;
                            return Ok(found);
                        }
                    }
                }
                Ok(false)
            }
            _ => Ok(a == b),
        }
    }

    // ------------------------------------------------------------------
    // Method execution
    // ------------------------------------------------------------------

    /// Finds the implementation of `name` starting from a concrete class
    /// (searching the class itself, then supertypes with bodies).
    fn find_impl(&self, class: &str, name: &str) -> Option<MethodInfo> {
        let info = self.table.type_info(class)?;
        if let Some(m) = info
            .methods
            .iter()
            .find(|m| m.decl.name == name && !matches!(m.decl.body, MethodBody::Absent))
        {
            return Some(m.clone());
        }
        for sup in &info.supertypes {
            if let Some(m) = self.find_impl(sup, name) {
                return Some(m);
            }
        }
        None
    }

    /// Runs a method in its forward mode: parameters bound to `args`.
    fn run_forward(
        &self,
        minfo: &MethodInfo,
        this: Option<Value>,
        args: Vec<Value>,
    ) -> RtResult<Value> {
        if args.len() != minfo.decl.params.len() {
            return Err(RtError::new(format!(
                "{} expects {} arguments, got {}",
                minfo.qualified_name(),
                minfo.decl.params.len(),
                args.len()
            )));
        }
        let mut env = Bindings::new();
        for (p, v) in minfo.decl.params.iter().zip(args) {
            env.insert(p.name.clone(), v);
        }
        match &minfo.decl.body {
            MethodBody::Absent => Err(RtError::new(format!(
                "{} has no implementation",
                minfo.qualified_name()
            ))),
            MethodBody::Formula(f) => {
                if minfo.constructs_owner() {
                    // Construction: the fields of the new object are unknowns
                    // solved by the body.
                    let owner = self.table.type_info(&minfo.owner).ok_or_else(|| {
                        RtError::new(format!("unknown owner type {}", minfo.owner))
                    })?;
                    let field_names: Vec<String> =
                        owner.fields.iter().map(|f| f.name.clone()).collect();
                    let mut result = None;
                    self.solve(&env, this.as_ref(), f, 0, &mut |b| {
                        let mut fields = HashMap::new();
                        for fname in &field_names {
                            fields.insert(
                                fname.clone(),
                                b.get(fname).cloned().unwrap_or(Value::Null),
                            );
                        }
                        // A `result = ...` equation (as in Figure 1) takes
                        // precedence over field solving.
                        result = Some(b.get("result").cloned().unwrap_or(Value::Obj(Rc::new(
                            Object {
                                class: minfo.owner.clone(),
                                fields,
                            },
                        ))));
                        false
                    })?;
                    result.ok_or_else(|| {
                        RtError::new(format!("{} failed to match", minfo.qualified_name()))
                    })
                } else {
                    // Ordinary method: solve for `result` (boolean methods
                    // default to "is the body satisfiable").
                    let mut result = None;
                    let mut any = false;
                    self.solve(&env, this.as_ref(), f, 0, &mut |b| {
                        any = true;
                        result = b.get("result").cloned();
                        false
                    })?;
                    match (&minfo.decl.return_type, result) {
                        (Some(Type::Boolean), r) => Ok(r.unwrap_or(Value::Bool(any))),
                        (_, Some(r)) => Ok(r),
                        (Some(Type::Void), None) => Ok(Value::Null),
                        (_, None) if any => Ok(Value::Bool(true)),
                        (_, None) => Err(RtError::new(format!(
                            "{} produced no result",
                            minfo.qualified_name()
                        ))),
                    }
                }
            }
            MethodBody::Block(stmts) => {
                let mut env = env;
                match self.exec_block(&mut env, this.as_ref(), stmts)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Value::Null),
                }
            }
        }
    }

    /// Matches `value` against a constructor with argument patterns,
    /// enumerating solutions (the backward / iterative mode).
    fn match_constructor(
        &self,
        value: &Value,
        minfo: &MethodInfo,
        arg_patterns: &[Expr],
        outer: &Bindings,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<bool> {
        let MethodBody::Formula(body) = &minfo.decl.body else {
            return Err(RtError::new(format!(
                "constructor {} has no declarative body",
                minfo.qualified_name()
            )));
        };
        // Solve the body with `this` = the matched value and the parameters
        // unknown; then match each solution's parameter values against the
        // argument patterns.
        let env = Bindings::new();
        let params: Vec<Param> = minfo.decl.params.clone();
        let mut keep_going = true;
        self.solve(&env, Some(value), body, 0, &mut |b| {
            // Values for the constructor parameters under this solution.
            let mut env2 = outer.clone();
            let mut ok = true;
            for (i, p) in params.iter().enumerate() {
                let Some(v) = b.get(&p.name).cloned() else {
                    ok = false;
                    break;
                };
                if let Some(pattern) = arg_patterns.get(i) {
                    match self.match_pattern_first(&env2, None, pattern, &v) {
                        Ok(Some(newenv)) => env2 = newenv,
                        Ok(None) => {
                            ok = false;
                            break;
                        }
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                keep_going = emit(&env2);
            }
            keep_going
        })?;
        Ok(!keep_going)
    }

    // ------------------------------------------------------------------
    // Declarative solving
    // ------------------------------------------------------------------

    /// Enumerates solutions of a formula. `emit` returns `false` to stop.
    /// Returns `Ok(())`; enumeration state is carried by the callback.
    pub fn solve(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        f: &Formula,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        if depth > self.max_depth {
            return Err(RtError::new("solver recursion limit exceeded"));
        }
        match f {
            Formula::Bool(true) => {
                emit(env);
                Ok(())
            }
            Formula::Bool(false) => Ok(()),
            Formula::And(..) => {
                let mut conjuncts = Vec::new();
                flatten_and(f, &mut conjuncts);
                self.solve_conjuncts(env, this, &conjuncts, depth, emit)
            }
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.solve(env, this, a, depth + 1, emit)?;
                self.solve(env, this, b, depth + 1, emit)
            }
            Formula::Not(inner) => {
                let mut found = false;
                self.solve(env, this, inner, depth + 1, &mut |_| {
                    found = true;
                    false
                })?;
                if !found {
                    emit(env);
                }
                Ok(())
            }
            Formula::Cmp(op, lhs, rhs) => self.solve_cmp(env, this, *op, lhs, rhs, depth, emit),
            Formula::Atom(e) => self.solve_atom(env, this, e, depth, emit),
        }
    }

    /// Solves a conjunction, reordering so that conjuncts whose unknowns can
    /// be bound are solved first (the paper's left-to-right-as-possible
    /// solving order, §2.3).
    fn solve_conjuncts(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        conjuncts: &[Formula],
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        if conjuncts.is_empty() {
            emit(env);
            return Ok(());
        }
        let ready_idx = conjuncts
            .iter()
            .position(|c| self.conjunct_ready(env, this, c))
            .ok_or_else(|| {
                RtError::new(
                    "formula is not solvable: no conjunct can run with the current bindings",
                )
            })?;
        let chosen = &conjuncts[ready_idx];
        let rest: Vec<Formula> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ready_idx)
            .map(|(_, c)| c.clone())
            .collect();
        let mut err = None;
        self.solve(
            env,
            this,
            chosen,
            depth + 1,
            &mut |e1| match self.solve_conjuncts(e1, this, &rest, depth + 1, emit) {
                Ok(()) => true,
                Err(e) => {
                    err = Some(e);
                    false
                }
            },
        )?;
        err.map_or(Ok(()), Err)
    }

    /// Whether a conjunct can be solved with the current bindings.
    fn conjunct_ready(&self, env: &Bindings, this: Option<&Value>, f: &Formula) -> bool {
        match f {
            Formula::Bool(_) => true,
            Formula::Cmp(CmpOp::Eq, l, r) => {
                self.is_ground(env, this, l) || self.is_ground(env, this, r)
            }
            Formula::Cmp(_, l, r) => self.is_ground(env, this, l) && self.is_ground(env, this, r),
            Formula::Atom(Expr::Call { receiver, .. }) => match receiver {
                Some(r) => self.is_ground(env, this, r),
                None => true,
            },
            Formula::Atom(e) => self.is_ground(env, this, e),
            Formula::Not(inner) => self.conjunct_ready(env, this, inner),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.conjunct_ready(env, this, a) && self.conjunct_ready(env, this, b)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_cmp(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        op: CmpOp,
        lhs: &Expr,
        rhs: &Expr,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        if op == CmpOp::Eq {
            // Pattern disjunction distributes over the equation: `x = p1 # p2`
            // tries both alternatives (`|` behaves the same operationally, its
            // disjointness having been verified statically).
            if let Expr::OrPat(a, b) | Expr::DisjointOr(a, b) = rhs {
                self.solve_cmp(env, this, CmpOp::Eq, lhs, a, depth + 1, emit)?;
                return self.solve_cmp(env, this, CmpOp::Eq, lhs, b, depth + 1, emit);
            }
            if let Expr::OrPat(a, b) | Expr::DisjointOr(a, b) = lhs {
                self.solve_cmp(env, this, CmpOp::Eq, a, rhs, depth + 1, emit)?;
                return self.solve_cmp(env, this, CmpOp::Eq, b, rhs, depth + 1, emit);
            }
            // Tuple equations decompose componentwise.
            if let (Expr::Tuple(ls), Expr::Tuple(rs)) = (lhs, rhs) {
                if ls.len() == rs.len() {
                    let conj = ls
                        .iter()
                        .zip(rs.iter())
                        .map(|(l, r)| Formula::Cmp(CmpOp::Eq, l.clone(), r.clone()))
                        .reduce(Formula::and)
                        .unwrap_or(Formula::Bool(true));
                    return self.solve(env, this, &conj, depth + 1, emit);
                }
            }
            let lhs_ground = self.is_ground(env, this, lhs);
            let rhs_ground = self.is_ground(env, this, rhs);
            return match (lhs_ground, rhs_ground) {
                (true, true) => {
                    let a = self.eval(env, this, lhs)?;
                    let b = self.eval(env, this, rhs)?;
                    if self.values_equal(&a, &b)? {
                        emit(env);
                    }
                    Ok(())
                }
                (true, false) => {
                    let v = self.eval(env, this, lhs)?;
                    self.match_pattern(env, this, rhs, &v, depth, emit)
                }
                (false, true) => {
                    let v = self.eval(env, this, rhs)?;
                    self.match_pattern(env, this, lhs, &v, depth, emit)
                }
                (false, false) => Err(RtError::new(format!(
                    "equation with unknowns on both sides is not solvable: {lhs:?} = {rhs:?}"
                ))),
            };
        }
        // Ordering comparisons require both sides ground.
        let a = self.eval(env, this, lhs)?;
        let b = self.eval(env, this, rhs)?;
        let (x, y) = match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => (x, y),
            _ => {
                if op == CmpOp::Ne {
                    if !self.values_equal(&a, &b)? {
                        emit(env);
                    }
                    return Ok(());
                }
                return Err(RtError::new("ordering comparison on non-integers"));
            }
        };
        let holds = match op {
            CmpOp::Le => x <= y,
            CmpOp::Lt => x < y,
            CmpOp::Ge => x >= y,
            CmpOp::Gt => x > y,
            CmpOp::Ne => x != y,
            CmpOp::Eq => x == y,
        };
        if holds {
            emit(env);
        }
        Ok(())
    }

    fn solve_atom(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        e: &Expr,
        _depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        match e {
            // A named-constructor predicate / pattern on the current receiver,
            // possibly binding unknown arguments: `succ(Nat y)`, `n.zero()`.
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                let subject: Value = match receiver {
                    Some(r) if self.is_ground(env, this, r) => self.eval(env, this, r)?,
                    None => this
                        .cloned()
                        .ok_or_else(|| RtError::new("predicate call without a receiver"))?,
                    Some(_) => {
                        return Err(RtError::new("predicate receiver is not ground"));
                    }
                };
                match &subject {
                    Value::Obj(o) => {
                        let class = o.class.clone();
                        let Some(minfo) = self.find_impl(&class, name) else {
                            return Err(RtError::new(format!("no `{name}` on `{class}`")));
                        };
                        self.match_constructor(&subject, &minfo, args, env, emit)?;
                        Ok(())
                    }
                    Value::Bool(b) => {
                        if *b {
                            emit(env);
                        }
                        Ok(())
                    }
                    other => Err(RtError::new(format!(
                        "cannot use `{other}` as a predicate receiver"
                    ))),
                }
            }
            Expr::Decl(..) => {
                // An uninitialized declaration binds nothing useful at runtime.
                emit(env);
                Ok(())
            }
            other => {
                let v = self.eval(env, this, other)?;
                if v.as_bool() == Some(true) {
                    emit(env);
                }
                Ok(())
            }
        }
    }

    /// Matches a pattern against a known value, binding declared variables.
    fn match_pattern(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        pattern: &Expr,
        value: &Value,
        depth: usize,
        emit: &mut dyn FnMut(&Bindings) -> bool,
    ) -> RtResult<()> {
        match pattern {
            Expr::Wildcard => {
                emit(env);
                Ok(())
            }
            Expr::Decl(ty, name) => {
                if let Type::Named(t) = ty {
                    if let Some(class) = value.class() {
                        if !self.table.is_subtype(class, t) {
                            return Ok(());
                        }
                    }
                }
                let mut e2 = env.clone();
                if name != "_" {
                    e2.insert(name.clone(), value.clone());
                }
                emit(&e2);
                Ok(())
            }
            Expr::Var(name) => match env.get(name) {
                Some(bound) => {
                    if self.values_equal(bound, value)? {
                        emit(env);
                    }
                    Ok(())
                }
                None => {
                    let mut e2 = env.clone();
                    e2.insert(name.clone(), value.clone());
                    emit(&e2);
                    Ok(())
                }
            },
            Expr::Result => match env.get("result") {
                Some(bound) => {
                    if self.values_equal(bound, value)? {
                        emit(env);
                    }
                    Ok(())
                }
                None => {
                    let mut e2 = env.clone();
                    e2.insert("result".into(), value.clone());
                    emit(&e2);
                    Ok(())
                }
            },
            Expr::As(a, b) => {
                let mut err = None;
                self.match_pattern(env, this, a, value, depth + 1, &mut |e1| match self
                    .match_pattern(e1, this, b, value, depth + 1, emit)
                {
                    Ok(()) => true,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                })?;
                err.map_or(Ok(()), Err)
            }
            Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                self.match_pattern(env, this, a, value, depth + 1, emit)?;
                self.match_pattern(env, this, b, value, depth + 1, emit)
            }
            Expr::Where(p, f) => {
                let mut err = None;
                self.match_pattern(env, this, p, value, depth + 1, &mut |e1| match self.solve(
                    e1,
                    this,
                    f,
                    depth + 1,
                    emit,
                ) {
                    Ok(()) => true,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                })?;
                err.map_or(Ok(()), Err)
            }
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                // Constructor pattern: dispatch on the matched value's class
                // (or the statically named class for `Class(...)` patterns).
                let class = match receiver {
                    Some(r) => match r.as_ref() {
                        Expr::Var(c) if self.table.type_info(c).is_some() => c.clone(),
                        _ => value.class().unwrap_or_default().to_owned(),
                    },
                    None => {
                        if self.table.type_info(name).is_some() {
                            name.clone()
                        } else {
                            value.class().unwrap_or_default().to_owned()
                        }
                    }
                };
                let lookup_name = if self.table.type_info(name).is_some() {
                    // A class-constructor pattern like `ZNat(val - 1)`.
                    name.clone()
                } else {
                    name.clone()
                };
                let target = if self
                    .table
                    .is_subtype(value.class().unwrap_or_default(), &class)
                    || value.class().is_none()
                {
                    value.clone()
                } else {
                    // The value is not an instance of the pattern's class: use
                    // the equality constructor to shift views (§3.2).
                    value.clone()
                };
                let Some(minfo) = self
                    .find_impl(&class, &lookup_name)
                    .or_else(|| self.table.lookup_class_constructor(&class).cloned())
                else {
                    return Err(RtError::new(format!("no `{name}` on `{class}`")));
                };
                // If the runtime class differs and an equality constructor
                // exists, convert first.
                if let Some(vclass) = target.class() {
                    if !self.table.is_subtype(vclass, &class) {
                        if let Some(converted) = self.convert_via_equals(&class, &target)? {
                            self.match_constructor(&converted, &minfo, args, env, emit)?;
                            return Ok(());
                        }
                        return Ok(());
                    }
                }
                self.match_constructor(&target, &minfo, args, env, emit)?;
                Ok(())
            }
            Expr::Binary(op, a, b) => {
                // Invertible integer arithmetic: exactly one non-ground side.
                let Some(target) = value.as_int() else {
                    return Ok(());
                };
                let a_ground = self.is_ground(env, this, a);
                let b_ground = self.is_ground(env, this, b);
                match (op, a_ground, b_ground) {
                    (_, true, true) => {
                        let v = self.eval(env, this, pattern)?;
                        if self.values_equal(&v, value)? {
                            emit(env);
                        }
                        Ok(())
                    }
                    (BinOp::Add, true, false) => {
                        let av = self.eval(env, this, a)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, b, &Value::Int(target - av), depth + 1, emit)
                    }
                    (BinOp::Add, false, true) => {
                        let bv = self.eval(env, this, b)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, a, &Value::Int(target - bv), depth + 1, emit)
                    }
                    (BinOp::Sub, false, true) => {
                        let bv = self.eval(env, this, b)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, a, &Value::Int(target + bv), depth + 1, emit)
                    }
                    (BinOp::Sub, true, false) => {
                        let av = self.eval(env, this, a)?.as_int().unwrap_or(0);
                        self.match_pattern(env, this, b, &Value::Int(av - target), depth + 1, emit)
                    }
                    _ => Err(RtError::new(
                        "cannot invert this arithmetic pattern at run time",
                    )),
                }
            }
            Expr::Neg(a) => {
                let Some(target) = value.as_int() else {
                    return Ok(());
                };
                self.match_pattern(env, this, a, &Value::Int(-target), depth + 1, emit)
            }
            other => {
                let v = self.eval(env, this, other)?;
                if self.values_equal(&v, value)? {
                    emit(env);
                }
                Ok(())
            }
        }
    }

    /// First solution of a pattern match, if any.
    fn match_pattern_first(
        &self,
        env: &Bindings,
        this: Option<&Value>,
        pattern: &Expr,
        value: &Value,
    ) -> RtResult<Option<Bindings>> {
        let mut found = None;
        self.match_pattern(env, this, pattern, value, 0, &mut |b| {
            found = Some(b.clone());
            false
        })?;
        Ok(found)
    }

    /// Converts `value` into an instance of `class` using `class`'s equality
    /// constructor (operationally: find a `class` object equal to `value`).
    fn convert_via_equals(&self, class: &str, value: &Value) -> RtResult<Option<Value>> {
        let Some(eq) = self.find_impl(class, "equals") else {
            return Ok(None);
        };
        let MethodBody::Formula(body) = &eq.decl.body else {
            return Ok(None);
        };
        // Solve for the fields of a fresh `class` object such that
        // `new.equals(value)` holds.
        let Some(owner) = self.table.type_info(class) else {
            return Ok(None);
        };
        let mut env = Bindings::new();
        if let Some(p) = eq.decl.params.first() {
            env.insert(p.name.clone(), value.clone());
        }
        // The receiver's fields are unknowns; represent the receiver lazily by
        // solving with a "template" object whose fields come from bindings.
        let field_names: Vec<String> = owner.fields.iter().map(|f| f.name.clone()).collect();
        let mut result = None;
        // Without full constraint solving over object fields we support the
        // common case: the equality constructor's body only uses named
        // constructors of `class` (e.g. `zero() && n.zero() | succ(y) && n.succ(y)`),
        // which we can run by matching on the argument and reconstructing.
        self.try_equals_reconstruction(class, body, &env, &mut result)?;
        if result.is_some() {
            return Ok(result);
        }
        let _ = field_names;
        Ok(None)
    }

    /// Handles equality-constructor bodies of the shape used in the paper
    /// (Figure 4): a disjunction of `ctor_i(..) && n.ctor_i(..)` conjuncts.
    fn try_equals_reconstruction(
        &self,
        class: &str,
        body: &Formula,
        env: &Bindings,
        result: &mut Option<Value>,
    ) -> RtResult<()> {
        match body {
            Formula::Or(a, b) | Formula::DisjointOr(a, b) => {
                self.try_equals_reconstruction(class, a, env, result)?;
                if result.is_none() {
                    self.try_equals_reconstruction(class, b, env, result)?;
                }
                Ok(())
            }
            Formula::And(a, b) => {
                // Expect `ctor(args...) && n.ctor(args...)`.
                if let (Formula::Atom(own), Formula::Atom(other)) = (a.as_ref(), b.as_ref()) {
                    if let (
                        Expr::Call {
                            name: own_name,
                            args: own_args,
                            receiver: None,
                        },
                        Expr::Call {
                            name: other_name,
                            args: other_args,
                            receiver: Some(recv),
                        },
                    ) = (own, other)
                    {
                        if own_name == other_name {
                            if let Expr::Var(param) = recv.as_ref() {
                                if let Some(target) = env.get(param) {
                                    // Deconstruct the target with the shared
                                    // constructor, then rebuild in `class`.
                                    if let Ok(rows) = self.deconstruct(target, other_name) {
                                        if let Some(row) = rows.first() {
                                            let rebuilt =
                                                self.construct(class, own_name, row.clone())?;
                                            let _ = (own_args, other_args);
                                            *result = Some(rebuilt);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Formula::Atom(Expr::Call {
                receiver: Some(recv),
                name,
                ..
            }) => {
                // `n.zero()` style: the whole body is a predicate on the other
                // object; rebuild the matching nullary constructor.
                if let Expr::Var(param) = recv.as_ref() {
                    if let Some(target) = env.get(param) {
                        if self.matches_constructor(target, name)? {
                            *result = Some(self.construct(class, name, Vec::new())?);
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Ground evaluation
    // ------------------------------------------------------------------

    /// Whether every variable mentioned by the expression is bound.
    fn is_ground(&self, env: &Bindings, this: Option<&Value>, e: &Expr) -> bool {
        match e {
            Expr::IntLit(_) | Expr::BoolLit(_) | Expr::StrLit(_) | Expr::Null => true,
            Expr::This => this.is_some(),
            Expr::Result => env.contains_key("result"),
            Expr::Wildcard | Expr::Decl(..) => false,
            Expr::Var(name) => {
                env.contains_key(name)
                    || this
                        .and_then(|t| t.class())
                        .map(|c| self.table.field_type(c, name).is_some())
                        .unwrap_or(false)
                    || self.table.type_info(name).is_some()
            }
            Expr::Field(b, _) => self.is_ground(env, this, b),
            Expr::Call { receiver, args, .. } => {
                receiver
                    .as_deref()
                    .map(|r| self.is_ground(env, this, r))
                    .unwrap_or(true)
                    && args.iter().all(|a| self.is_ground(env, this, a))
            }
            Expr::Index(a, b) | Expr::Binary(_, a, b) => {
                self.is_ground(env, this, a) && self.is_ground(env, this, b)
            }
            Expr::NewArray(_, a) | Expr::Neg(a) => self.is_ground(env, this, a),
            Expr::Tuple(xs) => xs.iter().all(|x| self.is_ground(env, this, x)),
            Expr::As(a, b) | Expr::OrPat(a, b) | Expr::DisjointOr(a, b) => {
                self.is_ground(env, this, a) && self.is_ground(env, this, b)
            }
            Expr::Where(p, _) => self.is_ground(env, this, p),
        }
    }

    /// Evaluates a ground expression.
    pub fn eval(&self, env: &Bindings, this: Option<&Value>, e: &Expr) -> RtResult<Value> {
        match e {
            Expr::IntLit(n) => Ok(Value::Int(*n)),
            Expr::BoolLit(b) => Ok(Value::Bool(*b)),
            Expr::StrLit(s) => Ok(Value::Str(s.clone())),
            Expr::Null => Ok(Value::Null),
            Expr::This => this
                .cloned()
                .ok_or_else(|| RtError::new("`this` is not in scope")),
            Expr::Result => env
                .get("result")
                .cloned()
                .ok_or_else(|| RtError::new("`result` is not bound")),
            Expr::Var(name) => {
                if let Some(v) = env.get(name) {
                    return Ok(v.clone());
                }
                if let Some(Value::Obj(o)) = this {
                    if let Some(v) = o.fields.get(name) {
                        return Ok(v.clone());
                    }
                }
                Err(RtError::new(format!("unbound variable `{name}`")))
            }
            Expr::Field(base, field) => {
                let b = self.eval(env, this, base)?;
                match b {
                    Value::Obj(o) => o
                        .fields
                        .get(field)
                        .cloned()
                        .ok_or_else(|| RtError::new(format!("no field `{field}`"))),
                    other => Err(RtError::new(format!("field access on non-object {other}"))),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = self
                    .eval(env, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let y = self
                    .eval(env, this, b)?
                    .as_int()
                    .ok_or_else(|| RtError::new("arithmetic on non-integer"))?;
                let v = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RtError::new("division by zero"));
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(RtError::new("remainder by zero"));
                        }
                        x % y
                    }
                };
                Ok(Value::Int(v))
            }
            Expr::Neg(a) => {
                let x = self
                    .eval(env, this, a)?
                    .as_int()
                    .ok_or_else(|| RtError::new("negation of non-integer"))?;
                Ok(Value::Int(-x))
            }
            Expr::Call {
                receiver,
                name,
                args,
            } => {
                let arg_values: RtResult<Vec<Value>> =
                    args.iter().map(|a| self.eval(env, this, a)).collect();
                let arg_values = arg_values?;
                match receiver.as_deref() {
                    Some(Expr::Var(class)) if self.table.type_info(class).is_some() => {
                        self.construct(class, name, arg_values)
                    }
                    Some(r) => {
                        let recv = self.eval(env, this, r)?;
                        self.call_method(&recv, name, arg_values)
                    }
                    None => {
                        if self.table.type_info(name).is_some() {
                            // Class constructor `ZNat(2)`.
                            let ctor = self
                                .table
                                .lookup_class_constructor(name)
                                .cloned()
                                .ok_or_else(|| {
                                    RtError::new(format!("no class constructor for `{name}`"))
                                })?;
                            return self.run_forward(&ctor, None, arg_values);
                        }
                        if self.table.lookup_free_method(name).is_some() {
                            return self.call_free(name, arg_values);
                        }
                        if let Some(t) = this {
                            return self.call_method(t, name, arg_values);
                        }
                        Err(RtError::new(format!("cannot resolve call `{name}`")))
                    }
                }
            }
            Expr::Tuple(_) => Err(RtError::new("tuples are not first-class values")),
            other => Err(RtError::new(format!("cannot evaluate {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(
        &self,
        env: &mut Bindings,
        this: Option<&Value>,
        stmts: &[Stmt],
    ) -> RtResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(env, this, stmt)? {
                Flow::Normal => {}
                r @ Flow::Return(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&self, env: &mut Bindings, this: Option<&Value>, stmt: &Stmt) -> RtResult<Flow> {
        match stmt {
            Stmt::Let(f) => {
                let mut solution = None;
                self.solve(env, this, f, 0, &mut |b| {
                    solution = Some(b.clone());
                    false
                })?;
                match solution {
                    Some(b) => {
                        *env = b;
                        Ok(Flow::Normal)
                    }
                    None => Err(RtError::new("let statement failed to match")),
                }
            }
            Stmt::Switch {
                scrutinees,
                cases,
                default,
            } => {
                let values: RtResult<Vec<Value>> =
                    scrutinees.iter().map(|s| self.eval(env, this, s)).collect();
                let values = values?;
                for (idx, case) in cases.iter().enumerate() {
                    let mut bound = Some(env.clone());
                    for (p, v) in case.patterns.iter().zip(values.iter()) {
                        bound = match bound {
                            Some(b) => self.match_pattern_first(&b, this, p, v)?,
                            None => None,
                        };
                    }
                    if let Some(b) = bound {
                        // Fall through to the first non-empty body.
                        let mut body_idx = idx;
                        while body_idx < cases.len() && cases[body_idx].body.is_empty() {
                            body_idx += 1;
                        }
                        let body: &[Stmt] = if body_idx < cases.len() {
                            &cases[body_idx].body
                        } else if let Some(d) = default {
                            d
                        } else {
                            return Err(RtError::new("switch fell off the end"));
                        };
                        let mut benv = b;
                        return self.exec_block(&mut benv, this, body);
                    }
                }
                if let Some(d) = default {
                    return self.exec_block(env, this, d);
                }
                Err(RtError::new("non-exhaustive switch at run time"))
            }
            Stmt::Cond { arms, else_arm } => {
                for (f, body) in arms {
                    let mut solution = None;
                    self.solve(env, this, f, 0, &mut |b| {
                        solution = Some(b.clone());
                        false
                    })?;
                    if let Some(mut b) = solution {
                        return self.exec_block(&mut b, this, body);
                    }
                }
                if let Some(body) = else_arm {
                    return self.exec_block(env, this, body);
                }
                Err(RtError::new("non-exhaustive cond at run time"))
            }
            Stmt::If { cond, then, els } => {
                let mut solution = None;
                self.solve(env, this, cond, 0, &mut |b| {
                    solution = Some(b.clone());
                    false
                })?;
                match solution {
                    Some(mut b) => self.exec_block(&mut b, this, then),
                    None => match els {
                        Some(e) => self.exec_block(env, this, e),
                        None => Ok(Flow::Normal),
                    },
                }
            }
            Stmt::Foreach { formula, body } => {
                let mut solutions = Vec::new();
                self.solve(env, this, formula, 0, &mut |b| {
                    solutions.push(b.clone());
                    true
                })?;
                for solution in solutions {
                    // The loop body sees the solution's bindings plus any
                    // updates made by earlier iterations to outer variables.
                    let mut b = solution;
                    for (k, v) in env.iter() {
                        b.entry(k.clone()).or_insert_with(|| v.clone());
                    }
                    for (k, v) in env.iter() {
                        if !b.contains_key(k) {
                            b.insert(k.clone(), v.clone());
                        }
                    }
                    // Outer updates win over stale solution copies.
                    for (k, v) in env.iter() {
                        if b.get(k) != Some(v) && !formula_binds(formula, k) {
                            b.insert(k.clone(), v.clone());
                        }
                    }
                    let flow = self.exec_block(&mut b, this, body)?;
                    // Propagate updates to variables that already existed.
                    for (k, v) in b.iter() {
                        if env.contains_key(k) {
                            env.insert(k.clone(), v.clone());
                        }
                    }
                    if let Flow::Return(v) = flow {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                let mut guard = 0;
                loop {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(RtError::new("while loop exceeded iteration budget"));
                    }
                    let mut solution = None;
                    self.solve(env, this, cond, 0, &mut |b| {
                        solution = Some(b.clone());
                        false
                    })?;
                    match solution {
                        Some(b) => {
                            *env = b;
                            if let Flow::Return(v) = self.exec_block(env, this, body)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                        None => return Ok(Flow::Normal),
                    }
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(expr) => self.eval(env, this, expr)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Assign(lhs, rhs) => {
                let v = self.eval(env, this, rhs)?;
                match lhs {
                    Expr::Var(name) => {
                        env.insert(name.clone(), v);
                        Ok(Flow::Normal)
                    }
                    _ => Err(RtError::new("unsupported assignment target")),
                }
            }
            Stmt::ExprStmt(e) => {
                let _ = self.eval(env, this, e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(stmts) => {
                let mut inner = env.clone();
                let flow = self.exec_block(&mut inner, this, stmts)?;
                for (k, v) in inner.iter() {
                    if env.contains_key(k) {
                        env.insert(k.clone(), v.clone());
                    }
                }
                Ok(flow)
            }
        }
    }
}

/// Whether a formula declares (binds) the given variable name.
fn formula_binds(f: &Formula, name: &str) -> bool {
    f.declared_vars().iter().any(|(_, n)| n == name)
}

/// Flattens nested conjunctions into a list of conjuncts.
fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmatch_core::{compile, CompileOptions};

    fn interp_for(src: &str) -> Interp {
        let compiled = compile(
            src,
            &CompileOptions {
                verify: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        Interp::new(compiled.table.clone())
    }

    const NAT_PROGRAM: &str = r#"
        interface Nat {
            invariant(this = zero() | succ(_));
            constructor zero() returns();
            constructor succ(Nat n) returns(n);
            constructor equals(Nat n);
        }
        class ZNat implements Nat {
            int val;
            private invariant(val >= 0);
            private ZNat(int n) matches(n >= 0) returns(n) ( val = n && n >= 0 )
            constructor zero() returns() ( val = 0 )
            constructor succ(Nat n) returns(n) ( val >= 1 && ZNat(val - 1) = n )
            constructor equals(Nat n) ( zero() && n.zero() | succ(Nat y) && n.succ(y) )
        }
        class PZero implements Nat {
            constructor zero() returns() ( true )
            constructor succ(Nat n) returns(n) ( false )
            constructor equals(Nat n) ( n.zero() )
        }
        class PSucc implements Nat {
            Nat pred;
            constructor zero() returns() ( false )
            constructor succ(Nat n) returns(n) ( pred = n )
            constructor equals(Nat n) ( n.succ(pred) )
        }
        static Nat plus(Nat m, Nat n) {
            switch (m, n) {
                case (zero(), Nat x):
                case (x, zero()):
                    return x;
                case (succ(Nat k), _):
                    return plus(k, ZNat.succ(n));
            }
        }
    "#;

    fn znat(interp: &Interp, n: i64) -> Value {
        let mut v = interp.construct("ZNat", "zero", vec![]).unwrap();
        for _ in 0..n {
            v = interp.construct("ZNat", "succ", vec![v]).unwrap();
        }
        v
    }

    fn znat_value(v: &Value) -> i64 {
        match v {
            Value::Obj(o) => o.fields["val"].as_int().unwrap(),
            _ => panic!("not a ZNat"),
        }
    }

    #[test]
    fn construct_and_deconstruct_znat() {
        let interp = interp_for(NAT_PROGRAM);
        let three = znat(&interp, 3);
        assert_eq!(znat_value(&three), 3);
        // Backward mode: succ(three) yields the predecessor.
        let rows = interp.deconstruct(&three, "succ").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(znat_value(&rows[0][0]), 2);
        // zero() does not match three.
        assert!(!interp.matches_constructor(&three, "zero").unwrap());
        let zero = znat(&interp, 0);
        assert!(interp.matches_constructor(&zero, "zero").unwrap());
    }

    #[test]
    fn plus_adds_znat_numbers() {
        let interp = interp_for(NAT_PROGRAM);
        let a = znat(&interp, 2);
        let b = znat(&interp, 3);
        let sum = interp.call_free("plus", vec![a, b]).unwrap();
        assert_eq!(znat_value(&sum), 5);
    }

    #[test]
    fn plus_handles_zero_cases() {
        let interp = interp_for(NAT_PROGRAM);
        let zero = znat(&interp, 0);
        let four = znat(&interp, 4);
        let s1 = interp
            .call_free("plus", vec![zero.clone(), four.clone()])
            .unwrap();
        assert_eq!(znat_value(&s1), 4);
        let s2 = interp.call_free("plus", vec![four, zero]).unwrap();
        assert_eq!(znat_value(&s2), 4);
    }

    #[test]
    fn peano_implementation_interoperates() {
        let interp = interp_for(NAT_PROGRAM);
        // Build 2 using the Peano classes: PSucc(PSucc(PZero)).
        let p0 = interp.construct("PZero", "zero", vec![]).unwrap();
        let p1 = interp.construct("PSucc", "succ", vec![p0]).unwrap();
        let p2 = interp.construct("PSucc", "succ", vec![p1]).unwrap();
        // Deconstruct with the named constructor.
        let rows = interp.deconstruct(&p2, "succ").unwrap();
        assert_eq!(rows.len(), 1);
        // Equality constructors let ZNat(2) equal PSucc(PSucc(PZero)).
        let z2 = znat(&interp, 2);
        assert!(interp.values_equal(&z2, &p2).unwrap());
        let z3 = znat(&interp, 3);
        assert!(!interp.values_equal(&z3, &p2).unwrap());
    }

    #[test]
    fn iterative_mode_enumerates_solutions() {
        let src = r#"
            class Range {
                boolean below(int n, int x) iterates(x)
                    ( x = 0 || x = 1 || x = 2 )
            }
        "#;
        let interp = interp_for(src);
        let range = Value::Obj(Rc::new(Object {
            class: "Range".into(),
            fields: HashMap::new(),
        }));
        let minfo = interp
            .table()
            .lookup_method("Range", "below")
            .unwrap()
            .clone();
        let MethodBody::Formula(f) = &minfo.decl.body else {
            panic!()
        };
        let mut env = Bindings::new();
        env.insert("n".into(), Value::Int(3));
        let mut seen = Vec::new();
        interp
            .solve(&env, Some(&range), f, 0, &mut |b| {
                seen.push(b.get("x").and_then(|v| v.as_int()).unwrap());
                true
            })
            .unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn cond_and_let_statements_execute() {
        let src = r#"
            class M {
                int classify(int x) {
                    int doubled = x + x;
                    cond {
                        (doubled >= 10) { return 1; }
                        (doubled >= 0) { return 0; }
                        else { return -1; }
                    }
                }
            }
        "#;
        let interp = interp_for(src);
        let obj = Value::Obj(Rc::new(Object {
            class: "M".into(),
            fields: HashMap::new(),
        }));
        assert_eq!(
            interp
                .call_method(&obj, "classify", vec![Value::Int(6)])
                .unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            interp
                .call_method(&obj, "classify", vec![Value::Int(2)])
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            interp
                .call_method(&obj, "classify", vec![Value::Int(-3)])
                .unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn foreach_iterates_all_solutions() {
        let src = r#"
            class M {
                int sum3() {
                    int total = 0;
                    foreach (int x = 1 # 2 # 3) {
                        total = total + x;
                    }
                    return total;
                }
            }
        "#;
        let interp = interp_for(src);
        let obj = Value::Obj(Rc::new(Object {
            class: "M".into(),
            fields: HashMap::new(),
        }));
        assert_eq!(
            interp.call_method(&obj, "sum3", vec![]).unwrap(),
            Value::Int(6)
        );
    }

    #[test]
    fn runtime_match_failure_is_an_error() {
        let interp = interp_for(NAT_PROGRAM);
        // ZNat's private constructor requires n >= 0.
        let err = interp.construct("ZNat", "ZNat", vec![Value::Int(-1)]);
        assert!(err.is_err());
    }

    #[test]
    fn value_display_is_readable() {
        let interp = interp_for(NAT_PROGRAM);
        let two = znat(&interp, 2);
        let text = two.to_string();
        assert!(text.contains("ZNat"));
        assert!(text.contains("val = 2"));
    }
}
